"""Setup shim for environments without the `wheel` package.

Configuration lives in pyproject.toml; this file only enables
`pip install -e . --no-build-isolation --no-use-pep517` in offline
environments where PEP 517 editable builds cannot fetch build deps.
"""

from setuptools import setup

setup()
