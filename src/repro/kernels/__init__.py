"""Batched join kernels with pluggable backends.

The join-within member loops and the grid baseline's point-in-window test
are the system's hottest code; this package isolates them behind
:class:`~repro.kernels.base.JoinKernelBackend` so they can be swapped as a
unit:

* ``scalar`` — the original tuple-at-a-time loops, kept as the semantics
  oracle and the benchmark baseline;
* ``python`` — stdlib-only batched kernels (sorted-slab pruning plus
  comprehension-shaped inner loops); the default;
* ``numpy`` — vectorised kernels, available when the ``perf`` extra
  (``pip install repro[perf]``) is installed.

``auto`` resolves to ``numpy`` when importable, else ``python``.  All
backends produce identical :class:`~repro.streams.QueryMatch` multisets
and logical test counts — pinned by ``tests/test_kernels_property.py`` —
so picking a backend is purely a performance decision
(``ScubaConfig.kernel_backend`` / ``RegularConfig.kernel_backend`` /
CLI ``--kernel-backend``).
"""

from __future__ import annotations

from typing import List

from .base import JoinKernelBackend, PointBatch, rect_point_gap_sq
from .batched import PythonBatchBackend
from .scalar import ScalarBackend

__all__ = [
    "JoinKernelBackend",
    "PointBatch",
    "PythonBatchBackend",
    "ScalarBackend",
    "available_backends",
    "numpy_available",
    "rect_point_gap_sq",
    "resolve_backend",
]

#: Backend names accepted by configs and the CLI.
BACKEND_CHOICES = ("auto", "python", "numpy", "scalar")

_instances = {}


def numpy_available() -> bool:
    """True when the numpy backend can be constructed in this process."""
    try:
        from . import numpy_backend  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """Concrete backend names usable in this process (no ``auto``)."""
    names = ["python", "scalar"]
    if numpy_available():
        names.insert(0, "numpy")
    return names


def resolve_backend(name: str = "auto") -> JoinKernelBackend:
    """The backend instance for ``name`` (one shared instance per name).

    ``auto`` prefers numpy and silently degrades to the pure-Python batched
    backend when numpy is not installed; asking for ``numpy`` explicitly
    raises if it is missing, so a mis-provisioned deployment fails loudly
    rather than silently running slower.
    """
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    backend = _instances.get(name)
    if backend is not None:
        return backend
    if name == "python":
        backend = PythonBatchBackend()
    elif name == "scalar":
        backend = ScalarBackend()
    elif name == "numpy":
        from .numpy_backend import NumpyBackend

        backend = NumpyBackend()
    else:
        raise ValueError(
            f"unknown kernel backend {name!r} (choose one of {BACKEND_CHOICES})"
        )
    _instances[name] = backend
    return backend
