"""The join-kernel backend contract.

A backend implements the four join-within predicate cases of
:mod:`repro.core.joins` as **batched kernels** over structure-of-arrays
member columns, plus the point-in-rect kernel the regular grid baseline
joins with.  All backends are *observationally identical*: for the same
inputs they must produce the same :class:`~repro.streams.QueryMatch`
multiset and report the same logical test count — only emission order and
wall-clock time may differ.  That contract is pinned by
``tests/test_kernels_property.py``.

The **logical test count** is the paper's cost metric: the number of
candidate (object, query) member pairs an evaluation considers (one per
exact member pair behind a passing bounding-box pre-filter, one per shed
group test).  A batched backend that prunes candidates algorithmically
still reports the full logical count, so figures stay comparable across
backends.

Kernels read the SoA columns of :class:`~repro.core.joins.ClusterJoinView`
(``obj_ids``/``obj_xs``/``obj_ys``, ``query_ids``/``query_xs``/...)
directly and may stash backend-specific derived data (sorted permutations,
ndarray mirrors) in the view's ``scratch`` dict — views are cached across
evaluations, so the derivation cost is paid once per cluster *change*, not
once per cluster *pair*.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from ..geometry import circles_overlap
from ..streams import QueryMatch

__all__ = ["JoinKernelBackend", "PointBatch", "rect_point_gap_sq"]


class PointBatch:
    """A structure-of-arrays batch of identified points.

    The unit the regular grid baseline hands to :meth:`points_in_rect`:
    one batch per occupied cell per evaluation, shared by every query
    hashed into that cell.  ``scratch`` carries backend-specific derived
    arrays, built lazily on first kernel use.
    """

    __slots__ = ("ids", "xs", "ys", "scratch")

    def __init__(
        self,
        ids: Sequence[int],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> None:
        self.ids = ids
        self.xs = xs
        self.ys = ys
        self.scratch: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self.ids)


class JoinKernelBackend(abc.ABC):
    """Batched kernels for the four join-within cases plus point-in-rect.

    ``objects`` and ``queries`` arguments are
    :class:`~repro.core.joins.ClusterJoinView` instances (possibly the
    same view, for a mixed cluster's self join).  Every kernel appends its
    matches to ``out`` and returns its logical test count.
    """

    #: Registry/CLI name (``scalar``, ``python``, ``numpy``).
    name = "abstract"

    # -- join-within predicate cases ----------------------------------------

    @abc.abstractmethod
    def exact_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        """Exact objects × exact queries: point inside the query window."""

    @abc.abstractmethod
    def shed_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        """Shed objects × exact queries: window reaches the object nucleus."""

    @abc.abstractmethod
    def exact_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        """Exact objects × shed query groups: object within nucleus slack of
        the window placed at the query cluster's centroid."""

    @abc.abstractmethod
    def shed_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        """Shed objects × shed query groups: the two nuclei within reach."""

    # -- macro-batched sweep kernels -----------------------------------------

    def pairs_between(
        self, lxs, lys, lrads, lqs, rxs, rys, rrads, rqs
    ) -> Sequence[bool]:
        """Batched join-between: one lossless overlap verdict per pair.

        Columns are parallel per candidate cluster pair: left/right
        centroid x/y, radius and widest query half-diagonal.  Each verdict
        must equal ``join_between`` on the pair's clusters — the left
        radius inflated by the larger of the two query half-diagonals.
        The default is the scalar loop; array backends vectorize it.
        """
        return [
            circles_overlap(ax, ay, ar + (aq if aq >= bq else bq), bx, by, br)
            for ax, ay, ar, aq, bx, by, br, bq in zip(
                lxs, lys, lrads, lqs, rxs, rys, rrads, rqs
            )
        ]

    def join_segments(
        self,
        segments: Sequence[Tuple[object, object]],
        now: float,
        out: List[QueryMatch],
    ) -> int:
        """Evaluate a run of shed-free exact×exact join segments.

        Each segment is an ``(objects_view, queries_view)`` pair of
        :class:`~repro.core.joins.ClusterJoinView` with non-empty exact
        columns and no shed members, in the driver's canonical emission
        order.  The default evaluates them one ``exact_exact`` call at a
        time — exact by construction; a batched backend may fuse the whole
        run into one segmented array pass as long as the QueryMatch
        multiset and the logical test count match this loop.
        """
        tests = 0
        exact_exact = self.exact_exact
        for objects, queries in segments:
            tests += exact_exact(objects, queries, now, out)
        return tests

    # -- grid baseline kernel ------------------------------------------------

    @abc.abstractmethod
    def points_in_rect(
        self,
        batch: PointBatch,
        qid: int,
        qx: float,
        qy: float,
        hw: float,
        hh: float,
        now: float,
        out: List[QueryMatch],
    ) -> int:
        """Batched point-in-window test: ids of ``batch`` inside the rect."""

    # -- plumbing -------------------------------------------------------------

    def __reduce__(self):
        # Backends are stateless: pickling re-resolves by name, so shard
        # operators built from a pickled factory get a backend valid in the
        # receiving process (e.g. numpy present locally but not remotely
        # resolves cleanly as long as the config said "auto").
        from . import resolve_backend

        return (resolve_backend, (self.name,))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def rect_point_gap_sq(
    cx: float, cy: float, hw: float, hh: float, px: float, py: float
) -> float:
    """Squared distance from point ``(px, py)`` to rect ``(cx±hw, cy±hh)``."""
    dx = abs(px - cx) - hw
    dy = abs(py - cy) - hh
    if dx < 0.0:
        dx = 0.0
    if dy < 0.0:
        dy = 0.0
    return dx * dx + dy * dy
