"""Pure-Python batched kernels (stdlib only) — the default backend.

Two levers distinguish this from the scalar reference:

* **Sorted-slab pruning** — a view's exact-object columns are sorted by x
  once (cached in the view's ``scratch``, so the sort is paid per cluster
  *change*, amortised over every pair the cluster joins in and every
  Δ-cycle it stays unchanged).  Each query window then narrows to its
  x-slab with two :func:`bisect.bisect` calls and scans only the slab.
* **Comprehension-shaped inner loops** — the surviving y-filter runs as a
  single list comprehension feeding one bulk ``list.extend``, trading the
  interpreter's per-iteration bookkeeping (counter updates, attribute
  loads, repeated ``append`` lookups) for specialised comprehension
  bytecode.

Emission order within one kernel call is ascending-x (the slab order)
instead of member-insertion order; the :class:`~repro.streams.QueryMatch`
multiset — the system's correctness contract — is identical to the scalar
backend's, and so are the reported logical test counts.

The slab is a *prune*, never the inclusion test: its bisect bounds are
padded by a couple of ulps (``qx - hw`` rounds differently from the
canonical ``abs(ox - qx) <= hw``, so an unpadded slab can drop an object
sitting exactly on a window edge), and every candidate then passes
through the same float expression the scalar oracle uses.  That keeps
the answer bit-identical to :class:`ScalarBackend` — and to the numpy
kernels — even on boundary ties.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from math import ulp
from typing import List

from ..streams import QueryMatch
from .base import PointBatch, rect_point_gap_sq
from .scalar import ScalarBackend

__all__ = ["PythonBatchBackend"]

#: Below this batch size, sorting a PointBatch costs more than it saves.
_SORT_THRESHOLD = 8

#: Below this many candidate member pairs, the x-sort + slab machinery
#: costs more than the scalar loop it prunes (measured crossover around
#: 16×16 pairs with single-use views; the margin keeps cache-miss-heavy
#: sweeps from regressing).
_MIN_SLAB_PAIRS = 256


def _sorted_columns(view):
    """x-sorted (xs, ys, ids) mirrors of a view's exact-object columns."""
    cols = view.scratch.get("sorted_x")
    if cols is None:
        order = sorted(range(len(view.obj_ids)), key=view.obj_xs.__getitem__)
        xs = view.obj_xs
        ys = view.obj_ys
        ids = view.obj_ids
        cols = (
            [xs[i] for i in order],
            [ys[i] for i in order],
            [ids[i] for i in order],
        )
        view.scratch["sorted_x"] = cols
    return cols


class PythonBatchBackend(ScalarBackend):
    """Batched stdlib kernels; group-level shed cases inherit the scalar
    implementation (they are already one test per group)."""

    name = "python"

    def exact_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        n = len(objects.obj_ids)
        if n * len(queries.query_ids) < _MIN_SLAB_PAIRS:
            return super().exact_exact(objects, queries, now, out)
        sx, sy, sid = _sorted_columns(objects)
        o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
        o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y
        tests = 0
        extend = out.extend
        for qid, qx, qy, hw, hh in zip(
            queries.query_ids,
            queries.query_xs,
            queries.query_ys,
            queries.query_hws,
            queries.query_hhs,
        ):
            lx = qx - hw
            hx = qx + hw
            ly = qy - hh
            hy = qy + hh
            if lx > o_max_x or hx < o_min_x or ly > o_max_y or hy < o_min_y:
                continue
            tests += n
            # Padded prune: 2 ulps of the largest x-magnitude in play
            # covers the rounding gap between the slab bounds and the
            # canonical abs-form test below.
            pad = 2.0 * ulp(abs(qx) + hw)
            lo = bisect_left(sx, lx - pad)
            hi = bisect_right(sx, hx + pad, lo)
            if lo < hi:
                extend(
                    [
                        QueryMatch(qid, oid, now)
                        for oid, ox, oy in zip(
                            sid[lo:hi], sx[lo:hi], sy[lo:hi]
                        )
                        if abs(ox - qx) <= hw and abs(oy - qy) <= hh
                    ]
                )
        return tests

    def exact_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        n = len(objects.obj_ids)
        if n * len(queries.shed_query_groups) < _MIN_SLAB_PAIRS:
            return super().exact_shed(objects, queries, now, out)
        o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
        o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y
        qcx, qcy = queries.cx, queries.cy
        q_slack = queries.approx_radius
        slack_sq = q_slack * q_slack
        tests = 0
        extend = out.extend
        for (hw, hh), qids in queries.shed_query_groups.items():
            reach_x = hw + q_slack
            reach_y = hh + q_slack
            if (
                qcx - reach_x > o_max_x
                or qcx + reach_x < o_min_x
                or qcy - reach_y > o_max_y
                or qcy + reach_y < o_min_y
            ):
                continue
            tests += n
            sx, sy, sid = _sorted_columns(objects)
            # Necessary x-condition for a zero-or-small gap: the object must
            # lie within the slack-inflated window horizontally (padded —
            # the gap test below is the exact inclusion criterion).
            pad = 2.0 * ulp(abs(qcx) + reach_x)
            lo = bisect_left(sx, qcx - reach_x - pad)
            hi = bisect_right(sx, qcx + reach_x + pad, lo)
            if lo < hi:
                hits = [
                    oid
                    for oid, ox, oy in zip(sid[lo:hi], sx[lo:hi], sy[lo:hi])
                    if rect_point_gap_sq(qcx, qcy, hw, hh, ox, oy) <= slack_sq
                ]
                for oid in hits:
                    extend([QueryMatch(qid, oid, now) for qid in qids])
        return tests

    def points_in_rect(
        self,
        batch: PointBatch,
        qid: int,
        qx: float,
        qy: float,
        hw: float,
        hh: float,
        now: float,
        out: List[QueryMatch],
    ) -> int:
        n = len(batch.ids)
        if n < _SORT_THRESHOLD:
            # Tiny cells (the common case on sparse grids): the plain
            # scalar loop beats any batching machinery, and at n of a
            # few even a delegating super() frame is measurable — so
            # the loop is inlined here rather than delegated.
            append = out.append
            for oid, ox, oy in zip(batch.ids, batch.xs, batch.ys):
                if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                    append(QueryMatch(qid, oid, now))
            return n
        scratch = batch.scratch
        cols = scratch.get("sorted_x")
        if cols is None:
            if scratch.get("touched"):
                # Second query over this cell: the sort now amortises.
                order = sorted(range(n), key=batch.xs.__getitem__)
                cols = (
                    [batch.xs[i] for i in order],
                    [batch.ys[i] for i in order],
                    [batch.ids[i] for i in order],
                )
                scratch["sorted_x"] = cols
            else:
                scratch["touched"] = True
                return super().points_in_rect(batch, qid, qx, qy, hw, hh, now, out)
        sx, sy, sid = cols
        pad = 2.0 * ulp(abs(qx) + hw)
        lo = bisect_left(sx, qx - hw - pad)
        hi = bisect_right(sx, qx + hw + pad, lo)
        if lo < hi:
            out.extend(
                [
                    QueryMatch(qid, oid, now)
                    for oid, ox, oy in zip(sid[lo:hi], sx[lo:hi], sy[lo:hi])
                    if abs(ox - qx) <= hw and abs(oy - qy) <= hh
                ]
            )
        return n
