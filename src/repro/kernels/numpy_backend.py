"""NumPy join kernels (the optional ``perf`` extra).

Vectorises the two member-loop-heavy predicate cases — exact×exact and
exact×shed — into array expressions; the two shed-object cases are one
scalar test per query (or per group) and inherit the scalar code.  Array
mirrors of a view's columns are cached in the view ``scratch``, so the
list→ndarray conversion is paid once per cluster change.

Matched ids are converted back to built-in ``int`` before
:class:`~repro.streams.QueryMatch` construction: downstream code hashes,
compares and JSON-serialises match ids, and must never see a stray
``np.int64``.

This module imports ``numpy`` at module load; importing it without numpy
installed raises ``ImportError``.  Always go through
:func:`repro.kernels.resolve_backend`, which degrades ``auto`` to the
pure-Python backend when the import fails.
"""

from __future__ import annotations

from itertools import repeat
from typing import List

import numpy as np

from ..streams import QueryMatch
from .base import PointBatch
from .batched import _SORT_THRESHOLD, PythonBatchBackend

__all__ = ["NumpyBackend"]

#: Below this many candidate pairs, ndarray dispatch overhead beats the
#: comprehension; fall back to the batched-Python code path via super().
#: Measured crossover (single-use views, bench_kernels microbench): the
#: vectorised path starts winning around 32×32 member pairs.
_MIN_VECTOR_PAIRS = 1024

#: One-dimensional kernels (per shed group, per grid-cell query) amortise
#: ndarray dispatch much sooner than the pair matrix does.
_MIN_VECTOR_ELEMS = 64

#: Candidate-pair budget per segmented-expansion chunk of the macro
#: join_segments kernel: bounds the transient index/mask arrays to a few
#: MiB regardless of how many segments one flush carries.
_SEGMENT_CHUNK = 1 << 20


def _fused_column(parts, dtype):
    """One array from per-view column ``parts`` (lists and/or ndarrays).

    Consecutive list parts are fused through a single ``asarray`` — for
    object-mode views (plain Python columns) the whole fuse is one C-speed
    ``extend`` sweep plus one conversion, instead of one tiny ndarray per
    view fed to ``concatenate``.  ndarray parts (zero-copy columnar views)
    pass through unconverted.
    """
    chunks = []
    buf: list = []
    for part in parts:
        if type(part) is list:
            buf.extend(part)
        else:
            if buf:
                chunks.append(np.asarray(buf, dtype=dtype))
                buf = []
            chunks.append(part)
    if buf or not chunks:
        chunks.append(np.asarray(buf, dtype=dtype))
    if len(chunks) == 1:
        return np.asarray(chunks[0], dtype=dtype)
    return np.concatenate(chunks, dtype=dtype)


def _object_arrays(view):
    arrays = view.scratch.get("np_obj")
    if arrays is None:
        arrays = (
            np.asarray(view.obj_xs, dtype=np.float64),
            np.asarray(view.obj_ys, dtype=np.float64),
            np.asarray(view.obj_ids, dtype=np.int64),
        )
        view.scratch["np_obj"] = arrays
    return arrays


def _query_arrays(view):
    arrays = view.scratch.get("np_query")
    if arrays is None:
        arrays = (
            np.asarray(view.query_xs, dtype=np.float64),
            np.asarray(view.query_ys, dtype=np.float64),
            np.asarray(view.query_hws, dtype=np.float64),
            np.asarray(view.query_hhs, dtype=np.float64),
        )
        view.scratch["np_query"] = arrays
    return arrays


def _query_ids_array(view):
    ids = view.scratch.get("np_qid")
    if ids is None:
        ids = np.asarray(view.query_ids, dtype=np.int64)
        view.scratch["np_qid"] = ids
    return ids


class NumpyBackend(PythonBatchBackend):
    """Array kernels for the member-loop cases; batched-Python fallbacks
    below the vectorisation threshold, scalar group tests."""

    name = "numpy"

    def pairs_between(self, lxs, lys, lrads, lqs, rxs, rys, rrads, rqs):
        lxs = np.asarray(lxs, dtype=np.float64)
        lys = np.asarray(lys, dtype=np.float64)
        lrads = np.asarray(lrads, dtype=np.float64)
        lqs = np.asarray(lqs, dtype=np.float64)
        rxs = np.asarray(rxs, dtype=np.float64)
        rys = np.asarray(rys, dtype=np.float64)
        rrads = np.asarray(rrads, dtype=np.float64)
        rqs = np.asarray(rqs, dtype=np.float64)
        # Same float association as the scalar join_between:
        # (radius + bonus) + right_radius, then dx*dx + dy*dy.
        ar = lrads + np.maximum(lqs, rqs)
        dx = lxs - rxs
        dy = lys - rys
        reach = ar + rrads
        return dx * dx + dy * dy <= reach * reach

    def join_segments(self, segments, now: float, out: List[QueryMatch]) -> int:
        nseg = len(segments)
        if nseg < 2:
            return super().join_segments(segments, now, out)
        # Unique-view tables: one flush revisits the same view in many
        # segments (a survivor cluster pairs with every neighbour, both
        # directions), so columns are gathered and concatenated once per
        # distinct view and segments address them through index arrays.
        # The candidate-pair estimate that decides vectorised-vs-fallback
        # comes from the same tables (unique-view member counts gathered
        # per segment), so the flush is walked exactly once.
        o_index: dict = {}
        q_index: dict = {}
        o_views: list = []
        q_views: list = []
        o_idx_l: list = []
        q_idx_l: list = []
        o_idx_append = o_idx_l.append
        q_idx_append = q_idx_l.append
        for objects, queries in segments:
            key = id(objects)
            i = o_index.get(key)
            if i is None:
                i = o_index[key] = len(o_views)
                o_views.append(objects)
            o_idx_append(i)
            key = id(queries)
            i = q_index.get(key)
            if i is None:
                i = q_index[key] = len(q_views)
                q_views.append(queries)
            q_idx_append(i)
        o_idx = np.asarray(o_idx_l, dtype=np.int64)
        q_idx = np.asarray(q_idx_l, dtype=np.int64)
        n_ov = len(o_views)
        u_on = np.fromiter(
            (len(v.obj_ids) for v in o_views), dtype=np.int64, count=n_ov
        )
        u_qn = np.fromiter(
            (len(v.query_ids) for v in q_views),
            dtype=np.int64,
            count=len(q_views),
        )
        if int((u_on[o_idx] * u_qn[q_idx]).sum()) < _MIN_VECTOR_PAIRS:
            return super().join_segments(segments, now, out)
        return self._join_segments_core(
            o_views, q_views, o_idx, q_idx, u_on, u_qn, now, out
        )

    def join_segments_indexed(
        self, views, o_idx, q_idx, now: float, out: List[QueryMatch]
    ) -> int:
        """Pre-indexed variant of :meth:`join_segments`.

        The macro-batched driver already knows each segment's views by
        table position (one shared view table, two parallel int64 index
        arrays), so the per-segment identity-registry walk of
        :meth:`join_segments` is redundant — this entry point goes
        straight to the fused core.  Semantics (candidates, emission
        order, logical test counts) are identical to an equivalent
        ``join_segments([(views[o], views[q]) for o, q in ...])`` call.
        """
        nseg = int(o_idx.size)
        n_views = len(views)
        u_on = np.fromiter(
            (len(v.obj_ids) for v in views), dtype=np.int64, count=n_views
        )
        u_qn = np.fromiter(
            (len(v.query_ids) for v in views), dtype=np.int64, count=n_views
        )
        if nseg < 2 or int((u_on[o_idx] * u_qn[q_idx]).sum()) < _MIN_VECTOR_PAIRS:
            return super().join_segments(
                [
                    (views[o], views[q])
                    for o, q in zip(o_idx.tolist(), q_idx.tolist())
                ],
                now,
                out,
            )
        return self._join_segments_core(
            views, views, o_idx, q_idx, u_on, u_qn, now, out
        )

    def _join_segments_core(
        self, o_views, q_views, o_idx, q_idx, u_on, u_qn, now, out
    ) -> int:
        nseg = int(o_idx.size)
        n_ov = len(o_views)
        oxs = _fused_column((v.obj_xs for v in o_views), np.float64)
        oys = _fused_column((v.obj_ys for v in o_views), np.float64)
        oids = _fused_column((v.obj_ids for v in o_views), np.int64)
        qxs_u = _fused_column((v.query_xs for v in q_views), np.float64)
        qys_u = _fused_column((v.query_ys for v in q_views), np.float64)
        qhws_u = _fused_column((v.query_hws for v in q_views), np.float64)
        qhhs_u = _fused_column((v.query_hhs for v in q_views), np.float64)
        qids_u = _fused_column((v.query_ids for v in q_views), np.int64)
        bbox = np.empty((n_ov, 4), dtype=np.float64)
        for i, objects in enumerate(o_views):
            bbox[i, 0] = objects.obj_min_x
            bbox[i, 1] = objects.obj_max_x
            bbox[i, 2] = objects.obj_min_y
            bbox[i, 3] = objects.obj_max_y
        o_starts_u = np.cumsum(u_on) - u_on
        q_starts_u = np.cumsum(u_qn) - u_qn
        # Expand each segment's query run: per-instance global column
        # index = its view's start + position within the view.
        q_counts = u_qn[q_idx]
        o_counts = u_on[o_idx]
        qseg = np.repeat(np.arange(nseg, dtype=np.int64), q_counts)
        qcsum = np.cumsum(q_counts)
        gq = (
            q_starts_u[q_idx[qseg]]
            + np.arange(int(qcsum[-1]), dtype=np.int64)
            - np.repeat(qcsum - q_counts, q_counts)
        )
        qxs = qxs_u[gq]
        qys = qys_u[gq]
        qhws = qhws_u[gq]
        qhhs = qhhs_u[gq]
        # Per-query bounding-box pre-filter across all segments at once
        # (identical float comparisons, and identical logical test-count
        # semantics, to the per-pair scalar loop: n objects per passing
        # query of that query's segment).
        qbox = bbox[o_idx[qseg]]
        alive = (
            (qxs - qhws <= qbox[:, 1])
            & (qxs + qhws >= qbox[:, 0])
            & (qys - qhhs <= qbox[:, 3])
            & (qys + qhhs >= qbox[:, 2])
        )
        alive_idx = np.flatnonzero(alive)
        if alive_idx.size == 0:
            return 0
        reps = o_counts[qseg[alive_idx]]
        tests = int(reps.sum())
        seg_o_start = o_starts_u[o_idx]
        bound = np.cumsum(reps)
        append_block = getattr(out, "append_block", None)
        # Segmented candidate expansion (query × its segment's objects),
        # chunked so the transient arrays stay bounded; candidate rows fall
        # out grouped (segment, query, object) — the canonical per-pair
        # emission grouping.
        lo = 0
        n_alive = int(alive_idx.size)
        while lo < n_alive:
            floor = int(bound[lo]) - int(reps[lo])
            hi = int(np.searchsorted(bound, floor + _SEGMENT_CHUNK, "right"))
            if hi <= lo:
                hi = lo + 1
            r = reps[lo:hi]
            csum = np.cumsum(r)
            local = np.arange(int(csum[-1]), dtype=np.int64) - np.repeat(
                csum - r, r
            )
            qg = np.repeat(alive_idx[lo:hi], r)
            og = seg_o_start[qseg[qg]] + local
            inside = (np.abs(oxs[og] - qxs[qg]) <= qhws[qg]) & (
                np.abs(oys[og] - qys[qg]) <= qhhs[qg]
            )
            sel = np.flatnonzero(inside)
            if sel.size:
                matched_q = qids_u[gq[qg[sel]]]
                matched_o = oids[og[sel]]
                if append_block is not None:
                    # Columnar emission: the MatchList splices the run in
                    # at its canonical position, rows materialise lazily.
                    append_block(matched_q, matched_o, now)
                else:
                    out.extend(
                        map(
                            QueryMatch._make,
                            zip(
                                matched_q.tolist(),
                                matched_o.tolist(),
                                repeat(now),
                            ),
                        )
                    )
            lo = hi
        return tests

    def exact_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        n = len(objects.obj_ids)
        nq = len(queries.query_ids)
        if n * nq < _MIN_VECTOR_PAIRS:
            return super().exact_exact(objects, queries, now, out)
        oxs, oys, oids = _object_arrays(objects)
        qxs, qys, qhws, qhhs = _query_arrays(queries)
        # Bounding-box pre-filter, vectorised across queries (same logical
        # test-count semantics as the scalar path: n tests per passing query).
        alive = (
            (qxs - qhws <= objects.obj_max_x)
            & (qxs + qhws >= objects.obj_min_x)
            & (qys - qhhs <= objects.obj_max_y)
            & (qys + qhhs >= objects.obj_min_y)
        )
        alive_idx = np.flatnonzero(alive)
        if alive_idx.size == 0:
            return 0
        # (passing queries × objects) containment matrix.
        inside = (
            np.abs(oxs[None, :] - qxs[alive_idx, None]) <= qhws[alive_idx, None]
        ) & (np.abs(oys[None, :] - qys[alive_idx, None]) <= qhhs[alive_idx, None])
        qi, oi = np.nonzero(inside)
        if qi.size:
            qids = queries.query_ids
            matched_q = alive_idx[qi].tolist()
            matched_o = oids[oi].tolist()
            out.extend(
                [
                    QueryMatch(qids[q], o, now)
                    for q, o in zip(matched_q, matched_o)
                ]
            )
        return int(alive_idx.size) * n

    def exact_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        n = len(objects.obj_ids)
        if n < _MIN_VECTOR_ELEMS:
            return super().exact_shed(objects, queries, now, out)
        oxs, oys, oids = _object_arrays(objects)
        o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
        o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y
        qcx, qcy = queries.cx, queries.cy
        q_slack = queries.approx_radius
        slack_sq = q_slack * q_slack
        tests = 0
        for (hw, hh), qids in queries.shed_query_groups.items():
            reach_x = hw + q_slack
            reach_y = hh + q_slack
            if (
                qcx - reach_x > o_max_x
                or qcx + reach_x < o_min_x
                or qcy - reach_y > o_max_y
                or qcy + reach_y < o_min_y
            ):
                continue
            tests += n
            dx = np.maximum(np.abs(oxs - qcx) - hw, 0.0)
            dy = np.maximum(np.abs(oys - qcy) - hh, 0.0)
            hits = oids[dx * dx + dy * dy <= slack_sq].tolist()
            for oid in hits:
                out.extend([QueryMatch(qid, oid, now) for qid in qids])
        return tests

    def points_in_rect(
        self,
        batch: PointBatch,
        qid: int,
        qx: float,
        qy: float,
        hw: float,
        hh: float,
        now: float,
        out: List[QueryMatch],
    ) -> int:
        n = len(batch.ids)
        if n < _MIN_VECTOR_ELEMS:
            if n < _SORT_THRESHOLD:
                # Inlined scalar loop: sparse-grid cells hold a handful
                # of points, where even one delegation frame shows up.
                append = out.append
                for oid, ox, oy in zip(batch.ids, batch.xs, batch.ys):
                    if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                        append(QueryMatch(qid, oid, now))
                return n
            return super().points_in_rect(batch, qid, qx, qy, hw, hh, now, out)
        arrays = batch.scratch.get("np")
        if arrays is None:
            arrays = (
                np.asarray(batch.xs, dtype=np.float64),
                np.asarray(batch.ys, dtype=np.float64),
                np.asarray(batch.ids, dtype=np.int64),
            )
            batch.scratch["np"] = arrays
        xs, ys, ids = arrays
        hits = ids[(np.abs(xs - qx) <= hw) & (np.abs(ys - qy) <= hh)].tolist()
        out.extend([QueryMatch(qid, oid, now) for oid in hits])
        return n
