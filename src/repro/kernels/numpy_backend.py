"""NumPy join kernels (the optional ``perf`` extra).

Vectorises the two member-loop-heavy predicate cases — exact×exact and
exact×shed — into array expressions; the two shed-object cases are one
scalar test per query (or per group) and inherit the scalar code.  Array
mirrors of a view's columns are cached in the view ``scratch``, so the
list→ndarray conversion is paid once per cluster change.

Matched ids are converted back to built-in ``int`` before
:class:`~repro.streams.QueryMatch` construction: downstream code hashes,
compares and JSON-serialises match ids, and must never see a stray
``np.int64``.

This module imports ``numpy`` at module load; importing it without numpy
installed raises ``ImportError``.  Always go through
:func:`repro.kernels.resolve_backend`, which degrades ``auto`` to the
pure-Python backend when the import fails.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..streams import QueryMatch
from .base import PointBatch
from .batched import _SORT_THRESHOLD, PythonBatchBackend

__all__ = ["NumpyBackend"]

#: Below this many candidate pairs, ndarray dispatch overhead beats the
#: comprehension; fall back to the batched-Python code path via super().
#: Measured crossover (single-use views, bench_kernels microbench): the
#: vectorised path starts winning around 32×32 member pairs.
_MIN_VECTOR_PAIRS = 1024

#: One-dimensional kernels (per shed group, per grid-cell query) amortise
#: ndarray dispatch much sooner than the pair matrix does.
_MIN_VECTOR_ELEMS = 64


def _object_arrays(view):
    arrays = view.scratch.get("np_obj")
    if arrays is None:
        arrays = (
            np.asarray(view.obj_xs, dtype=np.float64),
            np.asarray(view.obj_ys, dtype=np.float64),
            np.asarray(view.obj_ids, dtype=np.int64),
        )
        view.scratch["np_obj"] = arrays
    return arrays


def _query_arrays(view):
    arrays = view.scratch.get("np_query")
    if arrays is None:
        arrays = (
            np.asarray(view.query_xs, dtype=np.float64),
            np.asarray(view.query_ys, dtype=np.float64),
            np.asarray(view.query_hws, dtype=np.float64),
            np.asarray(view.query_hhs, dtype=np.float64),
        )
        view.scratch["np_query"] = arrays
    return arrays


class NumpyBackend(PythonBatchBackend):
    """Array kernels for the member-loop cases; batched-Python fallbacks
    below the vectorisation threshold, scalar group tests."""

    name = "numpy"

    def exact_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        n = len(objects.obj_ids)
        nq = len(queries.query_ids)
        if n * nq < _MIN_VECTOR_PAIRS:
            return super().exact_exact(objects, queries, now, out)
        oxs, oys, oids = _object_arrays(objects)
        qxs, qys, qhws, qhhs = _query_arrays(queries)
        # Bounding-box pre-filter, vectorised across queries (same logical
        # test-count semantics as the scalar path: n tests per passing query).
        alive = (
            (qxs - qhws <= objects.obj_max_x)
            & (qxs + qhws >= objects.obj_min_x)
            & (qys - qhhs <= objects.obj_max_y)
            & (qys + qhhs >= objects.obj_min_y)
        )
        alive_idx = np.flatnonzero(alive)
        if alive_idx.size == 0:
            return 0
        # (passing queries × objects) containment matrix.
        inside = (
            np.abs(oxs[None, :] - qxs[alive_idx, None]) <= qhws[alive_idx, None]
        ) & (np.abs(oys[None, :] - qys[alive_idx, None]) <= qhhs[alive_idx, None])
        qi, oi = np.nonzero(inside)
        if qi.size:
            qids = queries.query_ids
            matched_q = alive_idx[qi].tolist()
            matched_o = oids[oi].tolist()
            out.extend(
                [
                    QueryMatch(qids[q], o, now)
                    for q, o in zip(matched_q, matched_o)
                ]
            )
        return int(alive_idx.size) * n

    def exact_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        n = len(objects.obj_ids)
        if n < _MIN_VECTOR_ELEMS:
            return super().exact_shed(objects, queries, now, out)
        oxs, oys, oids = _object_arrays(objects)
        o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
        o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y
        qcx, qcy = queries.cx, queries.cy
        q_slack = queries.approx_radius
        slack_sq = q_slack * q_slack
        tests = 0
        for (hw, hh), qids in queries.shed_query_groups.items():
            reach_x = hw + q_slack
            reach_y = hh + q_slack
            if (
                qcx - reach_x > o_max_x
                or qcx + reach_x < o_min_x
                or qcy - reach_y > o_max_y
                or qcy + reach_y < o_min_y
            ):
                continue
            tests += n
            dx = np.maximum(np.abs(oxs - qcx) - hw, 0.0)
            dy = np.maximum(np.abs(oys - qcy) - hh, 0.0)
            hits = oids[dx * dx + dy * dy <= slack_sq].tolist()
            for oid in hits:
                out.extend([QueryMatch(qid, oid, now) for qid in qids])
        return tests

    def points_in_rect(
        self,
        batch: PointBatch,
        qid: int,
        qx: float,
        qy: float,
        hw: float,
        hh: float,
        now: float,
        out: List[QueryMatch],
    ) -> int:
        n = len(batch.ids)
        if n < _MIN_VECTOR_ELEMS:
            if n < _SORT_THRESHOLD:
                # Inlined scalar loop: sparse-grid cells hold a handful
                # of points, where even one delegation frame shows up.
                append = out.append
                for oid, ox, oy in zip(batch.ids, batch.xs, batch.ys):
                    if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                        append(QueryMatch(qid, oid, now))
                return n
            return super().points_in_rect(batch, qid, qx, qy, hw, hh, now, out)
        arrays = batch.scratch.get("np")
        if arrays is None:
            arrays = (
                np.asarray(batch.xs, dtype=np.float64),
                np.asarray(batch.ys, dtype=np.float64),
                np.asarray(batch.ids, dtype=np.int64),
            )
            batch.scratch["np"] = arrays
        xs, ys, ids = arrays
        hits = ids[(np.abs(xs - qx) <= hw) & (np.abs(ys - qy) <= hh)].tolist()
        out.extend([QueryMatch(qid, oid, now) for oid in hits])
        return n
