"""The scalar reference backend — the pre-kernel join path, preserved.

A faithful port of the original tuple-at-a-time member loops: one Python
iteration per candidate pair, no derived arrays, no pruning beyond the
per-query bounding-box pre-filter.  It exists as the semantics oracle the
batched backends are property-tested against, and as the baseline
``benchmarks/bench_kernels.py`` measures their speedup over.
"""

from __future__ import annotations

from typing import List

from ..streams import QueryMatch
from .base import JoinKernelBackend, PointBatch, rect_point_gap_sq

__all__ = ["ScalarBackend"]


def _object_rows(view):
    """Per-view (id, x, y) row list — the layout the seed's loops walked.

    Cached in scratch so the zip is paid once per view, as the seed paid
    it once in its view constructor.
    """
    rows = view.scratch.get("rows")
    if rows is None:
        rows = list(zip(view.obj_ids, view.obj_xs, view.obj_ys))
        view.scratch["rows"] = rows
    return rows


class ScalarBackend(JoinKernelBackend):
    """One geometric test per loop iteration (the seed implementation)."""

    name = "scalar"

    def exact_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        tests = 0
        obj_rows = _object_rows(objects)
        o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
        o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y
        for qid, qx, qy, hw, hh in zip(
            queries.query_ids,
            queries.query_xs,
            queries.query_ys,
            queries.query_hws,
            queries.query_hhs,
        ):
            # Window vs. object bounding box: skips the member loop for the
            # common near-miss case of barely-overlapping clusters.
            if (
                qx - hw <= o_max_x
                and qx + hw >= o_min_x
                and qy - hh <= o_max_y
                and qy + hh >= o_min_y
            ):
                for oid, ox, oy in obj_rows:
                    tests += 1
                    if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                        out.append(QueryMatch(qid, oid, now))
        return tests

    def shed_exact(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        tests = 0
        ocx, ocy = objects.cx, objects.cy
        reach_sq = objects.approx_radius * objects.approx_radius
        shed_ids = objects.shed_object_ids
        for qid, qx, qy, hw, hh in zip(
            queries.query_ids,
            queries.query_xs,
            queries.query_ys,
            queries.query_hws,
            queries.query_hhs,
        ):
            tests += 1
            if rect_point_gap_sq(qx, qy, hw, hh, ocx, ocy) <= reach_sq:
                for oid in shed_ids:
                    out.append(QueryMatch(qid, oid, now))
        return tests

    def exact_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        tests = 0
        obj_rows = _object_rows(objects)
        o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
        o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y
        qcx, qcy = queries.cx, queries.cy
        q_slack = queries.approx_radius
        slack_sq = q_slack * q_slack
        for (hw, hh), qids in queries.shed_query_groups.items():
            reach_x = hw + q_slack
            reach_y = hh + q_slack
            if (
                qcx - reach_x <= o_max_x
                and qcx + reach_x >= o_min_x
                and qcy - reach_y <= o_max_y
                and qcy + reach_y >= o_min_y
            ):
                for oid, ox, oy in obj_rows:
                    tests += 1
                    if rect_point_gap_sq(qcx, qcy, hw, hh, ox, oy) <= slack_sq:
                        for qid in qids:
                            out.append(QueryMatch(qid, oid, now))
        return tests

    def shed_shed(self, objects, queries, now: float, out: List[QueryMatch]) -> int:
        tests = 0
        ocx, ocy = objects.cx, objects.cy
        qcx, qcy = queries.cx, queries.cy
        shed_ids = objects.shed_object_ids
        for (hw, hh), qids in queries.shed_query_groups.items():
            tests += 1
            reach = queries.approx_radius + objects.approx_radius
            if rect_point_gap_sq(qcx, qcy, hw, hh, ocx, ocy) <= reach * reach:
                for qid in qids:
                    for oid in shed_ids:
                        out.append(QueryMatch(qid, oid, now))
        return tests

    def points_in_rect(
        self,
        batch: PointBatch,
        qid: int,
        qx: float,
        qy: float,
        hw: float,
        hh: float,
        now: float,
        out: List[QueryMatch],
    ) -> int:
        for oid, ox, oy in zip(batch.ids, batch.xs, batch.ys):
            if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                out.append(QueryMatch(qid, oid, now))
        return len(batch.ids)
