"""Cluster-summary aggregate queries.

"Clusters themselves serve as summaries of the objects they contain (i.e.,
aggregate) based on objects' common properties.  This can facilitate in
answering some of the aggregate queries" (paper §1).  This module provides
both flavours over a region of interest:

* **exact** aggregates that descend to member positions, and
* **summary** aggregates answered *purely from cluster metadata* —
  centroid, radius, member count, average speed — estimating each
  cluster's contribution by the fraction of its disc area inside the
  region.  These cost O(clusters) instead of O(members) and keep working
  under full load shedding, when member positions no longer exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clustering import ClusterWorld, MovingCluster
from ..generator import EntityKind
from ..geometry import Rect

__all__ = ["RegionAggregate", "exact_aggregate", "summary_aggregate"]


@dataclass(frozen=True)
class RegionAggregate:
    """COUNT and AVG(speed) over a region."""

    count: float
    average_speed: Optional[float]

    def __str__(self) -> str:
        speed = "n/a" if self.average_speed is None else f"{self.average_speed:.1f}"
        return f"count={self.count:.1f}, avg speed={speed}"


def exact_aggregate(
    world: ClusterWorld, region: Rect, kind: EntityKind = EntityKind.OBJECT
) -> RegionAggregate:
    """Aggregate over members whose stored positions fall inside ``region``.

    Load-shed members are invisible to the exact path (their positions are
    gone); callers handling shedding should prefer
    :func:`summary_aggregate` or combine both.
    """
    count = 0
    speed_sum = 0.0
    for cluster in world.storage.clusters():
        if not region.intersects_circle(cluster.circle()):
            continue
        cluster.flush_transform()
        members = cluster.objects if kind is EntityKind.OBJECT else cluster.queries
        for member in members.values():
            if member.position_shed:
                continue
            if region.contains_xy(member.abs_x, member.abs_y):
                count += 1
                speed_sum += member.speed
    return RegionAggregate(
        count=float(count),
        average_speed=speed_sum / count if count else None,
    )


def summary_aggregate(
    world: ClusterWorld, region: Rect, kind: EntityKind = EntityKind.OBJECT
) -> RegionAggregate:
    """Aggregate estimated from cluster summaries alone.

    Each cluster contributes ``members × overlap_fraction`` where
    ``overlap_fraction`` estimates how much of the cluster's disc lies in
    the region (assuming members spread uniformly over the disc).  Average
    speed is the contribution-weighted mean of cluster average speeds.
    """
    est_count = 0.0
    speed_weight = 0.0
    for cluster in world.storage.clusters():
        members = (
            cluster.object_count if kind is EntityKind.OBJECT else cluster.query_count
        )
        if members == 0:
            continue
        fraction = _disc_overlap_fraction(cluster, region)
        if fraction == 0.0:
            continue
        contribution = members * fraction
        est_count += contribution
        speed_weight += contribution * cluster.avespeed
    return RegionAggregate(
        count=est_count,
        average_speed=speed_weight / est_count if est_count else None,
    )


def _disc_overlap_fraction(cluster: MovingCluster, region: Rect) -> float:
    """Approximate fraction of the cluster disc inside ``region``.

    Point clusters (radius 0) are all-in or all-out.  Otherwise the
    fraction is the area of the clipped bounding geometry — the
    intersection of the disc's bounding box with the region — relative to
    the disc's bounding box.  A box-based estimate keeps this O(1); the
    tests bound its error against Monte-Carlo ground truth.
    """
    if cluster.radius == 0.0:
        return 1.0 if region.contains_xy(cluster.cx, cluster.cy) else 0.0
    if not region.intersects_circle(cluster.circle()):
        return 0.0
    r = cluster.radius
    box_min_x, box_max_x = cluster.cx - r, cluster.cx + r
    box_min_y, box_max_y = cluster.cy - r, cluster.cy + r
    inter_w = min(box_max_x, region.max_x) - max(box_min_x, region.min_x)
    inter_h = min(box_max_y, region.max_y) - max(box_min_y, region.min_y)
    if inter_w <= 0.0 or inter_h <= 0.0:
        return 0.0
    return min(1.0, (inter_w * inter_h) / (4.0 * r * r))
