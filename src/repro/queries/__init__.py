"""Query types beyond the continuous range join.

Snapshot range probes, cluster-based kNN, and cluster-summary aggregates —
the extensions the paper sketches in §1, built as working code over live
SCUBA cluster state.
"""

from .aggregate import RegionAggregate, exact_aggregate, summary_aggregate
from .continuous_knn import KnnConfig, ScubaKnn
from .knn import KnnNeighbor, evaluate_knn, knn_containing_cluster_fast_path
from .range import RangeAnswer, evaluate_range

__all__ = [
    "KnnConfig",
    "KnnNeighbor",
    "RangeAnswer",
    "RegionAggregate",
    "ScubaKnn",
    "evaluate_knn",
    "evaluate_range",
    "exact_aggregate",
    "knn_containing_cluster_fast_path",
    "summary_aggregate",
]
