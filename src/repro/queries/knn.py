"""Cluster-based k-nearest-neighbour queries.

The paper claims SCUBA "is applicable to other types of spatio-temporal
queries", sketching for kNN that "moving clusters that are not intersecting
with other moving clusters and contain at least k members can be assumed to
contain nearest members of the query object" (§1).  This module turns that
sketch into working code:

* :func:`evaluate_knn` — an exact best-first search over clusters, using
  each cluster's circle for distance bounds (lower bound
  ``max(0, d(centroid) − radius)``), expanding clusters in bound order and
  stopping as soon as the k-th best member distance beats the next
  cluster's lower bound.  Load-shed members contribute their *optimistic*
  nucleus bound and are flagged approximate.
* :func:`knn_containing_cluster_fast_path` — the paper's shortcut verbatim:
  if the query point's own cluster holds at least ``k`` members and its
  circle intersects no other cluster, the answer is inside that cluster.
"""

from __future__ import annotations

import heapq
import math
from typing import List, NamedTuple, Optional

from ..clustering import ClusterWorld, MovingCluster
from ..generator import EntityKind
from ..geometry import Point, circles_overlap

__all__ = ["KnnNeighbor", "evaluate_knn", "knn_containing_cluster_fast_path"]


class KnnNeighbor(NamedTuple):
    """One kNN answer entry."""

    entity_id: int
    distance: float
    #: True when the distance is a nucleus approximation (position shed).
    approximate: bool


def evaluate_knn(
    world: ClusterWorld,
    point: Point,
    k: int,
    kind: EntityKind = EntityKind.OBJECT,
) -> List[KnnNeighbor]:
    """The ``k`` entities of ``kind`` nearest to ``point``.

    Exact for members with stored positions; shed members are ranked by
    distance to their cluster's nucleus (a lower bound) and flagged.
    Returns fewer than ``k`` entries when the world holds fewer members.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # Best-first queue of clusters by lower-bound distance.
    queue: List = []
    for cluster in world.storage.clusters():
        count = (
            cluster.object_count if kind is EntityKind.OBJECT else cluster.query_count
        )
        if count == 0:
            continue
        d_centroid = math.hypot(point.x - cluster.cx, point.y - cluster.cy)
        lower = max(0.0, d_centroid - cluster.radius)
        heapq.heappush(queue, (lower, cluster.cid, cluster))

    best: List[KnnNeighbor] = []  # kept sorted ascending by distance

    def kth_distance() -> float:
        return best[k - 1].distance if len(best) >= k else math.inf

    while queue:
        lower, _cid, cluster = heapq.heappop(queue)
        if lower > kth_distance():
            break  # no remaining cluster can improve the answer
        cluster.flush_transform()
        members = (
            cluster.objects if kind is EntityKind.OBJECT else cluster.queries
        )
        nucleus_r = min(cluster.nucleus_radius, cluster.radius)
        d_centroid = math.hypot(point.x - cluster.cx, point.y - cluster.cy)
        shed_bound = max(0.0, d_centroid - nucleus_r)
        for entity_id, member in members.items():
            if member.position_shed:
                candidate = KnnNeighbor(entity_id, shed_bound, True)
            else:
                dist = math.hypot(point.x - member.abs_x, point.y - member.abs_y)
                candidate = KnnNeighbor(entity_id, dist, False)
            if candidate.distance < kth_distance() or len(best) < k:
                _insert_sorted(best, candidate, k)
    return best[:k]


def _insert_sorted(best: List[KnnNeighbor], item: KnnNeighbor, k: int) -> None:
    """Insert keeping ascending distance order; trim to ``k`` entries."""
    lo, hi = 0, len(best)
    while lo < hi:
        mid = (lo + hi) // 2
        if best[mid].distance <= item.distance:
            lo = mid + 1
        else:
            hi = mid
    best.insert(lo, item)
    if len(best) > k:
        best.pop()


def knn_containing_cluster_fast_path(
    world: ClusterWorld,
    point: Point,
    k: int,
    kind: EntityKind = EntityKind.OBJECT,
) -> Optional[MovingCluster]:
    """The paper's §1 shortcut: an isolated cluster that must hold the answer.

    Returns the cluster containing ``point`` when it (a) has at least ``k``
    members of ``kind`` and (b) its circle intersects no other cluster's —
    in that case all k nearest members are guaranteed to be its own.
    Returns ``None`` when the shortcut does not apply and a full
    :func:`evaluate_knn` is needed.
    """
    home: Optional[MovingCluster] = None
    for cluster in world.storage.clusters():
        if cluster.circle().contains_point(point):
            count = (
                cluster.object_count
                if kind is EntityKind.OBJECT
                else cluster.query_count
            )
            if count >= k:
                home = cluster
                break
    if home is None:
        return None
    for other in world.storage.clusters():
        if other.cid == home.cid:
            continue
        if circles_overlap(
            home.cx, home.cy, home.radius, other.cx, other.cy, other.radius
        ):
            return None
    return home
