"""Continuous k-nearest-neighbour queries over moving objects.

The paper claims SCUBA's cluster framework carries over to kNN queries
(§1).  This module makes that a working continuous operator:
:class:`ScubaKnn` ingests moving-object updates through the same
incremental clusterer as the range operator, maintains a registry of
continuous kNN queries (each a moving focal point plus its ``k``), and on
every Δ evaluation answers each query with the cluster-pruned best-first
search of :func:`repro.queries.knn.evaluate_knn`.

Answers are emitted as ordinary :class:`~repro.streams.QueryMatch` tuples
(rank order preserved within a query), so sinks, accuracy comparison and
the delta producer all work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..clustering import ClusteringSpec, ClusterWorld, IncrementalClusterer
from ..generator import EntityKind, Update
from ..geometry import Point, Rect
from ..network import DEFAULT_BOUNDS
from ..streams import QueryMatch, StagedJoinOperator
from .knn import evaluate_knn, knn_containing_cluster_fast_path

__all__ = ["KnnConfig", "ScubaKnn"]


@dataclass
class KnnConfig:
    """Parameters of the continuous kNN operator.

    Clustering parameters mirror :class:`~repro.core.ScubaConfig`;
    ``default_k`` applies to queries whose updates don't carry a ``k``
    attribute.
    """

    bounds: Rect = None  # type: ignore[assignment]
    grid_size: int = 100
    theta_d: float = 100.0
    theta_s: float = 10.0
    delta: float = 2.0
    default_k: int = 5
    #: Try the paper's isolated-cluster shortcut before the full search.
    use_fast_path: bool = True

    def __post_init__(self) -> None:
        if self.bounds is None:
            self.bounds = DEFAULT_BOUNDS
        if self.default_k < 1:
            raise ValueError(f"default_k must be >= 1, got {self.default_k}")


class _KnnQuery:
    """Registry entry for one continuous kNN query."""

    __slots__ = ("qid", "loc", "k", "last_t")

    def __init__(self, qid: int, loc: Point, k: int, last_t: float) -> None:
        self.qid = qid
        self.loc = loc
        self.k = k
        self.last_t = last_t


class ScubaKnn(StagedJoinOperator):
    """Cluster-based continuous kNN evaluation."""

    def __init__(self, config: Optional[KnnConfig] = None) -> None:
        self.config = config if config is not None else KnnConfig()
        self.world = ClusterWorld(self.config.bounds, self.config.grid_size)
        self.clusterer = IncrementalClusterer(
            self.world,
            ClusteringSpec(theta_d=self.config.theta_d, theta_s=self.config.theta_s),
        )
        self.queries: Dict[int, _KnnQuery] = {}
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0
        #: How often the isolated-cluster shortcut answered a query.
        self.fast_path_answers = 0
        self.evaluations = 0

    # -- ingest -----------------------------------------------------------------

    def on_update(self, update: Update) -> None:
        """Objects are clustered; query updates move their focal points.

        A query update's ``k`` is read from its ``attrs`` mapping
        (``{"k": 3}``), falling back to the configured default.
        """
        if update.kind is EntityKind.OBJECT:
            self.clusterer.ingest(update)
            return
        entry = self.queries.get(update.entity_id)
        k = update.attrs.get("k", self.config.default_k) if update.attrs else (
            entry.k if entry else self.config.default_k
        )
        if k < 1:
            raise ValueError(f"query {update.entity_id} carries invalid k={k}")
        if entry is None:
            self.queries[update.entity_id] = _KnnQuery(
                update.entity_id, update.loc, k, update.t
            )
        else:
            entry.loc = update.loc
            entry.k = k
            entry.last_t = update.t

    def register_query(self, qid: int, loc: Point, k: int, t: float = 0.0) -> None:
        """Programmatic registration (equivalent to a first query update)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.queries[qid] = _KnnQuery(qid, loc, k, t)

    def remove_query(self, qid: int) -> None:
        self.queries.pop(qid, None)

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Forget one entity (sharded halo hand-off).

        Objects are evicted from their cluster through the world's
        membership pathway (emptied clusters dissolve, invariants hold);
        queries simply leave the registry.
        """
        if kind is EntityKind.OBJECT:
            cid = self.world.home.cluster_of(entity_id, kind)
            if cid is not None:
                self.world.evict(self.world.storage.get(cid), entity_id, kind)
        else:
            self.queries.pop(entity_id, None)

    # -- evaluation ---------------------------------------------------------------

    def join_phase(self, now: float) -> List[QueryMatch]:
        """Answer every registered kNN query against current cluster state.

        Matches for one query appear in ascending-distance (rank) order.
        """
        self.evaluations += 1
        results: List[QueryMatch] = []
        for qid in sorted(self.queries):
            query = self.queries[qid]
            if self.config.use_fast_path:
                cluster = knn_containing_cluster_fast_path(
                    self.world, query.loc, query.k
                )
                if cluster is not None:
                    self.fast_path_answers += 1
            neighbors = evaluate_knn(self.world, query.loc, query.k)
            for neighbor in neighbors:
                results.append(QueryMatch(qid, neighbor.entity_id, now))
        return results

    def post_join_phase(self, now: float) -> None:
        self._post_join_maintenance(now)

    def _post_join_maintenance(self, now: float) -> None:
        """Same cluster upkeep as the range operator."""
        for cluster in list(self.world.storage):
            if cluster.has_expired(now) or cluster.will_pass_destination(
                self.config.delta
            ):
                self.world.dissolve(cluster)
                continue
            cluster.advance_to(now)
            cluster.flush_transform()
            cluster.recentre()
            cluster.recompute_radius()
            cluster.update_expiry(now)
            self.world.grid.refresh(cluster)

    # -- introspection ---------------------------------------------------------------

    @property
    def cluster_count(self) -> int:
        return self.world.cluster_count

    def state_roots(self) -> List[object]:
        return [self.world.storage, self.world.home, self.world.grid, self.queries]

    def reset(self) -> None:
        self.__init__(self.config)

    def __repr__(self) -> str:
        return (
            f"ScubaKnn({len(self.queries)} queries, "
            f"{self.cluster_count} clusters)"
        )
