"""Ad-hoc range queries over live SCUBA state.

The continuous range query is SCUBA's primary workload and is evaluated by
the join pipeline itself.  This module adds the *snapshot* flavour: probe
the current cluster state with an arbitrary rectangle, without registering
a continuous query.  Useful for dashboards ("who is in this zone right
now?") and for tests that need an independent read-out of cluster state.
"""

from __future__ import annotations

from typing import Set

from ..clustering import ClusterWorld
from ..generator import EntityKind
from ..geometry import Circle, Rect

__all__ = ["evaluate_range", "RangeAnswer"]


class RangeAnswer:
    """Result of a snapshot range probe.

    ``exact_ids`` are members whose stored positions fall inside the
    rectangle.  ``possible_ids`` are load-shed members whose cluster
    nucleus intersects the rectangle — they *may* be inside, but only their
    cluster-level approximation is known.
    """

    __slots__ = ("exact_ids", "possible_ids")

    def __init__(self, exact_ids: Set[int], possible_ids: Set[int]) -> None:
        self.exact_ids = exact_ids
        self.possible_ids = possible_ids

    @property
    def all_ids(self) -> Set[int]:
        return self.exact_ids | self.possible_ids

    def __repr__(self) -> str:
        return (
            f"RangeAnswer({len(self.exact_ids)} exact, "
            f"{len(self.possible_ids)} possible)"
        )


def evaluate_range(
    world: ClusterWorld, region: Rect, kind: EntityKind = EntityKind.OBJECT
) -> RangeAnswer:
    """Entities of ``kind`` currently inside ``region``.

    Uses the ClusterGrid to prune: only clusters registered in cells the
    rectangle touches are inspected, and a cluster whose circle misses the
    rectangle is skipped without looking at members — the same
    filter-then-refine shape as the continuous join.
    """
    exact: Set[int] = set()
    possible: Set[int] = set()
    candidate_ids: Set[int] = set()
    for cell in world.grid.cells_for_rect(region):
        candidate_ids.update(world.grid.members(cell))
    for cid in sorted(candidate_ids):
        cluster = world.storage.get(cid)
        if not region.intersects_circle(cluster.circle()):
            continue
        cluster.flush_transform()
        members = (
            cluster.objects if kind is EntityKind.OBJECT else cluster.queries
        )
        nucleus_hit = cluster.shed_count and region.intersects_circle(
            Circle(cluster.centroid, min(cluster.nucleus_radius, cluster.radius))
        )
        for entity_id, member in members.items():
            if member.position_shed:
                if nucleus_hit:
                    possible.add(entity_id)
            elif region.contains_xy(member.abs_x, member.abs_y):
                exact.add(entity_id)
    return RangeAnswer(exact, possible)
