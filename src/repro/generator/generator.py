"""Network-based generator of moving objects and queries.

This is our re-implementation of the role Brinkhoff's *Network-Based
Generator of Moving Objects* [Brinkhoff, GeoInformatica 2002] plays in the
paper's evaluation (§6.1): it owns a population of moving entities, advances
them along the road network in piecewise-linear fashion, and emits the two
update streams SCUBA consumes.

The one capability we add over the original tool is a first-class **skew
factor** (§6.3): the average number of entities sharing spatio-temporal
properties.  The population is partitioned into groups of ``skew`` entities
that share an origin, a destination plan and a base speed, so ``skew = 1``
yields entirely independent movers (every entity its own cluster) and
``skew = 200`` yields dense 200-strong convoys, exactly the x-axis of the
paper's Fig. 10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..network import EdgePosition, RoadNetwork, Router
from .batch import TickBatch
from .records import EntityKind, Update
from .state import DestinationPlan, MovingEntity
from .vectorized import VectorTickCore

__all__ = ["GeneratorConfig", "NetworkBasedGenerator"]


@dataclass
class GeneratorConfig:
    """Knobs of the workload generator.

    Defaults follow the paper's experimental settings (§6.1) scaled by the
    caller: 1:1 objects to queries, every entity reporting every time unit
    (``update_fraction = 1.0``), uniform query windows.
    """

    num_objects: int = 1000
    num_queries: int = 1000
    #: Average number of entities sharing spatio-temporal properties
    #: (origin, destination plan, base speed).  Paper §6.3's skew factor.
    skew: int = 10
    seed: int = 42
    #: Fraction of entities that report per time unit (paper default: 100%).
    update_fraction: float = 1.0
    #: Range-query window extent (width, height) in spatial units.
    query_range: Tuple[float, float] = (50.0, 50.0)
    #: Distance between consecutive group members along their shared route,
    #: in spatial units (car-following headway).  A skew group is a traffic
    #: *stream* strung out along its corridor — members within Θ_D of each
    #: other cluster together, so one large group yields a chain of moving
    #: clusters, exactly like a platoon of vehicles on a highway.  The
    #: workload therefore stays spread over the whole city at every skew
    #: level; skew changes *clusterability*, not spatial coverage.
    member_spacing: float = 15.0
    #: Relative jitter of member speed around the group base speed.  Kept
    #: small so member speeds stay within Θ_S of the cluster average.
    speed_jitter: float = 0.04
    #: Base speed factor range (fraction of the road speed limit) sampled
    #: per group.
    speed_factor_range: Tuple[float, float] = (0.6, 1.0)
    #: When False (default), every skew group is kind-pure: convoys of
    #: objects and convoys of queries are separate populations that only
    #: meet when their routes cross — the sparse-result regime of the
    #: paper's evaluation.  When True, groups mix objects and queries, so
    #: query windows permanently cover co-travelling objects and the result
    #: volume grows with the skew factor (useful for shedding/accuracy
    #: studies that want dense matches).
    mixed_groups: bool = False
    #: Fraction of skew groups that are *parked*: their members stand still
    #: (speed factor 0) at their initial positions, like congested or
    #: parked traffic.  Stationary entities still report per
    #: ``update_fraction`` — real reporting policies keep sending
    #: heartbeats — but their clusters never move, which is the
    #: steady-state regime the incremental join sweep replays.
    stopped_fraction: float = 0.0
    #: Fraction of skew groups whose origins *and* destinations are drawn
    #: only from road nodes inside :attr:`hotspot_rect` — a downtown whose
    #: traffic never leaves.  The plain ``skew`` knob changes
    #: clusterability while coverage stays uniform; ``hotspot`` changes
    #: *spatial* skew, which is what load-adaptive re-sharding responds
    #: to.  ``0.0`` (default) leaves the stream bit-identical to configs
    #: that predate the knob.
    hotspot: float = 0.0
    #: The hot sub-rect as fractions of the network bounds:
    #: ``(min_x, min_y, max_x, max_y)``, each in [0, 1].  The default is
    #: the lower-left ~12% of the city's area.
    hotspot_rect: Tuple[float, float, float, float] = (0.0, 0.0, 0.35, 0.35)
    #: When True (default), ``tick()`` runs the vectorized column core and
    #: returns a :class:`~repro.generator.batch.TickBatch` — a
    #: ``Sequence[Update]`` whose rows materialize lazily, bit-identical to
    #: the scalar stream.  When False, ``tick()`` is the per-entity
    #: reference loop returning ``List[Update]``.
    tick_batching: bool = True

    def __post_init__(self) -> None:
        if self.num_objects < 0 or self.num_queries < 0:
            raise ValueError("population sizes must be non-negative")
        if self.skew < 1:
            raise ValueError(f"skew must be >= 1, got {self.skew}")
        if not 0.0 < self.update_fraction <= 1.0:
            raise ValueError(
                f"update_fraction must be in (0, 1], got {self.update_fraction}"
            )
        lo, hi = self.speed_factor_range
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(f"bad speed_factor_range: {self.speed_factor_range}")
        if not 0.0 <= self.stopped_fraction <= 1.0:
            raise ValueError(
                f"stopped_fraction must be in [0, 1], got {self.stopped_fraction}"
            )
        if not 0.0 <= self.hotspot <= 1.0:
            raise ValueError(f"hotspot must be in [0, 1], got {self.hotspot}")
        hx0, hy0, hx1, hy1 = self.hotspot_rect
        if not (0.0 <= hx0 < hx1 <= 1.0 and 0.0 <= hy0 < hy1 <= 1.0):
            raise ValueError(
                f"hotspot_rect fractions must satisfy 0 <= min < max <= 1, "
                f"got {self.hotspot_rect}"
            )


class NetworkBasedGenerator:
    """Advances a population of moving entities and emits update streams."""

    def __init__(self, network: RoadNetwork, config: GeneratorConfig) -> None:
        if network.node_count < 2:
            raise ValueError("generator needs a network with >= 2 nodes")
        self.network = network
        self.config = config
        self.router = Router(network)
        self._rng = random.Random(config.seed)
        self._node_ids = [n.node_id for n in network.nodes()]
        self._hot_node_ids = self._resolve_hot_nodes()
        self._entities: List[MovingEntity] = []
        self._core: Optional[VectorTickCore] = None
        self.time = 0.0
        #: Number of tick() calls served — the generator's resumable
        #: cursor.  Generation is deterministic in the dt sequence, so a
        #: fresh generator fast-forwarded by this many ticks reproduces
        #: this generator's state exactly (see :meth:`fast_forward`).
        self.ticks_elapsed = 0
        self._build_population()

    # -- population construction ------------------------------------------------

    def _resolve_hot_nodes(self) -> List[object]:
        """Road nodes inside the configured hotspot sub-rect."""
        cfg = self.config
        if cfg.hotspot <= 0.0:
            return []
        bounds = self.network.bounds
        hx0, hy0, hx1, hy1 = cfg.hotspot_rect
        min_x = bounds.min_x + hx0 * bounds.width
        max_x = bounds.min_x + hx1 * bounds.width
        min_y = bounds.min_y + hy0 * bounds.height
        max_y = bounds.min_y + hy1 * bounds.height
        hot = [
            node.node_id
            for node in self.network.nodes()
            if min_x <= node.location.x <= max_x
            and min_y <= node.location.y <= max_y
        ]
        if len(hot) < 2:
            raise ValueError(
                f"hotspot_rect {cfg.hotspot_rect} covers {len(hot)} road "
                f"node(s); hot groups need at least 2 to route between"
            )
        return hot

    def _build_population(self) -> None:
        cfg = self.config
        next_id = {EntityKind.OBJECT: 0, EntityKind.QUERY: 0}
        group_index = 0
        if cfg.mixed_groups:
            kinds = [EntityKind.OBJECT] * cfg.num_objects + [
                EntityKind.QUERY
            ] * cfg.num_queries
            self._rng.shuffle(kinds)
            for start in range(0, len(kinds), cfg.skew):
                self._build_group(
                    group_index, kinds[start : start + cfg.skew], next_id
                )
                group_index += 1
        else:
            # Kind-pure convoys: groups never straddle the object/query
            # boundary, even when the population is not a skew multiple.
            for kind, count in (
                (EntityKind.OBJECT, cfg.num_objects),
                (EntityKind.QUERY, cfg.num_queries),
            ):
                remaining = count
                while remaining > 0:
                    size = min(cfg.skew, remaining)
                    self._build_group(group_index, [kind] * size, next_id)
                    group_index += 1
                    remaining -= size

    def _build_group(
        self,
        group_index: int,
        group_kinds: List[EntityKind],
        next_id: dict,
    ) -> None:
        """Create one skew group: a traffic stream along a shared corridor.

        All members share the destination plan and base speed; they are
        placed at ``member_spacing`` intervals along the group's initial
        route (wrapping when the stream is longer than the route), so a big
        group forms a platoon stretched over its corridor rather than a
        point-mass pile-up.
        """
        cfg = self.config
        rng = self._rng
        base_factor = rng.uniform(*cfg.speed_factor_range)
        # Guarding the draws keeps the stream bit-identical to configs that
        # predate stopped_fraction/hotspot whenever the knobs are off.
        stopped = cfg.stopped_fraction > 0.0 and rng.random() < cfg.stopped_fraction
        hot = cfg.hotspot > 0.0 and rng.random() < cfg.hotspot
        # A hot group's whole life — origin draw and every future
        # destination — happens inside the hotspot's node pool.
        node_pool = self._hot_node_ids if hot else self._node_ids
        plan = DestinationPlan((cfg.seed, group_index), node_pool)

        # Shared initial route: origin -> first planned destination.
        origin = node_pool[rng.randrange(len(node_pool))]
        path = None
        for attempt in range(len(self._node_ids)):
            destination = plan.next_destination(attempt, origin)
            path = self.router.route(origin, destination)
            if path is not None and len(path) >= 2:
                break
        if path is None or len(path) < 2:
            raise RuntimeError(
                f"no route out of node {origin}; is the network connected?"
            )
        # Cumulative distance along the route for member placement.
        edges = []
        cumulative = [0.0]
        for u, v in zip(path, path[1:]):
            edge = self.network.find_edge(u, v)
            assert edge is not None
            edges.append(edge)
            cumulative.append(cumulative[-1] + edge.length)
        route_length = cumulative[-1]
        # Start the stream at a random point along its corridor so the
        # initial population covers the city instead of stacking at origin
        # nodes (with skew = 1 every "stream" is a single entity and this
        # offset is what spreads the population).
        start_along = rng.uniform(0.0, route_length)

        for member_index, kind in enumerate(group_kinds):
            along = (start_along + member_index * cfg.member_spacing) % route_length
            # Locate the edge containing `along` and the residual offset.
            leg_index = 0
            while cumulative[leg_index + 1] <= along and leg_index < len(edges) - 1:
                leg_index += 1
            offset = min(along - cumulative[leg_index], edges[leg_index].length)
            position = EdgePosition(edges[leg_index], path[leg_index], offset)
            if stopped:
                factor = 0.0
            else:
                jitter = 1.0 + cfg.speed_jitter * rng.uniform(-1.0, 1.0)
                factor = min(max(base_factor * jitter, 0.05), 1.0)
            entity = MovingEntity(
                entity_id=next_id[kind],
                kind=kind,
                position=position,
                route=list(path[leg_index + 2 :]),
                speed_factor=factor,
                plan=plan,
                router=self.router,
                range_width=cfg.query_range[0] if kind is EntityKind.QUERY else 0.0,
                range_height=cfg.query_range[1] if kind is EntityKind.QUERY else 0.0,
            )
            next_id[kind] += 1
            self._entities.append(entity)

    # -- simulation ----------------------------------------------------------------

    @property
    def entities(self) -> List[MovingEntity]:
        """The live population, with column state synced back.

        Reading an entity must observe the vectorized core's current
        offsets/odometers; the core is then marked dirty so any mutation
        the caller performs (tests park entities, benchmarks retune them)
        is reloaded before the next tick.
        """
        core = self._core
        if core is not None:
            core.sync_entities()
            core.mark_dirty()
        return self._entities

    def _vector_core(self) -> VectorTickCore:
        core = self._core
        if core is None:
            core = self._core = VectorTickCore(self)
        return core

    def tick(self, dt: float = 1.0) -> Sequence[Update]:
        """Advance the world by ``dt`` time units and collect update tuples.

        Every entity moves; a configurable fraction of them report.  The
        returned sequence is the merged object+query stream for this tick,
        in stable entity order (the incremental clusterer's outcome depends
        on arrival order — keeping it deterministic keeps experiments
        reproducible).  With ``tick_batching`` (the default) the sequence
        is a column-backed :class:`TickBatch`; the scalar reference loop
        below emits the bit-identical stream as a plain list.
        """
        self.time += dt
        self.ticks_elapsed += 1
        fraction = self.config.update_fraction
        if self.config.tick_batching:
            core = self._vector_core()
            core.advance(dt)
            return core.emit(self.time, self._rng, fraction)
        updates: List[Update] = []
        for entity in self._entities:
            entity.advance(dt, self.network)
            if fraction >= 1.0 or self._rng.random() < fraction:
                updates.append(entity.make_update(self.time, self.network))
        return updates

    def snapshot(self) -> Sequence[Update]:
        """Updates for the *entire* population at the current time.

        Used by tests and accuracy measurements that need ground truth
        irrespective of ``update_fraction``.  Batched mode serves it from
        the column core without materializing per-entity rows.
        """
        if self.config.tick_batching:
            return self._vector_core().emit_all(self.time)
        return [e.make_update(self.time, self.network) for e in self._entities]

    def fast_forward(self, ticks: int, dt: float = 1.0) -> None:
        """Advance ``ticks`` time steps, discarding the emitted updates.

        The resume path of a checkpointed run: a generator rebuilt from
        the same network and config, fast-forwarded to a snapshot's
        ``ticks_elapsed`` cursor, continues the stream bit-identically.
        Batched mode skips emission entirely — it advances columns and
        burns the per-entity report draws the emitting tick would have.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be non-negative, got {ticks}")
        if self.config.tick_batching:
            core = self._vector_core()
            fraction = self.config.update_fraction
            for _ in range(ticks):
                self.time += dt
                self.ticks_elapsed += 1
                core.advance(dt)
                core.consume_report_draws(self._rng, fraction)
            return
        for _ in range(ticks):
            self.tick(dt)

    @property
    def objects(self) -> List[MovingEntity]:
        return [e for e in self.entities if e.kind is EntityKind.OBJECT]

    @property
    def queries(self) -> List[MovingEntity]:
        return [e for e in self.entities if e.kind is EntityKind.QUERY]

    def __repr__(self) -> str:
        return (
            f"NetworkBasedGenerator({len(self._entities)} entities, "
            f"skew={self.config.skew}, t={self.time:g})"
        )
