"""Moving object/query workload generation.

Re-implements the role of Brinkhoff's Network-Based Generator of Moving
Objects in the paper's evaluation, with an explicit skew-factor knob for
controlling clusterability (paper §6.3).
"""

from .batch import TickBatch
from .generator import GeneratorConfig, NetworkBasedGenerator
from .records import EntityKind, LocationUpdate, QueryUpdate, Update
from .state import DestinationPlan, MovingEntity
from .trace import TraceRecorder, TraceReplayer, update_from_dict, update_to_dict

__all__ = [
    "DestinationPlan",
    "EntityKind",
    "GeneratorConfig",
    "LocationUpdate",
    "MovingEntity",
    "NetworkBasedGenerator",
    "QueryUpdate",
    "TickBatch",
    "TraceRecorder",
    "TraceReplayer",
    "Update",
    "update_from_dict",
    "update_to_dict",
]
