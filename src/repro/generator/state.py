"""Simulation state of a single moving entity.

A :class:`MovingEntity` is the generator-side truth about one object or
query: where it is on the network, how fast it travels, and the remainder
of its current route.  The paper's motion model is honoured exactly:

* movement is piecewise linear along road edges;
* ``cnloc`` (the next connection node) never changes until the entity
  actually reaches that node ("the network is stable", §2);
* on reaching the end of its route the entity asks its
  :class:`DestinationPlan` for the next destination — groups of entities
  sharing a plan keep travelling together, which is what produces the
  spatio-temporal skew of §6.3.
"""

from __future__ import annotations

import random
from typing import Any, List, Mapping, Optional

from ..geometry import Point
from ..network import EdgePosition, NodeId, RoadNetwork, Router
from .records import EntityKind, LocationUpdate, QueryUpdate, Update

__all__ = ["DestinationPlan", "MovingEntity"]


class DestinationPlan:
    """Deterministic per-group destination oracle.

    Entities in the same skew group share a plan (same ``plan_seed``).  The
    destination for leg ``i`` from node ``n`` depends only on
    ``(plan_seed, i, n)``, so group members that arrive at the same node on
    the same leg — even at slightly different times — pick the *same* next
    destination and stay clusterable, while independent entities (distinct
    seeds) scatter.
    """

    def __init__(self, plan_seed: object, node_ids: List[NodeId]) -> None:
        if not node_ids:
            raise ValueError("destination plan needs a non-empty node set")
        self.plan_seed = str(plan_seed)
        self._node_ids = node_ids

    def next_destination(self, leg: int, current: NodeId) -> NodeId:
        """Destination node for leg ``leg`` starting from ``current``."""
        rng = random.Random(f"{self.plan_seed}|{leg}|{current}")
        choice = self._node_ids[rng.randrange(len(self._node_ids))]
        if choice == current and len(self._node_ids) > 1:
            # Deterministically skip to the next node id to avoid a no-op leg.
            idx = (self._node_ids.index(choice) + 1) % len(self._node_ids)
            choice = self._node_ids[idx]
        return choice


class MovingEntity:
    """Mutable simulation state for one moving object or query."""

    __slots__ = (
        "entity_id",
        "kind",
        "position",
        "route",
        "leg",
        "speed_factor",
        "speed",
        "plan",
        "router",
        "attrs",
        "range_width",
        "range_height",
        "distance_travelled",
    )

    def __init__(
        self,
        entity_id: int,
        kind: EntityKind,
        position: EdgePosition,
        route: List[NodeId],
        speed_factor: float,
        plan: DestinationPlan,
        router: Router,
        attrs: Optional[Mapping[str, Any]] = None,
        range_width: float = 0.0,
        range_height: float = 0.0,
    ) -> None:
        # Zero is a legitimate factor: parked/congested entities stand
        # still but keep reporting (see GeneratorConfig.stopped_fraction).
        if not 0.0 <= speed_factor <= 1.0:
            raise ValueError(f"speed factor must be in [0, 1], got {speed_factor}")
        if kind is EntityKind.QUERY and (range_width <= 0 or range_height <= 0):
            raise ValueError("queries need a positive range extent")
        self.entity_id = entity_id
        self.kind = kind
        self.position = position
        #: Remaining route *after* the current edge's destination node.
        self.route = route
        self.leg = 0
        self.speed_factor = speed_factor
        self.speed = speed_factor * position.edge.speed_limit
        self.plan = plan
        self.router = router
        self.attrs = attrs
        self.range_width = range_width
        self.range_height = range_height
        self.distance_travelled = 0.0

    # -- motion ----------------------------------------------------------------

    @property
    def cn_node(self) -> NodeId:
        """The connection node the entity will reach next (paper's cnloc)."""
        return self.position.destination

    def location(self, network: RoadNetwork) -> Point:
        return network.position_location(self.position)

    def advance(self, dt: float, network: RoadNetwork) -> None:
        """Move for ``dt`` time units along the current route.

        Node crossings within ``dt`` are handled exactly: the remaining
        travel budget carries over to the next edge at that edge's speed.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        budget = dt
        while budget > 0.0:
            step = self.speed * budget
            remaining = self.position.remaining
            if step < remaining:
                self.position.offset += step
                self.distance_travelled += step
                return
            # Reach the connection node; consume the time it took.
            if self.speed > 0:
                budget -= remaining / self.speed
            else:
                # A parked entity flush against its connection node: it is
                # not going anywhere, so the budget is spent.
                budget = 0.0
            self.distance_travelled += remaining
            self._enter_next_edge(network)

    def _enter_next_edge(self, network: RoadNetwork) -> None:
        """Step onto the next edge of the route, replanning at route end."""
        arrived_at = self.position.destination
        if not self.route:
            self.leg += 1
            self._replan(arrived_at)
        if not self.route:
            # Degenerate single-node network: stay put at the node.
            self.position.offset = self.position.edge.length
            return
        next_node = self.route.pop(0)
        edge = self.router.network.find_edge(arrived_at, next_node)
        if edge is None:
            raise RuntimeError(
                f"route step {arrived_at}->{next_node} has no edge; "
                "routes must follow network adjacency"
            )
        self.position = EdgePosition(edge, arrived_at, 0.0)
        self.speed = self.speed_factor * edge.speed_limit

    def _replan(self, current: NodeId) -> None:
        """Choose the next destination and route to it."""
        destination = self.plan.next_destination(self.leg, current)
        path = self.router.route(current, destination)
        if path is None or len(path) < 2:
            # Unreachable or trivial destination: try the next leg index so
            # the deterministic plan still makes progress.
            self.leg += 1
            destination = self.plan.next_destination(self.leg, current)
            path = self.router.route(current, destination)
        if path is None or len(path) < 2:
            self.route = []
        else:
            self.route = path[1:]

    # -- reporting ----------------------------------------------------------------

    def make_update(self, t: float, network: RoadNetwork) -> Update:
        """The stream tuple this entity would emit at time ``t``."""
        loc = self.location(network)
        cn = self.cn_node
        cn_loc = network.node_location(cn)
        if self.kind is EntityKind.OBJECT:
            return LocationUpdate(
                oid=self.entity_id,
                loc=loc,
                t=t,
                speed=self.speed,
                cn_node=cn,
                cn_loc=cn_loc,
                attrs=self.attrs,
            )
        return QueryUpdate(
            qid=self.entity_id,
            loc=loc,
            t=t,
            speed=self.speed,
            cn_node=cn,
            cn_loc=cn_loc,
            range_width=self.range_width,
            range_height=self.range_height,
            attrs=self.attrs,
        )

    def __repr__(self) -> str:
        return (
            f"MovingEntity({self.kind.value} {self.entity_id}, "
            f"pos={self.position!r}, speed={self.speed:g})"
        )
