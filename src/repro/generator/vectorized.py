"""Vectorized tick core: whole-population kinematics as column ops.

The scalar generator advances each :class:`MovingEntity` with a Python
loop; at 10k entities that loop *is* the generate stage.  This core keeps
the population's motion state as columns (numpy ``float64`` arrays, plain
lists without numpy) and advances every entity per tick with a handful of
array operations, delegating to the scalar entity only at the infrequent
moments the scalar path itself treats specially — node crossings, where
routes pop, plans replan, and speeds change.

Bit-identical by construction
-----------------------------

The emitted stream must match the scalar generator exactly (the
stream-equivalence tests pin this).  That holds because every float the
fast path produces is computed by the *same* IEEE-754 operations on the
same values as the scalar path:

* steady advance is ``offset += speed * dt`` — one multiply, one add,
  identical in numpy ``float64`` and Python ``float``;
* an entity whose step reaches its connection node (``speed * dt >=
  length - offset``, the exact negation of the scalar fast-path guard) is
  synced back and advanced by ``MovingEntity.advance`` itself, then its
  columns are reloaded — crossings, replanning, and speed changes never
  run vectorized at all;
* emission interpolates ``start + (end - start) * clamp(offset/length)``
  with the same operation order as ``Segment.point_at`` (edge lengths are
  strictly positive, so the division is always defined);
* the generator's RNG is only consulted for the per-entity report draw
  (``update_fraction < 1``), which the caller performs in entity order
  after the advance — ``MovingEntity.advance`` never draws, so the RNG
  stream is untouched by vectorization.

Columns go stale only through the entity objects: callers that reach for
``generator.entities`` get the offsets/odometers synced back and the core
marked dirty, so external mutation of entity state (tests park entities,
resume paths rebuild them) is always observed on the next tick.
"""

from __future__ import annotations

from typing import List, Optional

from .batch import TickBatch
from .records import EntityKind

try:  # pragma: no cover - exercised via both CI variants
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["VectorTickCore"]


class VectorTickCore:
    """Column-resident motion state for a generator's whole population."""

    def __init__(self, generator, numpy_module=_np) -> None:
        self.generator = generator
        self.network = generator.network
        self.np = numpy_module
        self._dirty = True
        # Static columns (population membership never changes post-build).
        entities = generator._entities
        self.n = len(entities)
        self.ids: List[int] = [e.entity_id for e in entities]
        self.kinds: List[bool] = [e.kind is EntityKind.OBJECT for e in entities]
        self.keys: List[int] = [
            (eid << 1) | 1 if is_obj else eid << 1
            for eid, is_obj in zip(self.ids, self.kinds)
        ]
        ws = [e.range_width for e in entities]
        hs = [e.range_height for e in entities]
        if self.np is not None:
            ws = self.np.asarray(ws, dtype=self.np.float64)
            hs = self.np.asarray(hs, dtype=self.np.float64)
        self.ws = ws
        self.hs = hs
        # Dynamic columns, built on first use.
        self.offsets = None
        self.lengths = None
        self.sxs = None
        self.sys_ = None
        self.dxs = None
        self.dys = None
        self.speeds = None
        self.dists = None
        self.cns: List[int] = [0] * self.n
        self.cn_xs = None
        self.cn_ys = None
        self.cn_points: List[object] = [None] * self.n

    # -- column (re)loading --------------------------------------------------

    def mark_dirty(self) -> None:
        """External code touched entity state; reload before the next tick."""
        self._dirty = True

    def _reload(self) -> None:
        n = self.n
        offsets = [0.0] * n
        lengths = [0.0] * n
        sxs = [0.0] * n
        sys_ = [0.0] * n
        dxs = [0.0] * n
        dys = [0.0] * n
        speeds = [0.0] * n
        dists = [0.0] * n
        cn_xs = [0.0] * n
        cn_ys = [0.0] * n
        cns = self.cns
        cn_points = self.cn_points
        node_location = self.network.node_location
        for i, e in enumerate(self.generator._entities):
            pos = e.position
            edge = pos.edge
            dest = edge.other_endpoint(pos.origin)
            start = node_location(pos.origin)
            end = node_location(dest)
            offsets[i] = pos.offset
            lengths[i] = edge.length
            sxs[i] = start.x
            sys_[i] = start.y
            dxs[i] = end.x - start.x
            dys[i] = end.y - start.y
            speeds[i] = e.speed
            dists[i] = e.distance_travelled
            cns[i] = dest
            cn_xs[i] = end.x
            cn_ys[i] = end.y
            cn_points[i] = end
        np = self.np
        if np is not None:
            f64 = np.float64
            offsets = np.asarray(offsets, dtype=f64)
            lengths = np.asarray(lengths, dtype=f64)
            sxs = np.asarray(sxs, dtype=f64)
            sys_ = np.asarray(sys_, dtype=f64)
            dxs = np.asarray(dxs, dtype=f64)
            dys = np.asarray(dys, dtype=f64)
            speeds = np.asarray(speeds, dtype=f64)
            dists = np.asarray(dists, dtype=f64)
            cn_xs = np.asarray(cn_xs, dtype=f64)
            cn_ys = np.asarray(cn_ys, dtype=f64)
        self.offsets = offsets
        self.lengths = lengths
        self.sxs = sxs
        self.sys_ = sys_
        self.dxs = dxs
        self.dys = dys
        self.speeds = speeds
        self.dists = dists
        self.cn_xs = cn_xs
        self.cn_ys = cn_ys
        self._dirty = False

    def _load_row(self, i: int, e) -> None:
        """Refresh one entity's columns after a scalar crossing advance."""
        pos = e.position
        edge = pos.edge
        dest = edge.other_endpoint(pos.origin)
        node_location = self.network.node_location
        start = node_location(pos.origin)
        end = node_location(dest)
        self.offsets[i] = pos.offset
        self.lengths[i] = edge.length
        self.sxs[i] = start.x
        self.sys_[i] = start.y
        self.dxs[i] = end.x - start.x
        self.dys[i] = end.y - start.y
        self.speeds[i] = e.speed
        self.dists[i] = e.distance_travelled
        self.cns[i] = dest
        self.cn_xs[i] = end.x
        self.cn_ys[i] = end.y
        self.cn_points[i] = end

    def sync_entities(self) -> None:
        """Write column state back to the entity objects.

        Only offsets and odometers can be stale: every other entity field
        (edge, route, speed, plan state) changes exclusively inside
        ``MovingEntity.advance``, which the core always runs scalar.
        """
        if self._dirty or self.offsets is None:
            return
        offsets = self.offsets
        dists = self.dists
        if self.np is not None:
            offsets = offsets.tolist()
            dists = dists.tolist()
        for i, e in enumerate(self.generator._entities):
            e.position.offset = offsets[i]
            e.distance_travelled = dists[i]

    # -- advancing -----------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Advance the whole population by ``dt`` (scalar-exact)."""
        if self._dirty:
            self._reload()
        if self.np is not None:
            self._advance_numpy(dt)
        else:
            self._advance_python(dt)

    def _advance_numpy(self, dt: float) -> None:
        np = self.np
        offsets = self.offsets
        dists = self.dists
        step = self.speeds * dt
        crossing = step >= (self.lengths - offsets)
        if crossing.any():
            entities = self.generator._entities
            network = self.network
            for i in np.nonzero(crossing)[0].tolist():
                e = entities[i]
                e.position.offset = float(offsets[i])
                e.distance_travelled = float(dists[i])
                e.advance(dt, network)
                self._load_row(i, e)
            steady = ~crossing
            np.add(offsets, step, out=offsets, where=steady)
            np.add(dists, step, out=dists, where=steady)
        else:
            offsets += step
            dists += step

    def _advance_python(self, dt: float) -> None:
        offsets = self.offsets
        lengths = self.lengths
        speeds = self.speeds
        dists = self.dists
        entities = self.generator._entities
        network = self.network
        for i in range(self.n):
            step = speeds[i] * dt
            if step < lengths[i] - offsets[i]:
                offsets[i] += step
                dists[i] += step
            else:
                e = entities[i]
                e.position.offset = offsets[i]
                e.distance_travelled = dists[i]
                e.advance(dt, network)
                self._load_row(i, e)

    # -- emission ------------------------------------------------------------

    def _positions(self):
        """Interpolated (xs, ys) for the whole population."""
        if self.np is not None:
            np = self.np
            tt = self.offsets / self.lengths
            np.maximum(tt, 0.0, out=tt)
            np.minimum(tt, 1.0, out=tt)
            xs = self.sxs + self.dxs * tt
            ys = self.sys_ + self.dys * tt
            return xs, ys
        xs = [0.0] * self.n
        ys = [0.0] * self.n
        offsets = self.offsets
        lengths = self.lengths
        sxs, sys_, dxs, dys = self.sxs, self.sys_, self.dxs, self.dys
        for i in range(self.n):
            tt = min(max(offsets[i] / lengths[i], 0.0), 1.0)
            xs[i] = sxs[i] + dxs[i] * tt
            ys[i] = sys_[i] + dys[i] * tt
        return xs, ys

    def emit_all(self, t: float) -> TickBatch:
        """A batch reporting every entity at time ``t`` (snapshot path)."""
        if self._dirty:
            self._reload()
        xs, ys = self._positions()
        np = self.np
        if np is not None:
            speeds = self.speeds.copy()
            cn_xs = self.cn_xs.copy()
            cn_ys = self.cn_ys.copy()
        else:
            speeds = list(self.speeds)
            cn_xs = list(self.cn_xs)
            cn_ys = list(self.cn_ys)
        return TickBatch(
            t,
            self.ids,
            self.kinds,
            xs,
            ys,
            speeds,
            list(self.cns),
            cn_xs,
            cn_ys,
            self.ws,
            self.hs,
            cn_points=list(self.cn_points),
            keys=self.keys,
        )

    def emit(self, t: float, rng, fraction: float) -> TickBatch:
        """The tick's reported rows, drawing the report lottery in entity
        order from ``rng`` exactly as the scalar loop does."""
        if fraction >= 1.0:
            return self.emit_all(t)
        random = rng.random
        chosen = [i for i in range(self.n) if random() < fraction]
        return self.emit_all(t).select(chosen)

    def consume_report_draws(self, rng, fraction: float) -> None:
        """Burn the tick's per-entity report draws without emitting.

        ``fast_forward`` discards updates but must leave the RNG exactly
        where a reporting tick would have.
        """
        if fraction >= 1.0:
            return
        random = rng.random
        for _ in range(self.n):
            random()
