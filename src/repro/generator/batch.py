"""TickBatch: one tick of the update stream in structure-of-arrays form.

The generator's scalar ``tick()`` emits a ``List[Update]`` that batched
ingest immediately re-packs into columns and the process executor pickles
object-by-object.  :class:`TickBatch` makes the SoA layout the *native*
representation: the vectorized generator core writes columns directly, the
ingest kernels read them without materializing rows, and shard transport
pickles a handful of arrays instead of thousands of objects.

Compatibility is preserved by making the batch a real ``Sequence[Update]``:
``len``/iteration/indexing lazily materialize :class:`LocationUpdate` /
:class:`QueryUpdate` rows (cached per position), so every consumer written
against ``List[Update]`` keeps working — only consumers that *know* about
columns get faster.

Column layout (all rows share the tick time ``t``):

==========  =====================================================
``ids``     entity id per row (Python ints)
``kinds``   ``True`` for objects, ``False`` for queries
``xs, ys``  reported location
``speeds``  reported speed
``cns``     connection-node id (paper's cnloc)
``cn_xs, cn_ys``  connection-node location
``ws, hs``  query-window extent (0 for objects)
==========  =====================================================

Float columns are numpy ``float64`` arrays when the producer is the
vectorized core, plain lists otherwise; consumers must accept either.
Materialized rows always carry Python scalars (JSON serialization and
state digests depend on it), via cached ``tolist()`` conversions.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

from ..geometry import Point
from .records import EntityKind, LocationUpdate, QueryUpdate, Update

__all__ = ["TickBatch"]


def _tolist(column) -> list:
    """Python-scalar view of a column (numpy array or list)."""
    tolist = getattr(column, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(column)


class TickBatch(Sequence):
    """One tick's update stream as columns, readable as a ``Sequence[Update]``."""

    __slots__ = (
        "t",
        "ids",
        "kinds",
        "xs",
        "ys",
        "speeds",
        "cns",
        "cn_xs",
        "cn_ys",
        "ws",
        "hs",
        "attrs_list",
        "_cn_points",
        "_keys",
        "_rows",
        "_scalars",
    )

    def __init__(
        self,
        t: float,
        ids: Sequence[int],
        kinds: Sequence[bool],
        xs,
        ys,
        speeds,
        cns: Sequence[int],
        cn_xs,
        cn_ys,
        ws,
        hs,
        attrs_list: Optional[List[Optional[Mapping[str, Any]]]] = None,
        cn_points: Optional[List[Point]] = None,
        keys: Optional[List[int]] = None,
    ) -> None:
        self.t = t
        self.ids = ids
        self.kinds = kinds
        self.xs = xs
        self.ys = ys
        self.speeds = speeds
        self.cns = cns
        self.cn_xs = cn_xs
        self.cn_ys = cn_ys
        self.ws = ws
        self.hs = hs
        self.attrs_list = attrs_list
        self._cn_points = cn_points
        self._keys = keys
        self._rows: Optional[List[Optional[Update]]] = None
        self._scalars = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_updates(cls, t: float, updates: Sequence[Update]) -> "TickBatch":
        """Column-pack a row-form tick (trace replay, socket ingest, tests).

        Every update must carry the batch's tick time ``t``.
        """
        ids: List[int] = []
        kinds: List[bool] = []
        xs: List[float] = []
        ys: List[float] = []
        speeds: List[float] = []
        cns: List[int] = []
        cn_xs: List[float] = []
        cn_ys: List[float] = []
        ws: List[float] = []
        hs: List[float] = []
        cn_points: List[Point] = []
        attrs_list: List[Optional[Mapping[str, Any]]] = []
        any_attrs = False
        obj = EntityKind.OBJECT
        for update in updates:
            if update.t != t:
                raise ValueError(
                    f"update at t={update.t} in a tick batch for t={t}"
                )
            is_object = update.kind is obj
            ids.append(update.entity_id)
            kinds.append(is_object)
            loc = update.loc
            xs.append(loc.x)
            ys.append(loc.y)
            speeds.append(update.speed)
            cns.append(update.cn_node)
            cn_loc = update.cn_loc
            cn_xs.append(cn_loc.x)
            cn_ys.append(cn_loc.y)
            cn_points.append(cn_loc)
            if is_object:
                ws.append(0.0)
                hs.append(0.0)
            else:
                ws.append(update.range_width)
                hs.append(update.range_height)
            attrs = update.attrs
            if attrs:
                any_attrs = True
                attrs_list.append(attrs)
            else:
                attrs_list.append(None)
        return cls(
            t,
            ids,
            kinds,
            xs,
            ys,
            speeds,
            cns,
            cn_xs,
            cn_ys,
            ws,
            hs,
            attrs_list=attrs_list if any_attrs else None,
            cn_points=cn_points,
        )

    # -- sequence protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def _scalar_columns(self):
        """Python-scalar versions of the float columns, cached once."""
        scalars = self._scalars
        if scalars is None:
            scalars = (
                _tolist(self.xs),
                _tolist(self.ys),
                _tolist(self.speeds),
                _tolist(self.cn_xs),
                _tolist(self.cn_ys),
                _tolist(self.ws),
                _tolist(self.hs),
            )
            self._scalars = scalars
        return scalars

    @property
    def cn_points(self) -> List[Point]:
        """Connection-node location per row, as shared ``Point`` objects."""
        points = self._cn_points
        if points is None:
            _, _, _, cn_xs, cn_ys, _, _ = self._scalar_columns()
            points = [Point(x, y) for x, y in zip(cn_xs, cn_ys)]
            self._cn_points = points
        return points

    def _materialize(self, i: int) -> Update:
        xs, ys, speeds, _, _, ws, hs = self._scalar_columns()
        loc = Point(xs[i], ys[i])
        cn_loc = self.cn_points[i]
        attrs = self.attrs_list[i] if self.attrs_list is not None else None
        if self.kinds[i]:
            return LocationUpdate(
                oid=self.ids[i],
                loc=loc,
                t=self.t,
                speed=speeds[i],
                cn_node=self.cns[i],
                cn_loc=cn_loc,
                attrs=attrs,
            )
        return QueryUpdate(
            qid=self.ids[i],
            loc=loc,
            t=self.t,
            speed=speeds[i],
            cn_node=self.cns[i],
            cn_loc=cn_loc,
            range_width=ws[i],
            range_height=hs[i],
            attrs=attrs,
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.select(range(*index.indices(len(self))))
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        rows = self._rows
        if rows is None:
            rows = self._rows = [None] * n
        row = rows[index]
        if row is None:
            row = rows[index] = self._materialize(index)
        return row

    # -- column operations --------------------------------------------------

    @property
    def keys(self) -> List[int]:
        """``entity_id * 2 + is_object`` per row — the clustering/routing key."""
        keys = self._keys
        if keys is None:
            keys = [
                (eid << 1) | 1 if is_obj else eid << 1
                for eid, is_obj in zip(self.ids, self.kinds)
            ]
            self._keys = keys
        return keys

    def select(self, indices) -> "TickBatch":
        """A new batch holding the given rows (list columns, same ``t``)."""
        idx = list(indices)
        xs, ys, speeds, cn_xs, cn_ys, ws, hs = self._scalar_columns()
        ids, kinds, cns = self.ids, self.kinds, self.cns
        keys = self._keys
        cn_points = self._cn_points
        attrs_list = self.attrs_list
        return TickBatch(
            self.t,
            [ids[i] for i in idx],
            [kinds[i] for i in idx],
            [xs[i] for i in idx],
            [ys[i] for i in idx],
            [speeds[i] for i in idx],
            [cns[i] for i in idx],
            [cn_xs[i] for i in idx],
            [cn_ys[i] for i in idx],
            [ws[i] for i in idx],
            [hs[i] for i in idx],
            attrs_list=(
                [attrs_list[i] for i in idx] if attrs_list is not None else None
            ),
            cn_points=(
                [cn_points[i] for i in idx] if cn_points is not None else None
            ),
            keys=[keys[i] for i in idx] if keys is not None else None,
        )

    def _materialize_all(self) -> List[Update]:
        """Build every row in one fused pass over the columns.

        The per-row protocol (:meth:`__getitem__` → :meth:`_materialize`)
        pays bounds checks, a row-cache probe and seven column accessor
        calls per row; a whole-tick consumer iterating a fresh batch pays
        that for every row.  One zip loop over the scalar columns builds
        the same rows at roughly half the cost — this is the hot path of
        non-batched ingest, where every generated tick is re-materialized
        into row objects.
        """
        xs, ys, speeds, _, _, ws, hs = self._scalar_columns()
        cn_points = self.cn_points
        attrs_list = self.attrs_list
        if attrs_list is None:
            attrs_list = (None,) * len(self)
        t = self.t
        return [
            LocationUpdate(
                oid=eid,
                loc=Point(x, y),
                t=t,
                speed=speed,
                cn_node=cn,
                cn_loc=cn_loc,
                attrs=attrs,
            )
            if is_obj
            else QueryUpdate(
                qid=eid,
                loc=Point(x, y),
                t=t,
                speed=speed,
                cn_node=cn,
                cn_loc=cn_loc,
                range_width=w,
                range_height=h,
                attrs=attrs,
            )
            for eid, is_obj, x, y, speed, cn, cn_loc, w, h, attrs in zip(
                self.ids,
                self.kinds,
                xs,
                ys,
                speeds,
                self.cns,
                cn_points,
                ws,
                hs,
                attrs_list,
            )
        ]

    def materialize(self) -> List[Update]:
        """All rows as update objects (cached)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = self._materialize_all()
        elif None in rows:
            # Partially materialized through __getitem__: fill the gaps
            # while keeping already-built rows (consumers may hold
            # identity references to them).
            for i, row in enumerate(rows):
                if row is None:
                    rows[i] = self._materialize(i)
        return list(rows)

    def __iter__(self):
        """Iterate materialized rows (bulk-built, not per-row protocol).

        ``Sequence`` would synthesize iteration from per-index
        ``__getitem__`` calls; on a fresh batch that per-row protocol
        roughly doubles non-batched ingest time versus one fused pass.
        """
        return iter(self.materialize())

    # -- transport ----------------------------------------------------------

    def __reduce__(self):
        # Ship columns only: drop materialized rows and the shared Point
        # cache (receivers rebuild points from cn_xs/cn_ys — value-identical,
        # which is what state digests compare).  Numpy columns pickle as one
        # buffer each; that is the zero-copy transport win.
        return (
            _rebuild,
            (
                self.t,
                self.ids,
                self.kinds,
                self.xs,
                self.ys,
                self.speeds,
                self.cns,
                self.cn_xs,
                self.cn_ys,
                self.ws,
                self.hs,
                self.attrs_list,
            ),
        )

    def __repr__(self) -> str:
        return f"TickBatch(t={self.t:g}, rows={len(self)})"


def _rebuild(t, ids, kinds, xs, ys, speeds, cns, cn_xs, cn_ys, ws, hs, attrs_list):
    return TickBatch(
        t, ids, kinds, xs, ys, speeds, cns, cn_xs, cn_ys, ws, hs,
        attrs_list=attrs_list,
    )
