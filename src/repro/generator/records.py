"""Location-update records — the stream tuples of the system.

The paper's motion model (§2) defines the wire format of the two streams:

* moving objects report ``(o.oid, o.loc_t, o.t, o.speed, o.cnloc, o.attrs)``;
* moving queries report ``(q.qid, q.loc_t, q.t, q.speed, q.cnloc, q.attrs)``
  where ``q.attrs`` carries query-specific attributes such as the size of
  the range window.

``cnloc`` — the connection node the entity will reach next — is carried both
as a node id (for the cheap equality test in cluster admission) and as a
planar point (for expiration-time estimates).  The range window size is
materialised into dedicated fields on :class:`QueryUpdate` because the join
inner loop reads it for every candidate pair.
"""

from __future__ import annotations

import enum
from typing import Any, Mapping, Optional, Union

from ..geometry import Point, Rect
from ..network import NodeId

__all__ = ["EntityKind", "LocationUpdate", "QueryUpdate", "Update"]


class EntityKind(enum.Enum):
    """Discriminates the two moving-entity streams."""

    OBJECT = "object"
    QUERY = "query"


_EMPTY_ATTRS: Mapping[str, Any] = {}


class LocationUpdate:
    """A position report from a moving object."""

    __slots__ = ("oid", "loc", "t", "speed", "cn_node", "cn_loc", "attrs")

    kind = EntityKind.OBJECT

    def __init__(
        self,
        oid: int,
        loc: Point,
        t: float,
        speed: float,
        cn_node: NodeId,
        cn_loc: Point,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.oid = oid
        self.loc = loc
        self.t = t
        self.speed = speed
        self.cn_node = cn_node
        self.cn_loc = cn_loc
        self.attrs = attrs if attrs is not None else _EMPTY_ATTRS

    @property
    def entity_id(self) -> int:
        """Uniform id accessor shared with :class:`QueryUpdate`."""
        return self.oid

    def __repr__(self) -> str:
        return (
            f"LocationUpdate(oid={self.oid}, loc={self.loc!r}, t={self.t:g}, "
            f"speed={self.speed:g}, cn={self.cn_node})"
        )


class QueryUpdate:
    """A position report from a continuous range query.

    The query's spatial footprint is a ``range_width × range_height`` window
    centred on ``loc`` (see :meth:`region`).  A query whose focal point is
    stationary simply reports ``speed == 0`` and an arbitrary ``cn_node``.
    """

    __slots__ = (
        "qid",
        "loc",
        "t",
        "speed",
        "cn_node",
        "cn_loc",
        "range_width",
        "range_height",
        "attrs",
    )

    kind = EntityKind.QUERY

    def __init__(
        self,
        qid: int,
        loc: Point,
        t: float,
        speed: float,
        cn_node: NodeId,
        cn_loc: Point,
        range_width: float,
        range_height: float,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if range_width < 0 or range_height < 0:
            raise ValueError(
                f"range extent must be non-negative: {range_width}x{range_height}"
            )
        self.qid = qid
        self.loc = loc
        self.t = t
        self.speed = speed
        self.cn_node = cn_node
        self.cn_loc = cn_loc
        self.range_width = range_width
        self.range_height = range_height
        self.attrs = attrs if attrs is not None else _EMPTY_ATTRS

    @property
    def entity_id(self) -> int:
        return self.qid

    @property
    def half_diagonal(self) -> float:
        """Greatest distance from the query point to its window boundary.

        The join-between filter inflates cluster circles by the largest
        member ``half_diagonal`` so that pruning never drops a true match
        (see :mod:`repro.core.joins`).
        """
        return 0.5 * (self.range_width**2 + self.range_height**2) ** 0.5

    def region(self) -> Rect:
        """The query window at the reported location."""
        return Rect.centered(self.loc, self.range_width, self.range_height)

    def region_at(self, loc: Point) -> Rect:
        """The query window if the focal point were at ``loc``."""
        return Rect.centered(loc, self.range_width, self.range_height)

    def __repr__(self) -> str:
        return (
            f"QueryUpdate(qid={self.qid}, loc={self.loc!r}, t={self.t:g}, "
            f"range={self.range_width:g}x{self.range_height:g}, cn={self.cn_node})"
        )


# An update from either stream.
Update = Union[LocationUpdate, QueryUpdate]
