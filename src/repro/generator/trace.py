"""Workload traces: record update streams to disk and replay them.

Experiments gain a lot from *trace-based* execution: the exact tuple
stream that produced a result (or a bug) can be saved as a JSON-lines
file, attached to a report, diffed, and replayed through any operator —
no generator, road network, or seed bookkeeping required on the replay
side.  This mirrors how the original Brinkhoff tool was used: it emitted
trace files that systems consumed.

* :class:`TraceRecorder` wraps a live generator, forwarding ticks while
  appending every emitted update to the trace file.
* :class:`TraceReplayer` implements the generator protocol the stream
  engine uses (``tick``/``time``/``snapshot``) by reading a trace back.

The format is one JSON object per line.  Header line::

    {"format": "scuba-trace", "version": 1}

Tick lines carry the tick's time followed by its updates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

from ..geometry import Point
from .batch import TickBatch
from .records import EntityKind, LocationUpdate, QueryUpdate, Update

__all__ = ["TraceRecorder", "TraceReplayer", "update_to_dict", "update_from_dict"]

_FORMAT = "scuba-trace"
_VERSION = 1


def update_to_dict(update: Update) -> Dict:
    """JSON-compatible representation of one update tuple."""
    data = {
        "kind": update.kind.value,
        "id": update.entity_id,
        "x": update.loc.x,
        "y": update.loc.y,
        "t": update.t,
        "speed": update.speed,
        "cn": update.cn_node,
        "cnx": update.cn_loc.x,
        "cny": update.cn_loc.y,
    }
    if update.kind is EntityKind.QUERY:
        data["w"] = update.range_width
        data["h"] = update.range_height
    if update.attrs:
        data["attrs"] = dict(update.attrs)
    return data


def _batch_to_dicts(batch: TickBatch) -> List[Dict]:
    """:func:`update_to_dict` for every row of a tick batch, from columns.

    Produces byte-identical JSON to the row path (same key order, Python
    scalars via the batch's cached scalar columns) without materialising
    update objects.
    """
    xs, ys, speeds, cn_xs, cn_ys, ws, hs = batch._scalar_columns()
    t = batch.t
    cns = batch.cns
    attrs_list = batch.attrs_list
    obj_kind = EntityKind.OBJECT.value
    qry_kind = EntityKind.QUERY.value
    out: List[Dict] = []
    for i, (eid, is_obj) in enumerate(zip(batch.ids, batch.kinds)):
        data = {
            "kind": obj_kind if is_obj else qry_kind,
            "id": eid,
            "x": xs[i],
            "y": ys[i],
            "t": t,
            "speed": speeds[i],
            "cn": cns[i],
            "cnx": cn_xs[i],
            "cny": cn_ys[i],
        }
        if not is_obj:
            data["w"] = ws[i]
            data["h"] = hs[i]
        if attrs_list is not None and attrs_list[i]:
            data["attrs"] = dict(attrs_list[i])
        out.append(data)
    return out


def update_from_dict(data: Dict) -> Update:
    """Inverse of :func:`update_to_dict`."""
    kind = EntityKind(data["kind"])
    common = dict(
        loc=Point(data["x"], data["y"]),
        t=data["t"],
        speed=data["speed"],
        cn_node=data["cn"],
        cn_loc=Point(data["cnx"], data["cny"]),
        attrs=data.get("attrs"),
    )
    if kind is EntityKind.OBJECT:
        return LocationUpdate(oid=data["id"], **common)
    return QueryUpdate(
        qid=data["id"], range_width=data["w"], range_height=data["h"], **common
    )


class TraceRecorder:
    """A generator wrapper that records everything it emits.

    Drop-in for the wrapped generator: the stream engine calls ``tick``
    and reads ``time`` exactly as before; each tick is appended to the
    trace file as one JSON line.  Use as a context manager or call
    :meth:`close`.
    """

    def __init__(self, generator, path: Union[str, Path]) -> None:
        self.generator = generator
        self.path = Path(path)
        self._file: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self._file.write(json.dumps({"format": _FORMAT, "version": _VERSION}) + "\n")

    @property
    def time(self) -> float:
        return self.generator.time

    def tick(self, dt: float = 1.0) -> List[Update]:
        if self._file is None:
            raise ValueError("trace recorder is closed")
        updates = self.generator.tick(dt)
        if isinstance(updates, TickBatch):
            dicts = _batch_to_dicts(updates)
        else:
            dicts = [update_to_dict(u) for u in updates]
        line = {"t": self.generator.time, "updates": dicts}
        self._file.write(json.dumps(line) + "\n")
        return updates

    def snapshot(self) -> List[Update]:
        return self.generator.snapshot()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceReplayer:
    """Replays a recorded trace through the generator protocol.

    ``tick`` returns each recorded tick's updates in order (the recorded
    times are authoritative; the ``dt`` argument is ignored beyond
    protocol compatibility).  ``snapshot`` reconstructs the latest known
    update per entity — the same approximation any operator fed by the
    trace holds.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ValueError(f"empty trace file: {self.path}")
        header = json.loads(lines[0])
        if header.get("format") != _FORMAT or header.get("version") != _VERSION:
            raise ValueError(f"not a scuba trace: {self.path}")
        self._ticks: List[Dict] = [json.loads(line) for line in lines[1:]]
        self._cursor = 0
        self.time = 0.0
        self._latest: Dict = {}

    @property
    def ticks_remaining(self) -> int:
        return len(self._ticks) - self._cursor

    @property
    def ticks_elapsed(self) -> int:
        """Ticks already replayed — the replayer's resumable cursor."""
        return self._cursor

    def seek(self, ticks: int) -> None:
        """Fast-forward to just after the ``ticks``-th recorded tick.

        Replays the skipped ticks' updates into the latest-known table (so
        :meth:`snapshot` stays correct) without returning them — the resume
        path of a checkpointed trace-driven run.
        """
        if not 0 <= ticks <= len(self._ticks):
            raise ValueError(
                f"cannot seek to tick {ticks} of a {len(self._ticks)}-tick trace"
            )
        if ticks < self._cursor:
            self._cursor = 0
            self.time = 0.0
            self._latest.clear()
        while self._cursor < ticks:
            self.tick()

    def tick(self, dt: float = 1.0) -> List[Update]:
        if self._cursor >= len(self._ticks):
            raise StopIteration(f"trace exhausted after {len(self._ticks)} ticks")
        record = self._ticks[self._cursor]
        self._cursor += 1
        self.time = record["t"]
        updates = [update_from_dict(d) for d in record["updates"]]
        for update in updates:
            self._latest[(update.kind, update.entity_id)] = update
        try:
            # Column-pack the tick so replay feeds the same batched ingest
            # and transport paths as a live generator.
            return TickBatch.from_updates(self.time, updates)
        except ValueError:
            # Hand-authored traces may mix timestamps within one tick
            # record; those stay row-form (the engines accept both).
            return updates

    def snapshot(self) -> List[Update]:
        return list(self._latest.values())
