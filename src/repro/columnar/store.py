"""Array-backed cluster member storage.

A :class:`MemberColumnStore` keeps one kind's members (objects *or*
queries) of one cluster in parallel ``array.array`` columns — the resting
representation is Struct-of-Arrays, so per-tick maintenance and the SoA
join/ingest views read the columns directly instead of rebuilding them
from per-member Python objects.

Layout and invariants:

* one slot per member across all columns; ``index`` maps entity id →
  slot **in insertion order** (the dict's key order is the member order
  the object-based path iterates in);
* removed slots go on a ``free`` list and are reused by later inserts;
* ``ordered`` is True while the live slots are exactly ``0..n-1`` *and*
  ascending slot number equals insertion order — the precondition for
  zero-copy ``[:n]`` slicing and for order-sensitive vector reductions
  (the recentre running sum).  Slot reuse and mid-store removals clear
  it; :meth:`compact` restores it by rebuilding the columns in insertion
  order (pure reorder: no value changes, no version bumps);
* columns never resize in place while a numpy view is exported over
  them: growth that hits the buffer-protocol ``BufferError`` falls back
  to copy-on-grow (a fresh column object), leaving the frozen buffer
  alive under any cached view.  Cached views are version-gated by their
  consumers, and every member-value mutation bumps the cluster version
  first, so a frozen buffer is only ever read while its values are
  still current.

Members are exposed through :class:`ColumnMember` proxies carrying the
exact ``ClusterMember`` attribute API.  A proxy resolves its slot through
``index`` on every access, so compaction cannot invalidate it, and every
getter returns plain Python ``float``/``int``/``bool`` (state digests and
JSON emission rely on native types).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from ..clustering.cluster import ClusterMember
from ..generator import EntityKind

__all__ = ["ColumnMember", "MemberColumnStore", "MemberTableView"]

#: Float64 columns, in canonical order (mirrors ClusterMember fields;
#: ``range_w``/``range_h`` back ``range_width``/``range_height``).
FLOAT_COLUMNS = (
    "abs_x",
    "abs_y",
    "tr_x",
    "tr_y",
    "speed",
    "range_w",
    "range_h",
    "half_diag",
    "last_t",
    "cn_x",
    "cn_y",
)


class MemberColumnStore:
    """Parallel columns for one cluster's members of one kind."""

    __slots__ = FLOAT_COLUMNS + (
        "cn_node",
        "shed",
        "kind",
        "index",
        "free",
        "ordered",
        "shed_count",
        "compactions",
        "_proxies",
    )

    def __init__(self, kind: EntityKind) -> None:
        self.kind = kind
        for name in FLOAT_COLUMNS:
            setattr(self, name, array("d"))
        self.cn_node = array("q")
        self.shed = array("b")
        #: entity id -> slot, in member insertion order.
        self.index: Dict[int, int] = {}
        #: Reusable slots of removed members.
        self.free: List[int] = []
        #: True while live slots are 0..n-1 in insertion order.
        self.ordered = True
        #: Members whose position is load-shed (mirrors the shed column).
        self.shed_count = 0
        #: Times compact() actually rebuilt the columns (diagnostics).
        self.compactions = 0
        # entity id -> ColumnMember, lazily built; never pickled.
        self._proxies: Dict[int, "ColumnMember"] = {}

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    @property
    def capacity(self) -> int:
        return len(self.abs_x)

    def proxy(self, entity_id: int) -> "ColumnMember":
        """The member proxy for ``entity_id`` (must be present)."""
        member = self._proxies.get(entity_id)
        if member is None:
            member = ColumnMember(self, entity_id, self.kind)
            self._proxies[entity_id] = member
        return member

    def gather(self, name: str) -> List[float]:
        """Column ``name`` for the live members, in member order.

        Ordered stores convert the column prefix in one C-level
        ``tolist``; fragmented stores gather slot by slot through
        ``index``.  Either way the result matches what walking the
        member proxies would read, without the per-access dict probe
        and slot indirection of the proxy protocol.
        """
        col = getattr(self, name)
        if self.ordered:
            return col[: len(self.index)].tolist()
        return [col[slot] for slot in self.index.values()]

    # -- slot management ----------------------------------------------------

    def _append_value(self, name: str, typecode: str, value) -> None:
        col = getattr(self, name)
        try:
            col.append(value)
        except BufferError:
            # An exported numpy view pins the buffer (cached join/ingest
            # views).  Copy-on-grow: the old buffer stays alive — and
            # valid, by version gating — under the view.
            fresh = array(typecode, col.tobytes())
            fresh.append(value)
            setattr(self, name, fresh)

    def insert(
        self,
        entity_id: int,
        *,
        abs_x: float,
        abs_y: float,
        tr_x: float,
        tr_y: float,
        speed: float,
        range_w: float,
        range_h: float,
        half_diag: float,
        last_t: float,
        cn_node: int,
        cn_x: float,
        cn_y: float,
        shed: bool = False,
    ) -> int:
        """Add a member row; returns its slot.  Id must not be present."""
        if entity_id in self.index:
            raise ValueError(f"duplicate member id {entity_id}")
        if self.free:
            slot = self.free.pop()
            if self.ordered and slot != len(self.index):
                self.ordered = False
            self.abs_x[slot] = abs_x
            self.abs_y[slot] = abs_y
            self.tr_x[slot] = tr_x
            self.tr_y[slot] = tr_y
            self.speed[slot] = speed
            self.range_w[slot] = range_w
            self.range_h[slot] = range_h
            self.half_diag[slot] = half_diag
            self.last_t[slot] = last_t
            self.cn_x[slot] = cn_x
            self.cn_y[slot] = cn_y
            self.cn_node[slot] = cn_node
            self.shed[slot] = 1 if shed else 0
        else:
            slot = self.capacity
            self._append_value("abs_x", "d", abs_x)
            self._append_value("abs_y", "d", abs_y)
            self._append_value("tr_x", "d", tr_x)
            self._append_value("tr_y", "d", tr_y)
            self._append_value("speed", "d", speed)
            self._append_value("range_w", "d", range_w)
            self._append_value("range_h", "d", range_h)
            self._append_value("half_diag", "d", half_diag)
            self._append_value("last_t", "d", last_t)
            self._append_value("cn_x", "d", cn_x)
            self._append_value("cn_y", "d", cn_y)
            self._append_value("cn_node", "q", cn_node)
            self._append_value("shed", "b", 1 if shed else 0)
        self.index[entity_id] = slot
        if shed:
            self.shed_count += 1
        return slot

    def discard(self, entity_id: int) -> None:
        """Free a member's slot (raises KeyError when absent)."""
        slot = self.index.pop(entity_id)
        self._proxies.pop(entity_id, None)
        if self.shed[slot]:
            self.shed_count -= 1
        if self.ordered and slot != len(self.index):
            self.ordered = False
        self.free.append(slot)

    def detach(self, entity_id: int) -> ClusterMember:
        """Remove a member, returning a plain ``ClusterMember`` snapshot.

        The object-based ``MovingCluster.remove`` reads the popped
        member's fields *after* removal; detaching preserves that
        contract for columnar storage.
        """
        member = self.snapshot(entity_id)
        self.discard(entity_id)
        return member

    def snapshot(self, entity_id: int) -> ClusterMember:
        """A detached ``ClusterMember`` copy of the stored row."""
        slot = self.index[entity_id]
        member = ClusterMember(
            entity_id=entity_id,
            kind=self.kind,
            abs_x=self.abs_x[slot],
            abs_y=self.abs_y[slot],
            tr_x=self.tr_x[slot],
            tr_y=self.tr_y[slot],
            speed=self.speed[slot],
            last_t=self.last_t[slot],
            range_width=self.range_w[slot],
            range_height=self.range_h[slot],
            cn_node=self.cn_node[slot],
            cn_x=self.cn_x[slot],
            cn_y=self.cn_y[slot],
        )
        # The constructor recomputes half_diag from the ranges; copy the
        # stored value verbatim so the snapshot is bit-faithful even so.
        member.half_diag = self.half_diag[slot]
        member.position_shed = bool(self.shed[slot])
        return member

    def clear(self) -> None:
        """Drop all members and reset the columns."""
        for name in FLOAT_COLUMNS:
            setattr(self, name, array("d"))
        self.cn_node = array("q")
        self.shed = array("b")
        self.index.clear()
        self.free.clear()
        self.ordered = True
        self.shed_count = 0
        self._proxies.clear()

    # -- compaction ---------------------------------------------------------

    def wasteful(self) -> bool:
        """True when free slots justify reclaiming the columns."""
        return len(self.free) > 16 and len(self.free) > len(self.index)

    def compact(self, np=None) -> bool:
        """Rebuild columns in insertion order; restores ``ordered``.

        A pure reorder: member values, insertion order, and proxies are
        untouched, so no version bump is needed and cached digests stay
        valid.  Fresh column objects are allocated (never an in-place
        resize), which sidesteps exported-buffer pinning entirely.
        Returns True when a rebuild actually happened.
        """
        if self.ordered and not self.free:
            return False
        slots = list(self.index.values())
        if np is not None and slots:
            gather = np.fromiter(slots, dtype=np.intp, count=len(slots))
            for name in FLOAT_COLUMNS:
                col = np.frombuffer(getattr(self, name), dtype=np.float64)
                setattr(self, name, array("d", col[gather].tobytes()))
            cn = np.frombuffer(self.cn_node, dtype=np.int64)
            self.cn_node = array("q", cn[gather].tobytes())
            sh = np.frombuffer(self.shed, dtype=np.int8)
            self.shed = array("b", sh[gather].tobytes())
        else:
            for name in FLOAT_COLUMNS:
                col = getattr(self, name)
                setattr(self, name, array("d", (col[s] for s in slots)))
            self.cn_node = array("q", (self.cn_node[s] for s in slots))
            self.shed = array("b", (self.shed[s] for s in slots))
        self.index = {eid: i for i, eid in enumerate(self.index)}
        self.free.clear()
        self.ordered = True
        self.compactions += 1
        return True

    # -- pickling -----------------------------------------------------------

    def __getstate__(self):
        state = {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_proxies"
        }
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._proxies = {}


class ColumnMember:
    """``ClusterMember``-compatible proxy over one store row.

    Resolves its slot through the store index on every access (immune to
    compaction) and returns native Python scalars only.
    """

    __slots__ = ("_store", "entity_id", "kind")

    def __init__(
        self, store: MemberColumnStore, entity_id: int, kind: EntityKind
    ) -> None:
        self._store = store
        self.entity_id = entity_id
        self.kind = kind

    def __repr__(self) -> str:
        shed = ", shed" if self.position_shed else ""
        return (
            f"ClusterMember({self.kind.value} {self.entity_id}, "
            f"abs=({self.abs_x:g}, {self.abs_y:g}){shed})"
        )

    @property
    def position_shed(self) -> bool:
        s = self._store
        return bool(s.shed[s.index[self.entity_id]])

    @position_shed.setter
    def position_shed(self, value: bool) -> None:
        s = self._store
        slot = s.index[self.entity_id]
        flag = 1 if value else 0
        if flag != s.shed[slot]:
            s.shed[slot] = flag
            s.shed_count += 1 if flag else -1

    @property
    def range_width(self) -> float:
        s = self._store
        return s.range_w[s.index[self.entity_id]]

    @range_width.setter
    def range_width(self, value: float) -> None:
        s = self._store
        s.range_w[s.index[self.entity_id]] = value

    @property
    def range_height(self) -> float:
        s = self._store
        return s.range_h[s.index[self.entity_id]]

    @range_height.setter
    def range_height(self, value: float) -> None:
        s = self._store
        s.range_h[s.index[self.entity_id]] = value


def _column_property(name: str):
    def getter(self):
        s = self._store
        return getattr(s, name)[s.index[self.entity_id]]

    def setter(self, value):
        s = self._store
        getattr(s, name)[s.index[self.entity_id]] = value

    return property(getter, setter)


for _name in (
    "abs_x",
    "abs_y",
    "tr_x",
    "tr_y",
    "speed",
    "half_diag",
    "last_t",
    "cn_node",
    "cn_x",
    "cn_y",
):
    setattr(ColumnMember, _name, _column_property(_name))
del _name


class MemberTableView:
    """Dict-compatible read/mutate view over a :class:`MemberColumnStore`.

    Presents the ``objects``/``queries`` mapping API the rest of the
    system iterates (insertion-ordered keys, ``items``/``values`` of
    member proxies, ``pop`` with dict semantics).
    """

    __slots__ = ("store",)

    def __init__(self, store: MemberColumnStore) -> None:
        self.store = store

    def __len__(self) -> int:
        return len(self.store.index)

    def __bool__(self) -> bool:
        return bool(self.store.index)

    def __iter__(self) -> Iterator[int]:
        return iter(self.store.index)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self.store.index

    def keys(self):
        return self.store.index.keys()

    def get(self, entity_id: int, default=None) -> Optional[ColumnMember]:
        if entity_id in self.store.index:
            return self.store.proxy(entity_id)
        return default

    def __getitem__(self, entity_id: int) -> ColumnMember:
        if entity_id not in self.store.index:
            raise KeyError(entity_id)
        return self.store.proxy(entity_id)

    def values(self) -> Iterator[ColumnMember]:
        store = self.store
        for entity_id in store.index:
            yield store.proxy(entity_id)

    def items(self) -> Iterator[Tuple[int, ColumnMember]]:
        store = self.store
        for entity_id in store.index:
            yield entity_id, store.proxy(entity_id)

    _MISSING = object()

    def pop(self, entity_id: int, default=_MISSING):
        if entity_id not in self.store.index:
            if default is MemberTableView._MISSING:
                raise KeyError(entity_id)
            return default
        return self.store.detach(entity_id)

    def clear(self) -> None:
        self.store.clear()
