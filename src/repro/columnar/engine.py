"""Cross-cluster vectorized post-join maintenance.

The object-based ``Scuba._post_join_maintenance`` runs one Python loop
over all clusters doing expiry checks, advancement, member compaction
(flush / recentre / radius) and grid refreshes per cluster.  The
:class:`MaintenanceEngine` restructures the same work into per-tick
passes across *all* clusters:

1. **Expiry classification** — one vectorized pass computing
   ``has_expired OR will_pass_destination`` for every cluster from
   gathered scalar columns.  ``has_expired`` (``exptime <= now``) is an
   exact comparison; ``will_pass`` compares ``step >= math.hypot(...)``
   in the scalar path, so the vector pass compares ``step²`` against
   ``dist²`` with a ±1e-9 relative band and rechecks the (rare)
   borderline clusters with the exact scalar predicate — verdicts are
   identical, never approximated.
2. **Per-cluster maintenance** in storage order — expired clusters
   split/dissolve exactly as before (same successor-cid allocation
   order); survivors advance and run the columnar member sweeps
   (compact-first, then vectorized flush/recentre/radius).
3. **Grid-refresh eligibility pass** — survivors' refreshes are batched
   through :meth:`ClusterGrid.refresh_all`: one pass compares each
   cluster's ``(version, cx, cy, radius)`` against the grid's verified
   snapshot and only escapees pay the real refresh.

Deferring the grid refreshes behind the maintenance loop can only
permute grid-internal cell list order (the join sweep sorts cell
members by cid, and answers are multisets), and expiry inputs of
cluster *i* are never written while processing cluster *j ≠ i* — so
cluster state and answer multisets are identical to the object path.

The engine is part of the operator's pickled state: it carries only its
backend *name* and counters, re-resolving numpy lazily per run.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, List

from ..clustering import split_cluster
from .backend import columnar_numpy, resolved_backend_name

__all__ = ["MaintenanceEngine"]

#: Cluster count below which expiry classification stays scalar.
EXPIRY_VECTOR_MIN = 8


class MaintenanceEngine:
    """Vectorized whole-world post-join maintenance for columnar worlds."""

    __slots__ = ("backend_name", "compactions", "compaction_seconds")

    def __init__(self, backend_name: str = "auto") -> None:
        self.backend_name = backend_name
        #: Member-store compactions triggered before vectorized sweeps.
        self.compactions = 0
        #: Wall-clock seconds spent inside ``ensure_compact`` calls.
        self.compaction_seconds = 0.0

    @property
    def resolved_name(self) -> str:
        return resolved_backend_name(self.backend_name)

    def run(self, operator: Any, now: float) -> None:
        """Post-join maintenance over ``operator``'s whole cluster world."""
        cfg = operator.config
        world = operator.world
        np = columnar_numpy(self.backend_name)
        clusters = list(world.storage)
        if cfg.expire_clusters and clusters:
            expired = self._classify_expired(clusters, now, cfg.delta, np)
        else:
            expired = None
        recompute = cfg.recompute_radius
        survivors: List[Any] = []
        for i, cluster in enumerate(clusters):
            if expired is not None and expired[i]:
                if cfg.split_at_destination:
                    split_cluster(world, cluster, now)
                else:
                    world.dissolve(cluster)
                continue
            cluster.advance_to(now)
            if recompute:
                t0 = perf_counter()
                self.compactions += cluster.ensure_compact(np)
                self.compaction_seconds += perf_counter() - t0
                cluster.maintenance_sweep(np)
            cluster.update_expiry(now)
            survivors.append(cluster)
        world.grid.refresh_all(survivors)
        operator._prune_caches()

    def _classify_expired(self, clusters, now: float, delta: float, np):
        """Per-cluster ``has_expired or will_pass_destination`` verdicts.

        Bit-identical to the scalar predicates: only clusters whose
        squared step/distance comparison is decided far outside floating
        error (or whose distance is exactly zero) are classified
        vectorized; everything near the boundary — or down in the
        denormal range, where relative-error bounds break — re-runs the
        exact scalar test.
        """
        n = len(clusters)
        if np is None or n < EXPIRY_VECTOR_MIN:
            return [
                c.has_expired(now) or c.will_pass_destination(delta)
                for c in clusters
            ]
        ex = np.fromiter((c.exptime for c in clusters), dtype=np.float64, count=n)
        speed = np.fromiter(
            (c.avespeed for c in clusters), dtype=np.float64, count=n
        )
        cx = np.fromiter((c.cx for c in clusters), dtype=np.float64, count=n)
        cy = np.fromiter((c.cy for c in clusters), dtype=np.float64, count=n)
        cnx = np.fromiter(
            (c.cn_loc.x for c in clusters), dtype=np.float64, count=n
        )
        cny = np.fromiter(
            (c.cn_loc.y for c in clusters), dtype=np.float64, count=n
        )
        expired = ex <= now
        dx = cnx - cx
        dy = cny - cy
        d2 = dx * dx + dy * dy
        step = speed * delta
        s2 = step * step
        # d2 this small with a nonzero offset means denormal arithmetic:
        # route to the exact test rather than trust the relative band.
        unsafe = (d2 < 1e-300) & ((dx != 0.0) | (dy != 0.0))
        definite_hi = (s2 >= d2 * (1.0 + 1e-9)) & ~unsafe
        definite_lo = (s2 <= d2 * (1.0 - 1e-9)) & ~unsafe
        verdict = expired | definite_hi
        border = ~(definite_hi | definite_lo | expired)
        out = verdict.tolist()
        if border.any():
            for i in np.nonzero(border)[0].tolist():
                out[i] = clusters[i].will_pass_destination(delta)
        return out
