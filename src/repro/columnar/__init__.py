"""Columnar-first storage: array-backed cluster/table state (ROADMAP item 2).

Makes structure-of-arrays the *resting* representation instead of a view
built per use: cluster members live in parallel ``array('d')`` columns
(:mod:`repro.columnar.store`), attribute tables keep last-seen
timestamps in columns (:mod:`repro.columnar.tables`), and the per-tick
post-join maintenance runs as whole-world vectorized sweeps
(:mod:`repro.columnar.engine`).  Enabled via ``ScubaConfig(columnar=True)``
/ CLI ``--columnar``; numpy is the primary backend with an exact
stdlib-``array`` scalar fallback.

Everything here is gated on bit-identical cluster state and answer
multisets versus the object-based path — see DESIGN.md §12 for the
layout and the exactness argument.
"""

from .backend import (
    COLUMNAR_BACKEND_CHOICES,
    columnar_numpy,
    columnar_numpy_available,
    resolved_backend_name,
)
from .cluster import (
    VECTOR_MIN_MEMBERS,
    ColumnarClusterFactory,
    ColumnarMovingCluster,
)
from .engine import MaintenanceEngine
from .store import ColumnMember, MemberColumnStore, MemberTableView
from .tables import (
    ColumnarEntityAttributeTable,
    ColumnarObjectsTable,
    ColumnarQueriesTable,
)

__all__ = [
    "COLUMNAR_BACKEND_CHOICES",
    "columnar_numpy",
    "columnar_numpy_available",
    "resolved_backend_name",
    "VECTOR_MIN_MEMBERS",
    "ColumnarClusterFactory",
    "ColumnarMovingCluster",
    "MaintenanceEngine",
    "ColumnMember",
    "MemberColumnStore",
    "MemberTableView",
    "ColumnarEntityAttributeTable",
    "ColumnarObjectsTable",
    "ColumnarQueriesTable",
]
