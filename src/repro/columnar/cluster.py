"""Column-backed :class:`MovingCluster` (the resting SoA representation).

``ColumnarMovingCluster`` keeps its members in two
:class:`~repro.columnar.store.MemberColumnStore` instances and exposes
them through dict-compatible :class:`MemberTableView` mappings, so every
existing consumer — the incremental clusterer, shedding policies, join
views, splitting, checkpoint digests — sees the unchanged
``objects``/``queries``/``members()`` API.

The exactness contract of the object-based cluster carries over
verbatim (see ``clustering/cluster.py``): all overridden methods are
bit-identical replicas of the originals, with the member sweeps
(``flush_transform``/``recentre``/``recompute_radius``) running as numpy
array expressions over the column buffers when the store is ordered and
large enough.  Vectorization preserves bitwise results by construction:

* elementwise ``+ - * /`` on float64 arrays round identically to the
  scalar ops, so position reconstruction ``abs + (trans - tr)`` is
  bit-identical;
* the recentre running sum uses ``cumsum`` (sequential by definition),
  never ``sum`` (pairwise — different rounding);
* ``math.hypot`` has no bit-equal numpy counterpart, so radius
  recomputation vectorizes only the order-independent squared-distance
  maximum, then rechecks the tiny candidate band (relative slack 1e-12,
  orders of magnitude beyond the 1-ulp hypot error) with exact scalar
  ``math.hypot``;
* shed members are excluded with ``where=`` masks rather than adding a
  masked zero, avoiding the ``-0.0 + 0.0 → +0.0`` sign flip.
"""

from __future__ import annotations

import math

from ..generator import EntityKind
from ..geometry import Point
from ..network import NodeId
from ..clustering.cluster import MovingCluster
from .backend import columnar_numpy
from .store import MemberColumnStore, MemberTableView

__all__ = ["ColumnarMovingCluster", "ColumnarClusterFactory"]

#: Member count below which the maintenance sweeps and view builders use
#: the exact scalar column loops — per-cluster numpy dispatch overhead
#: beats the arithmetic saved on tiny clusters.
VECTOR_MIN_MEMBERS = 16


class ColumnarMovingCluster(MovingCluster):
    """A moving cluster whose member state rests in parallel columns."""

    __slots__ = ("obj_store", "qry_store", "backend_name")

    def __init__(
        self,
        cid: int,
        centroid: Point,
        cn_node: NodeId,
        cn_loc: Point,
        now: float,
        backend_name: str = "auto",
    ) -> None:
        super().__init__(
            cid=cid, centroid=centroid, cn_node=cn_node, cn_loc=cn_loc, now=now
        )
        self.backend_name = backend_name
        self.obj_store = MemberColumnStore(EntityKind.OBJECT)
        self.qry_store = MemberColumnStore(EntityKind.QUERY)
        self.objects = MemberTableView(self.obj_store)
        self.queries = MemberTableView(self.qry_store)

    def _np(self):
        return columnar_numpy(self.backend_name)

    # -- membership maintenance (bit-identical absorb over columns) ---------

    def absorb(self, update) -> None:
        kind = update.kind
        is_object = kind is EntityKind.OBJECT
        store = self.obj_store if is_object else self.qry_store
        loc = update.loc
        x, y = loc.x, loc.y
        slot = store.index.get(update.entity_id)
        if slot is not None:
            shed = store.shed[slot]
            if (
                not shed
                and update.speed == store.speed[slot]
                and update.cn_node == store.cn_node[slot]
                and x == store.abs_x[slot] + (self.trans_x - store.tr_x[slot])
                and y == store.abs_y[slot] + (self.trans_y - store.tr_y[slot])
            ):
                # Heartbeat: identical report, no version bumps (see the
                # object-based absorb for the full rationale).
                store.last_t[slot] = update.t
                return
            self.version += 1
            self.struct_version += 1
            if shed:
                store.shed[slot] = 0
                store.shed_count -= 1
                self.shed_count -= 1
            self._speed_sum += update.speed - store.speed[slot]
            n = len(self.obj_store.index) + len(self.qry_store.index)
            self.avespeed = self._speed_sum / n
            store.speed[slot] = update.speed
            store.abs_x[slot] = x
            store.abs_y[slot] = y
            store.tr_x[slot] = self.trans_x
            store.tr_y[slot] = self.trans_y
            store.last_t[slot] = update.t
            if store.cn_node[slot] != update.cn_node:
                store.cn_node[slot] = update.cn_node
                store.cn_x[slot] = update.cn_loc.x
                store.cn_y[slot] = update.cn_loc.y
            if n == 1:
                self.cx = x
                self.cy = y
                self.radius = 0.0
                self._update_expiry(update.t)
                return
            dx = x - self.cx
            dy = y - self.cy
            dist_sq = dx * dx + dy * dy
            if dist_sq > self.radius * self.radius:
                self.radius = math.sqrt(dist_sq)
            return
        self.version += 1
        self.struct_version += 1
        count = len(self.obj_store.index) + len(self.qry_store.index) + 1
        shift_x = (x - self.cx) / count
        shift_y = (y - self.cy) / count
        self.cx += shift_x
        self.cy += shift_y
        range_w = 0.0 if is_object else update.range_width
        range_h = 0.0 if is_object else update.range_height
        half_diag = 0.5 * math.hypot(range_w, range_h)
        store.insert(
            update.entity_id,
            abs_x=x,
            abs_y=y,
            tr_x=self.trans_x,
            tr_y=self.trans_y,
            speed=update.speed,
            range_w=range_w,
            range_h=range_h,
            half_diag=half_diag,
            last_t=update.t,
            cn_node=update.cn_node,
            cn_x=update.cn_loc.x,
            cn_y=update.cn_loc.y,
        )
        self._speed_sum += update.speed
        self.avespeed = self._speed_sum / count
        if not is_object and half_diag > self.max_query_half_diag:
            self.max_query_half_diag = half_diag
        covering = self.radius
        if count > 1:
            covering += math.hypot(shift_x, shift_y)
        dist = math.hypot(x - self.cx, y - self.cy)
        self.radius = covering if covering > dist else dist
        self._update_expiry(update.t)

    # ``remove`` is inherited: MemberTableView.pop returns a detached
    # ClusterMember snapshot, so the post-pop field reads keep working.

    def adopt(self, member) -> None:
        """Bulk split hand-off: copy ``member``'s row in, translation reset."""
        is_object = member.kind is EntityKind.OBJECT
        store = self.obj_store if is_object else self.qry_store
        shed = member.position_shed
        store.insert(
            member.entity_id,
            abs_x=member.abs_x,
            abs_y=member.abs_y,
            tr_x=0.0,
            tr_y=0.0,
            speed=member.speed,
            range_w=member.range_width,
            range_h=member.range_height,
            half_diag=member.half_diag,
            last_t=member.last_t,
            cn_node=member.cn_node,
            cn_x=member.cn_x,
            cn_y=member.cn_y,
            shed=shed,
        )
        if shed:
            self.shed_count += 1
        self._speed_sum += member.speed
        if not is_object and member.half_diag > self.max_query_half_diag:
            self.max_query_half_diag = member.half_diag

    def discard(self, entity_id: int, kind: EntityKind) -> None:
        """Drop a member row without re-balancing (split detach)."""
        store = self.obj_store if kind is EntityKind.OBJECT else self.qry_store
        if entity_id in store.index:
            store.discard(entity_id)

    # -- member sweeps ------------------------------------------------------

    def flush_transform(self) -> None:
        tx, ty = self.trans_x, self.trans_y
        np = self._np()
        for store in (self.obj_store, self.qry_store):
            n = len(store.index)
            if not n:
                continue
            if np is not None and store.ordered and n >= VECTOR_MIN_MEMBERS:
                self._flush_vector(store, tx, ty, n, np)
            else:
                self._flush_scalar(store, tx, ty)
        if tx != 0.0 or ty != 0.0:
            self.trans_x = 0.0
            self.trans_y = 0.0

    @staticmethod
    def _flush_scalar(store: MemberColumnStore, tx: float, ty: float) -> None:
        tr_x, tr_y = store.tr_x, store.tr_y
        if tx == 0.0 and ty == 0.0:
            for slot in store.index.values():
                tr_x[slot] = 0.0
                tr_y[slot] = 0.0
            return
        abs_x, abs_y, shed = store.abs_x, store.abs_y, store.shed
        for slot in store.index.values():
            if not shed[slot]:
                abs_x[slot] += tx - tr_x[slot]
                abs_y[slot] += ty - tr_y[slot]
            tr_x[slot] = 0.0
            tr_y[slot] = 0.0

    @staticmethod
    def _flush_vector(
        store: MemberColumnStore, tx: float, ty: float, n: int, np
    ) -> None:
        trx = np.frombuffer(store.tr_x, dtype=np.float64)[:n]
        trY = np.frombuffer(store.tr_y, dtype=np.float64)[:n]
        if tx != 0.0 or ty != 0.0:
            absx = np.frombuffer(store.abs_x, dtype=np.float64)[:n]
            absy = np.frombuffer(store.abs_y, dtype=np.float64)[:n]
            dx = np.subtract(tx, trx)
            dy = np.subtract(ty, trY)
            if store.shed_count:
                keep = np.frombuffer(store.shed, dtype=np.int8)[:n] == 0
                # where= leaves shed slots untouched in place — exactly the
                # scalar skip, with no -0.0 + 0.0 sign hazard.
                np.add(absx, dx, out=absx, where=keep)
                np.add(absy, dy, out=absy, where=keep)
            else:
                np.add(absx, dx, out=absx)
                np.add(absy, dy, out=absy)
        trx[:] = 0.0
        trY[:] = 0.0

    def recentre(self) -> None:
        np = self._np()
        stores = (self.obj_store, self.qry_store)
        total = len(stores[0].index) + len(stores[1].index)
        if (
            np is not None
            and total >= VECTOR_MIN_MEMBERS
            and stores[0].ordered
            and stores[1].ordered
        ):
            sum_x, sum_y, known = self._recentre_vector(np, stores)
        else:
            sum_x = 0.0
            sum_y = 0.0
            known = 0
            tx, ty = self.trans_x, self.trans_y
            for store in stores:
                abs_x, abs_y = store.abs_x, store.abs_y
                tr_x, tr_y, shed = store.tr_x, store.tr_y, store.shed
                for slot in store.index.values():
                    if shed[slot]:
                        continue
                    sum_x += abs_x[slot] + (tx - tr_x[slot])
                    sum_y += abs_y[slot] + (ty - tr_y[slot])
                    known += 1
        if known:
            cx = sum_x / known
            cy = sum_y / known
            if cx != self.cx or cy != self.cy:
                self.version += 1
                self.cx = cx
                self.cy = cy

    def _recentre_vector(self, np, stores):
        tx, ty = self.trans_x, self.trans_y
        parts_x = []
        parts_y = []
        for store in stores:
            n = len(store.index)
            if not n:
                continue
            vx = np.subtract(tx, np.frombuffer(store.tr_x, dtype=np.float64)[:n])
            np.add(np.frombuffer(store.abs_x, dtype=np.float64)[:n], vx, out=vx)
            vy = np.subtract(ty, np.frombuffer(store.tr_y, dtype=np.float64)[:n])
            np.add(np.frombuffer(store.abs_y, dtype=np.float64)[:n], vy, out=vy)
            if store.shed_count:
                keep = np.frombuffer(store.shed, dtype=np.int8)[:n] == 0
                vx = vx[keep]
                vy = vy[keep]
            if len(vx):
                parts_x.append(vx)
                parts_y.append(vy)
        if not parts_x:
            return 0.0, 0.0, 0
        all_x = parts_x[0] if len(parts_x) == 1 else np.concatenate(parts_x)
        all_y = parts_y[0] if len(parts_y) == 1 else np.concatenate(parts_y)
        # cumsum is sequential left-to-right — bit-identical to the scalar
        # running sum.  np.sum would use pairwise summation and drift.
        return (
            float(np.cumsum(all_x)[-1]),
            float(np.cumsum(all_y)[-1]),
            len(all_x),
        )

    def recompute_radius(self) -> None:
        radius = min(self.nucleus_radius, self.radius) if self.shed_count else 0.0
        np = self._np()
        stores = (self.obj_store, self.qry_store)
        total = len(stores[0].index) + len(stores[1].index)
        if (
            np is not None
            and total >= VECTOR_MIN_MEMBERS
            and stores[0].ordered
            and stores[1].ordered
        ):
            radius = self._radius_vector(np, stores, radius)
        else:
            cx, cy = self.cx, self.cy
            tx, ty = self.trans_x, self.trans_y
            for store in stores:
                abs_x, abs_y = store.abs_x, store.abs_y
                tr_x, tr_y, shed = store.tr_x, store.tr_y, store.shed
                for slot in store.index.values():
                    if shed[slot]:
                        continue
                    dist = math.hypot(
                        abs_x[slot] + (tx - tr_x[slot]) - cx,
                        abs_y[slot] + (ty - tr_y[slot]) - cy,
                    )
                    if dist > radius:
                        radius = dist
        if radius != self.radius:
            self.version += 1
            self.radius = radius

    def _radius_vector(self, np, stores, radius: float) -> float:
        cx, cy = self.cx, self.cy
        tx, ty = self.trans_x, self.trans_y
        parts = []
        max_d2 = -1.0
        for store in stores:
            n = len(store.index)
            if not n:
                continue
            dx = np.subtract(tx, np.frombuffer(store.tr_x, dtype=np.float64)[:n])
            np.add(np.frombuffer(store.abs_x, dtype=np.float64)[:n], dx, out=dx)
            np.subtract(dx, cx, out=dx)
            dy = np.subtract(ty, np.frombuffer(store.tr_y, dtype=np.float64)[:n])
            np.add(np.frombuffer(store.abs_y, dtype=np.float64)[:n], dy, out=dy)
            np.subtract(dy, cy, out=dy)
            d2 = dx * dx
            d2 += dy * dy
            if store.shed_count:
                keep = np.frombuffer(store.shed, dtype=np.int8)[:n] == 0
                if not keep.any():
                    continue
                store_max = float(d2[keep].max())
            else:
                keep = None
                store_max = float(d2.max())
            if store_max > max_d2:
                max_d2 = store_max
            parts.append((d2, dx, dy, keep))
        if max_d2 < 0.0:
            return radius
        # The true farthest member (by exact math.hypot) always sits within
        # a few ulp of the squared-distance argmax; a 1e-12 relative band
        # provably contains it.  Recheck the band with exact scalar hypot —
        # float max is order-independent, so only the value matters.
        threshold = max_d2 * (1.0 - 1e-12)
        for d2, dx, dy, keep in parts:
            cand = d2 >= threshold
            if keep is not None:
                cand &= keep
            for i in np.nonzero(cand)[0]:
                dist = math.hypot(dx[i], dy[i])
                if dist > radius:
                    radius = dist
        return radius

    def maintenance_sweep(self, np=None) -> None:
        """Fused flush → recentre → recompute_radius over shared columns.

        The maintenance engine's per-cluster fast path: the three member
        sweeps read each column buffer once and share the reconstructed
        positions, cutting per-cluster numpy dispatch to a handful of
        calls.  Results are bit-identical to running the three methods in
        sequence — the arithmetic is the same expressions in the same
        order, only the redundant re-reads are gone.  Falls back to the
        sequential methods for tiny, unordered, or numpy-less stores.
        """
        stores = (self.obj_store, self.qry_store)
        if (
            np is None
            or len(stores[0].index) + len(stores[1].index) < VECTOR_MIN_MEMBERS
        ):
            self.flush_transform()
            self.recentre()
            self.recompute_radius()
            return
        tx, ty = self.trans_x, self.trans_y
        moved = tx != 0.0 or ty != 0.0
        parts = []
        for store in stores:
            n = len(store.index)
            if not n:
                continue
            # Unordered stores (slot reuse / mid-store removals) are swept
            # through a gather of the live slots in insertion order;
            # ordered stores use the zero-copy ``[:n]`` prefix.  The
            # elementwise flush runs over the *whole* column either way —
            # free slots hold stale junk that nothing reads, so updating
            # it is harmless and cheaper than scattering.
            gather = (
                None
                if store.ordered
                else np.fromiter(store.index.values(), dtype=np.intp, count=n)
            )
            live = n if gather is None else len(store.abs_x)
            absx = np.frombuffer(store.abs_x, dtype=np.float64)[:live]
            absy = np.frombuffer(store.abs_y, dtype=np.float64)[:live]
            trx = np.frombuffer(store.tr_x, dtype=np.float64)[:live]
            trY = np.frombuffer(store.tr_y, dtype=np.float64)[:live]
            shed = (
                np.frombuffer(store.shed, dtype=np.int8)[:live]
                if store.shed_count
                else None
            )
            if moved:
                dx = np.subtract(tx, trx)
                dy = np.subtract(ty, trY)
                if shed is not None:
                    keep = shed == 0
                    np.add(absx, dx, out=absx, where=keep)
                    np.add(absy, dy, out=absy, where=keep)
                else:
                    np.add(absx, dx, out=absx)
                    np.add(absy, dy, out=absy)
                trx[:] = 0.0
                trY[:] = 0.0
            else:
                # Values are already zero in the common resting case; the
                # scalar flush writes zeros over zeros, so skipping the
                # writes changes nothing.
                if trx.any():
                    trx[:] = 0.0
                if trY.any():
                    trY[:] = 0.0
            # Post-flush reconstruction: trans and tr are now zero, so the
            # scalar ``abs + (tx - tr)`` is ``abs + 0.0`` (kept for the
            # -0.0 + 0.0 -> +0.0 normalisation the scalar path performs).
            if gather is None:
                rx = absx + 0.0
                ry = absy + 0.0
                keep_live = None if shed is None else shed == 0
            else:
                rx = absx[gather] + 0.0
                ry = absy[gather] + 0.0
                keep_live = None if shed is None else shed[gather] == 0
            if keep_live is not None:
                rx = rx[keep_live]
                ry = ry[keep_live]
            if len(rx):
                parts.append((rx, ry))
        if moved:
            self.trans_x = 0.0
            self.trans_y = 0.0
        # -- recentre (cumsum = the scalar running sum, bit-identical) ------
        if parts:
            all_x = parts[0][0] if len(parts) == 1 else np.concatenate(
                [p[0] for p in parts]
            )
            all_y = parts[0][1] if len(parts) == 1 else np.concatenate(
                [p[1] for p in parts]
            )
            known = len(all_x)
            cx = float(np.cumsum(all_x)[-1]) / known
            cy = float(np.cumsum(all_y)[-1]) / known
            if cx != self.cx or cy != self.cy:
                self.version += 1
                self.cx = cx
                self.cy = cy
        # -- recompute_radius (squared-distance max + exact band recheck) ---
        radius = min(self.nucleus_radius, self.radius) if self.shed_count else 0.0
        if parts:
            cx, cy = self.cx, self.cy
            max_d2 = -1.0
            dists = []
            for rx, ry in parts:
                dx = rx - cx
                dy = ry - cy
                d2 = dx * dx
                d2 += dy * dy
                store_max = float(d2.max())
                if store_max > max_d2:
                    max_d2 = store_max
                dists.append((d2, dx, dy))
            threshold = max_d2 * (1.0 - 1e-12)
            for d2, dx, dy in dists:
                for i in np.nonzero(d2 >= threshold)[0]:
                    dist = math.hypot(dx[i], dy[i])
                    if dist > radius:
                        radius = dist
        if radius != self.radius:
            self.version += 1
            self.radius = radius

    # -- zero-copy view hooks ----------------------------------------------

    def join_view_columns(self):
        """Prebuilt SoA columns for :class:`ClusterJoinView`, or None.

        Called right after ``flush_transform`` (tr = 0, abs current).
        Offered whenever neither store has shed members.  Large ordered
        stores under numpy get zero-copy ndarray slices over the column
        buffers with vector-reduction bounding boxes; everything else
        (small clusters below ``VECTOR_MIN_MEMBERS``, fragmented stores,
        no numpy) gets list-mode direct column gathers — still far
        cheaper than the generic builder, which walks a ``ColumnMember``
        proxy per member paying a dict probe and slot indirection per
        attribute read.  The buffers can only change after a version
        bump, which also invalidates the cached view.
        """
        so, sq = self.obj_store, self.qry_store
        if so.shed_count or sq.shed_count:
            return None
        n_o = len(so.index)
        n_q = len(sq.index)
        np = self._np()
        if (
            np is None
            or not (so.ordered and sq.ordered)
            or n_o + n_q < VECTOR_MIN_MEMBERS
        ):
            return self._join_view_columns_lists(so, sq, n_o, n_q)
        obj_ids = list(so.index)
        if n_o:
            obj_xs = np.frombuffer(so.abs_x, dtype=np.float64)[:n_o]
            obj_ys = np.frombuffer(so.abs_y, dtype=np.float64)[:n_o]
            min_x = float(obj_xs.min())
            max_x = float(obj_xs.max())
            min_y = float(obj_ys.min())
            max_y = float(obj_ys.max())
        else:
            obj_xs = np.frombuffer(so.abs_x, dtype=np.float64)
            obj_ys = obj_xs
            min_x = min_y = math.inf
            max_x = max_y = -math.inf
        query_ids = list(sq.index)
        query_xs = np.frombuffer(sq.abs_x, dtype=np.float64)[:n_q]
        query_ys = np.frombuffer(sq.abs_y, dtype=np.float64)[:n_q]
        # x * 0.5 and x / 2.0 round identically (exact power-of-two scale).
        query_hws = np.frombuffer(sq.range_w, dtype=np.float64)[:n_q] * 0.5
        query_hhs = np.frombuffer(sq.range_h, dtype=np.float64)[:n_q] * 0.5
        return (
            obj_ids,
            obj_xs,
            obj_ys,
            min_x,
            min_y,
            max_x,
            max_y,
            query_ids,
            query_xs,
            query_ys,
            query_hws,
            query_hhs,
        )

    @staticmethod
    def _join_view_columns_lists(so, sq, n_o: int, n_q: int):
        """List-mode join view columns: direct store gathers.

        Same values the generic builder reads through member proxies —
        float ``min``/``max`` agree with its comparison loop, and
        ``* 0.5`` rounds identically to ``/ 2.0`` (exact power-of-two
        scale) — at one C-level column pass per attribute instead of a
        Python proxy property call per member per attribute.
        """
        obj_ids = list(so.index)
        obj_xs = so.gather("abs_x")
        obj_ys = so.gather("abs_y")
        if n_o:
            min_x = min(obj_xs)
            max_x = max(obj_xs)
            min_y = min(obj_ys)
            max_y = max(obj_ys)
        else:
            min_x = min_y = math.inf
            max_x = max_y = -math.inf
        query_ids = list(sq.index)
        query_xs = sq.gather("abs_x")
        query_ys = sq.gather("abs_y")
        query_hws = [w * 0.5 for w in sq.gather("range_w")]
        query_hhs = [h * 0.5 for h in sq.gather("range_h")]
        return (
            obj_ids,
            obj_xs,
            obj_ys,
            min_x,
            min_y,
            max_x,
            max_y,
            query_ids,
            query_xs,
            query_ys,
            query_hws,
            query_hhs,
        )

    def ingest_view_columns(self):
        """Prebuilt columns for :class:`IngestView`, or None.

        Speeds/destinations/shed flags are zero-copy slices when a single
        kind is present (concatenated otherwise); reconstructed positions
        ``abs + (trans - tr)`` are computed vectorized with the exact
        elementwise operation order of the scalar builder.
        """
        np = self._np()
        if np is None:
            return None
        so, sq = self.obj_store, self.qry_store
        if not (so.ordered and sq.ordered):
            return None
        n_o = len(so.index)
        n_q = len(sq.index)
        if n_o + n_q < VECTOR_MIN_MEMBERS:
            return None
        tx, ty = self.trans_x, self.trans_y
        rows = {}
        members = []
        row = 0
        for bit, store in ((1, so), (0, sq)):
            proxy = store.proxy
            for entity_id in store.index:
                rows[entity_id * 2 + bit] = row
                members.append(proxy(entity_id))
                row += 1
        speeds = []
        recon_x = []
        recon_y = []
        cns = []
        sheds = []
        for store, n in ((so, n_o), (sq, n_q)):
            if not n:
                continue
            rx = np.subtract(tx, np.frombuffer(store.tr_x, dtype=np.float64)[:n])
            np.add(np.frombuffer(store.abs_x, dtype=np.float64)[:n], rx, out=rx)
            ry = np.subtract(ty, np.frombuffer(store.tr_y, dtype=np.float64)[:n])
            np.add(np.frombuffer(store.abs_y, dtype=np.float64)[:n], ry, out=ry)
            speeds.append(np.frombuffer(store.speed, dtype=np.float64)[:n])
            recon_x.append(rx)
            recon_y.append(ry)
            cns.append(np.frombuffer(store.cn_node, dtype=np.int64)[:n])
            sheds.append(np.frombuffer(store.shed, dtype=np.int8)[:n])

        def cat(parts):
            return parts[0] if len(parts) == 1 else np.concatenate(parts)

        return (
            rows,
            members,
            cat(speeds),
            cat(recon_x),
            cat(recon_y),
            cat(cns),
            cat(sheds),
        )

    # -- maintenance support ------------------------------------------------

    def ensure_compact(self, np=None) -> int:
        """Compact any store that lost slot order or wastes capacity.

        Called by the maintenance engine before the vectorized sweeps; a
        pure reorder (no value changes, no version bumps).  Returns the
        number of stores rebuilt.

        Disorder alone only matters to the vectorized paths — the
        ordered-prefix sweeps and the zero-copy join/ingest views all bail
        below :data:`VECTOR_MIN_MEMBERS` anyway, and the gather fallback
        sweeps unordered stores exactly — so small clusters skip the
        rebuild and only compact to reclaim wasted capacity.  Churning
        convoys at the scale-ladder rungs otherwise pay a full column
        rebuild every interval for order no fast path ever reads.
        """
        rebuilt = 0
        so, sq = self.obj_store, self.qry_store
        small = len(so.index) + len(sq.index) < VECTOR_MIN_MEMBERS
        for store in (so, sq):
            if store.wasteful() or (not store.ordered and not small):
                if store.compact(np):
                    rebuilt += 1
        return rebuilt


class ColumnarClusterFactory:
    """``ClusterWorld`` factory producing column-backed clusters.

    Carries only the backend *name*, so pickled worlds (sharded workers,
    checkpoints) re-resolve numpy lazily on the other side.
    """

    def __init__(self, backend_name: str = "auto") -> None:
        self.backend_name = backend_name

    def __call__(
        self,
        cid: int,
        centroid: Point,
        cn_node: NodeId,
        cn_loc: Point,
        now: float,
    ) -> ColumnarMovingCluster:
        return ColumnarMovingCluster(
            cid=cid,
            centroid=centroid,
            cn_node=cn_node,
            cn_loc=cn_loc,
            now=now,
            backend_name=self.backend_name,
        )
