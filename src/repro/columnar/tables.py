"""Array-backed last-seen columns for the attribute tables.

:class:`ColumnarEntityAttributeTable` keeps the attribute mappings in the
parent dict (they are arbitrary Python objects) but moves the last-seen
timestamps into parallel ``array('q')``/``array('d')`` columns with a
free list, so :meth:`evict_stale` is one vectorized ``ts < cutoff``
comparison over the whole column instead of a dict scan.  Freed slots
have their timestamp poisoned to ``+inf`` (never stale) and are reused
by the next :meth:`record`; the columns compact once free slots
outnumber live rows.

Timestamps are stored and returned verbatim (no arithmetic), so
``last_seen`` stays bit-identical to the dict-backed path.  The
last-seen side-table is not part of the checkpoint state digest.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Mapping, Optional

from ..core.tables import EntityAttributeTable
from .backend import columnar_numpy

__all__ = [
    "ColumnarEntityAttributeTable",
    "ColumnarObjectsTable",
    "ColumnarQueriesTable",
]


class ColumnarEntityAttributeTable(EntityAttributeTable):
    """Attribute table whose last-seen bookkeeping lives in columns."""

    def __init__(self, backend_name: str = "auto") -> None:
        super().__init__()
        self.backend_name = backend_name
        self._eids = array("q")
        self._ts = array("d")
        self._slot: dict = {}
        self._free: list = []

    def record(self, entity_id: int, attrs: Optional[Mapping[str, Any]], t: float) -> None:
        if attrs:
            self._attrs[entity_id] = attrs
        elif entity_id not in self._attrs:
            self._attrs[entity_id] = {}
        slot = self._slot.get(entity_id)
        if slot is not None:
            self._ts[slot] = t
            return
        if self._free:
            slot = self._free.pop()
            self._eids[slot] = entity_id
            self._ts[slot] = t
        else:
            slot = len(self._eids)
            self._eids.append(entity_id)
            self._ts.append(t)
        self._slot[entity_id] = slot

    def last_seen(self, entity_id: int) -> Optional[float]:
        slot = self._slot.get(entity_id)
        if slot is None:
            return None
        return self._ts[slot]

    def evict(self, entity_id: int) -> bool:
        existed = self._attrs.pop(entity_id, None) is not None
        slot = self._slot.pop(entity_id, None)
        if slot is not None:
            self._eids[slot] = -1
            self._ts[slot] = math.inf
            self._free.append(slot)
            self._maybe_compact()
        return existed

    def evict_stale(self, cutoff: float) -> int:
        n = len(self._eids)
        if n == 0:
            return 0
        np = columnar_numpy(self.backend_name)
        ts = self._ts
        if np is not None:
            col = np.frombuffer(ts, dtype=np.float64)
            mask = col < cutoff  # free slots sit at +inf, never stale
            if not mask.any():
                return 0
            stale_slots = np.nonzero(mask)[0].tolist()
        else:
            stale_slots = [slot for slot in range(n) if ts[slot] < cutoff]
            if not stale_slots:
                return 0
        eids = self._eids
        for slot in stale_slots:
            eid = eids[slot]
            del self._attrs[eid]
            del self._slot[eid]
            eids[slot] = -1
            ts[slot] = math.inf
            self._free.append(slot)
        self._maybe_compact()
        return len(stale_slots)

    def _maybe_compact(self) -> None:
        free = len(self._free)
        if free <= 16 or free <= len(self._slot):
            return
        eids = array("q")
        ts = array("d")
        slot_of: dict = {}
        old_eids, old_ts = self._eids, self._ts
        for slot in sorted(self._slot.values()):
            eid = old_eids[slot]
            slot_of[eid] = len(eids)
            eids.append(eid)
            ts.append(old_ts[slot])
        self._eids = eids
        self._ts = ts
        self._slot = slot_of
        self._free = []


class ColumnarObjectsTable(ColumnarEntityAttributeTable):
    """Columnar variant of :class:`repro.core.tables.ObjectsTable`."""


class ColumnarQueriesTable(ColumnarEntityAttributeTable):
    """Columnar variant of :class:`repro.core.tables.QueriesTable`."""
