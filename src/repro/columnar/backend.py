"""Columnar backend resolution (mirrors ``repro.kernels``' pattern).

The columnar subsystem stores member and table state in parallel
``array.array`` columns regardless of backend; the backend only decides
whether per-tick maintenance sweeps may run as numpy array expressions
over those buffers (zero-copy via the buffer protocol) or must fall back
to exact scalar loops over the columns.

``auto`` resolves to numpy when importable, else the stdlib-``array``
scalar path.  Only the backend *name* is ever stored on long-lived
objects — the module reference is re-resolved lazily so pickled operators
(sharded workers, checkpoints) never carry a numpy module.
"""

from __future__ import annotations

__all__ = [
    "COLUMNAR_BACKEND_CHOICES",
    "columnar_numpy",
    "columnar_numpy_available",
    "resolved_backend_name",
]

#: Accepted ``ScubaConfig.columnar_backend`` / ``--columnar-backend`` values.
COLUMNAR_BACKEND_CHOICES = ("auto", "numpy", "array")

_UNSET = object()
_numpy = _UNSET


def _import_numpy():
    global _numpy
    if _numpy is _UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
    return _numpy


def columnar_numpy_available() -> bool:
    """True when the numpy columnar backend can resolve."""
    return _import_numpy() is not None


def columnar_numpy(name: str = "auto"):
    """The numpy module for ``name``, or ``None`` for the scalar fallback.

    ``auto`` degrades silently; an explicit ``numpy`` request raises if
    numpy is missing (same contract as ``kernels.resolve_backend``).
    """
    if name not in COLUMNAR_BACKEND_CHOICES:
        raise ValueError(
            f"unknown columnar backend {name!r}; "
            f"choices: {COLUMNAR_BACKEND_CHOICES}"
        )
    if name == "array":
        return None
    np = _import_numpy()
    if np is None and name == "numpy":
        raise ImportError(
            "columnar_backend='numpy' requested but numpy is not installed"
        )
    return np


def resolved_backend_name(name: str = "auto") -> str:
    """``"numpy"`` or ``"array"`` — what ``name`` resolves to right now."""
    return "numpy" if columnar_numpy(name) is not None else "array"
