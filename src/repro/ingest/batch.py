"""Columnar update batches — the SoA view of one tick's stream tuples.

The scalar ingest path reads each update's fields through Python attribute
access, once per call-chain hop.  The batched ingest kernels instead build
one :class:`UpdateBatch` per evaluation tick: parallel flat lists (and,
under the numpy kernel, ``float64``/``int64`` arrays materialised lazily)
of the admission-relevant columns — entity key, kind, position, speed,
destination node, timestamp — plus the original update objects for the
slow-path fallback and the tables.

Entity keys use the same packing as
:class:`~repro.clustering.registry.ClusterHome` (``entity_id * 2 +
is_object``), so a batch column can be joined directly against the home
table and against per-cluster member snapshots without touching the
:class:`~repro.generator.EntityKind` enum on the hot path.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..generator import EntityKind, TickBatch, Update

__all__ = ["UpdateBatch"]


class UpdateBatch:
    """Struct-of-arrays snapshot of one tick's updates, in arrival order."""

    __slots__ = (
        "updates",
        "keys",
        "kinds",
        "xs",
        "ys",
        "speeds",
        "cns",
        "ts",
        "_uniform",
        "_source",
        "_np_columns",
    )

    def __init__(self, updates: Sequence[Update]) -> None:
        self.updates: Sequence[Update] = updates
        if isinstance(updates, TickBatch):
            # Adopt the tick's native columns without materializing rows.
            # Scalar (Python-float) versions feed the per-row compares and
            # the commit writes — values that reach persistent cluster
            # state must be plain floats, not numpy scalars — while
            # ``numpy_columns`` reuses the producer's arrays untouched.
            xs, ys, speeds, _, _, _, _ = updates._scalar_columns()
            self.keys = updates.keys
            self.kinds = updates.kinds
            self.xs = xs
            self.ys = ys
            self.speeds = speeds
            self.cns = updates.cns
            self.ts = None
            self._uniform = updates.t
            self._source = updates
            self._np_columns = None
            return
        self._uniform = None
        self._source = None
        keys: List[int] = []
        kinds: List[bool] = []
        xs: List[float] = []
        ys: List[float] = []
        speeds: List[float] = []
        cns: List[int] = []
        ts: List[float] = []
        obj = EntityKind.OBJECT
        for update in updates:
            is_object = update.kind is obj
            keys.append(update.entity_id * 2 + is_object)
            kinds.append(is_object)
            loc = update.loc
            xs.append(loc.x)
            ys.append(loc.y)
            speeds.append(update.speed)
            cns.append(update.cn_node)
            ts.append(update.t)
        self.keys = keys
        self.kinds = kinds
        self.xs = xs
        self.ys = ys
        self.speeds = speeds
        self.cns = cns
        self.ts = ts
        self._np_columns: Optional[tuple] = None

    def __len__(self) -> int:
        return len(self.updates)

    @property
    def uniform_t(self) -> Optional[float]:
        """The batch's single timestamp, or ``None`` when timestamps mix.

        Generator ticks emit every update at the same simulation time; the
        batched fast path relies on that (one ``advance_to`` per cluster
        per batch), so mixed-timestamp batches fall back to the scalar
        loop.  Adopted tick batches are uniform by construction.
        """
        if self._uniform is not None:
            return self._uniform
        ts = self.ts
        if not ts:
            return None
        t = ts[0]
        for other in ts:
            if other != t:
                return None
        return t

    def numpy_columns(self, np: Any) -> tuple:
        """``(keys, xs, ys, speeds, cns)`` as ndarrays, built once per batch."""
        columns = self._np_columns
        if columns is None:
            n = len(self.keys)
            source = self._source
            if source is not None:
                # asarray passes the vectorized generator's float64 arrays
                # through without a copy; only the int columns (plain
                # lists on the tick batch) pay a conversion.
                columns = (
                    np.fromiter(self.keys, dtype=np.int64, count=n),
                    np.asarray(source.xs, dtype=np.float64),
                    np.asarray(source.ys, dtype=np.float64),
                    np.asarray(source.speeds, dtype=np.float64),
                    np.fromiter(self.cns, dtype=np.int64, count=n),
                )
            else:
                columns = (
                    np.fromiter(self.keys, dtype=np.int64, count=n),
                    np.fromiter(self.xs, dtype=np.float64, count=n),
                    np.fromiter(self.ys, dtype=np.float64, count=n),
                    np.fromiter(self.speeds, dtype=np.float64, count=n),
                    np.fromiter(self.cns, dtype=np.int64, count=n),
                )
            self._np_columns = columns
        return columns
