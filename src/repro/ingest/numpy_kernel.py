"""NumPy-vectorised group classification for the batched ingest path.

Inherits the whole batch driver — grouping, routing, the pre-absorb hook,
the commit — from :class:`~repro.ingest.base.PythonBatchIngestKernel` and
replaces only ``_classify``: for groups of at least
:attr:`NumpyIngestKernel.numpy_min_group` members the admission tests run
as whole-column array operations against the view's sorted key table
(``searchsorted`` joins the batch's entity keys to member rows).
Heartbeat rows — updates byte-identical to their member's snapshot —
resolve through an equality mask plus the view's precomputed admission
flags; only the residual refresh rows pay the float admission math, with
``.any()`` bail-outs mirroring the python kernel's early returns.

All comparisons are performed on ``float64``/``int64`` columns with the
same IEEE operations the scalar path executes on Python floats, so the
verdicts — and therefore the committed state — are bit-identical across
backends.  Small groups fall through to the python classification, whose
per-element overhead is lower than array set-up below the threshold; the
tick's columnar :class:`~repro.ingest.batch.UpdateBatch` is built lazily,
on the first group large enough to want it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..generator import Update
from .base import PythonBatchIngestKernel
from .batch import UpdateBatch

__all__ = ["NumpyIngestKernel"]


class NumpyIngestKernel(PythonBatchIngestKernel):
    """Batched ingest with array-at-a-time group admission tests."""

    name = "numpy"

    #: Groups smaller than this classify through the python kernel.
    #: Array set-up (the lazy tick-wide column build plus per-group
    #: gathers) is a fixed cost the heartbeat-heavy steady state never
    #: recoups on convoy-sized groups — the python equality branch is a
    #: handful of compares per row — so only genuinely large groups,
    #: where the refresh float math dominates, clear the bar.
    numpy_min_group = 64

    def _classify(
        self, updates: Sequence[Update], rows: List[int], cluster: Any,
        spec: Any
    ) -> Optional[Tuple[List[Tuple[Any, bool]], int]]:
        if len(rows) < self.numpy_min_group:
            return super()._classify(updates, rows, cluster, spec)
        batch = self._batch
        if batch is None:
            batch = self._batch = UpdateBatch(self._updates)
        view = self._view_of(cluster, spec)
        view.ensure_hb_ok(cluster, spec)
        skeys, srows, v_speeds, v_rx, v_ry, v_cns, v_sheds, v_hb = (
            view.numpy_tables(np)
        )
        all_keys, xs, ys, speeds, cns = batch.numpy_columns(np)
        idx = np.fromiter(rows, dtype=np.int64, count=len(rows))
        gkeys = all_keys[idx]
        # Join batch keys to member rows; a miss or a duplicate entity in
        # the tick disqualifies the group, as in the python kernel.
        pos = np.searchsorted(skeys, gkeys)
        pos[pos == skeys.size] = 0
        if not np.array_equal(skeys[pos], gkeys):
            return None
        mrows = srows[pos]
        if np.unique(mrows).size != mrows.size:
            return None
        gx = xs[idx]
        gy = ys[idx]
        gs = speeds[idx]
        gcn = cns[idx]
        heartbeat = (
            (gx == v_rx[mrows])
            & (gy == v_ry[mrows])
            & (gs == v_speeds[mrows])
            & (gcn == v_cns[mrows])
            & ~v_sheds[mrows]
        )
        if not v_hb[mrows[heartbeat]].all():
            return None
        refresh = ~heartbeat
        if refresh.any():
            rx = gx[refresh]
            ry = gy[refresh]
            rs = gs[refresh]
            rrows = mrows[refresh]
            if spec.require_same_destination and (
                gcn[refresh] != cluster.cn_node
            ).any():
                return None
            slack = spec.eviction_slack
            max_d = spec.theta_d * slack
            dx = rx - cluster.cx
            dy = ry - cluster.cy
            d_sq = dx * dx + dy * dy
            if (d_sq > max_d * max_d).any():
                return None
            if (np.abs(rs - cluster.avespeed) > spec.theta_s * slack).any():
                return None
            if (rs != v_speeds[rrows]).any():
                return None
            if (d_sq > cluster.radius * cluster.radius).any():
                return None
        members = view.members
        assignments = [
            (members[row], hb)
            for row, hb in zip(mrows.tolist(), heartbeat.tolist())
        ]
        return assignments, len(rows) - int(heartbeat.sum())
