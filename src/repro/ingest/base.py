"""Ingest kernels: batched cluster-maintenance for the pre-join phase.

After the join side was sharded, kernelized and made incremental, the
per-update scalar ingest chain (``IncrementalClusterer.ingest`` →
``advance_to`` → ``_qualifies`` → ``absorb`` → ``grid.refresh``; five
Python calls plus dict traffic per location update) dominates interval
cost in update-heavy regimes — the "cluster maintenance" overhead of
paper §5.  The batched kernels restructure one tick's updates into an
:class:`~repro.ingest.batch.UpdateBatch` and process the steady-state
fast path per *cluster group* instead of per update:

1. group the tick's updates by each entity's current home cluster;
2. advance each touched cluster to the tick time once (``advance_to`` is
   an idempotent per-tick no-op after the first touch, but the scalar
   path still pays the call per update);
3. test the Θ_D/Θ_S admission conditions for the whole member group in
   one pass against a cached member snapshot (:class:`IngestView`);
4. bulk-commit qualifying groups: heartbeat members get their ``last_t``
   stamped, refreshed members get their position/translation fields
   rewritten, and the cluster takes a *single* aggregated
   version/struct-version bump;
5. dedupe ``ClusterGrid.refresh`` to one call per group per tick.

**Exactness contract.**  The batched path must leave cluster state,
assignments and answers *identical* to the scalar loop.  Three devices
make that hold without approximation:

* *Fast-group admission is conservative.*  A group bulk-commits only when
  every update is from an existing member of a multi-member cluster,
  re-qualifies under the eviction slack, reports an **unchanged speed**
  (so the running speed sum and average are untouched — the scalar
  refresh recomputes ``avespeed = _speed_sum / n`` to the bit-identical
  value) and does **not grow the radius** (its distance to the
  post-advance centroid stays within the current radius; heartbeats are
  exempt, as the scalar path never radius-checks them).  Under those
  conditions every scalar absorb in the group mutates only its own
  member's fields plus the version counters, so the group's admission
  verdicts are order-independent and the aggregate commit is bitwise
  equal to the sequential one.  Anything else — new entities, evictions,
  node crossings, speed changes, radius growth, singleton clusters —
  routes the *whole group* through the scalar slow path at the original
  arrival positions.

* *Grid refreshes collapse losslessly.*  With the radius pinned and the
  centroid advanced once up front, every per-update ``grid.refresh`` the
  scalar loop would issue for the group sees the same inputs, so they are
  one re-registration (at the group's first row, exactly where the
  scalar path would first run it) followed by no-ops — the kernel issues
  that single call and counts the rest as ``grid_refresh_deduped``.

* *Interleaved slow rows keep scalar order.*  A slow-path row (say a new
  entity) may join a cluster that has uncommitted fast rows before it.
  The kernel registers a ``pre_absorb_hook`` with the
  :class:`~repro.clustering.ClusterWorld` for the duration of the walk:
  the moment any slow-path absorb (or evict) targets a planned cluster,
  the cluster's already-walked fast rows are flushed through the scalar
  path *first* — in batch order, before the foreign mutation — and the
  remaining rows are re-routed to the scalar path at their own
  positions.  The sequence of state mutations is then exactly the scalar
  loop's.  A version snapshot taken at classification guards the commit
  as a defensive backstop (``batch_fallbacks`` counts both).

Shedding composes: the configured policy is applied once per committed
update against the (unchanged) centroid, exactly as ``Scuba.on_update``
does.  The one knowingly order-sensitive policy is ``RandomShedding``,
whose RNG draws follow commit order rather than global arrival order.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..generator import EntityKind, TickBatch, Update
from .batch import UpdateBatch

_OBJECT = EntityKind.OBJECT

__all__ = [
    "IngestKernel",
    "ScalarIngestKernel",
    "PythonBatchIngestKernel",
    "IngestView",
]


class IngestView:
    """Cached per-cluster member snapshot for group admission tests.

    Columns are keyed by the home-table entity key and hold each member's
    speed, *reconstructed* absolute position (``abs + (trans − tr)`` — the
    value the heartbeat test in ``MovingCluster.absorb`` compares
    against), destination node and shed flag, plus the member object
    itself for the commit.  The snapshot is valid while
    ``cluster.version`` is unchanged: every mutation that can alter any
    column bumps the version, while ``flush_transform`` (which rebases
    stored coordinates without moving anyone) leaves the reconstructed
    positions — and hence this view — intact.  Parked convoys never bump,
    so their views persist across ticks and classification becomes pure
    column compares.
    """

    __slots__ = ("version", "rows", "members", "speeds", "recon_x",
                 "recon_y", "cns", "sheds", "hb_ok", "_np_tables")

    def __init__(self, cluster: Any, spec: Any) -> None:
        self.version: int = cluster.version
        columns = getattr(cluster, "ingest_view_columns", None)
        data = columns() if columns is not None else None
        if data is not None:
            # Columnar cluster: speed/cn/shed columns are zero-copy array
            # slices and the reconstructed positions one vectorized
            # expression (same ``abs + (trans − tr)`` op order, so
            # bit-identical to the scalar loop below).
            (
                self.rows,
                self.members,
                self.speeds,
                self.recon_x,
                self.recon_y,
                self.cns,
                self.sheds,
            ) = data
            self.hb_ok = None
            self._np_tables = None
            return
        rows: Dict[int, int] = {}
        members: List[Any] = []
        speeds: List[float] = []
        recon_x: List[float] = []
        recon_y: List[float] = []
        cns: List[int] = []
        sheds: List[bool] = []
        tx = cluster.trans_x
        ty = cluster.trans_y
        row = 0
        for bit, table in ((1, cluster.objects), (0, cluster.queries)):
            for entity_id, member in table.items():
                rows[entity_id * 2 + bit] = row
                members.append(member)
                speeds.append(member.speed)
                recon_x.append(member.abs_x + (tx - member.tr_x))
                recon_y.append(member.abs_y + (ty - member.tr_y))
                cns.append(member.cn_node)
                sheds.append(member.position_shed)
                row += 1
        self.rows = rows
        self.members = members
        self.speeds = speeds
        self.recon_x = recon_x
        self.recon_y = recon_y
        self.cns = cns
        self.sheds = sheds
        self.hb_ok: Optional[List[bool]] = None
        self._np_tables: Optional[tuple] = None

    def ensure_hb_ok(self, cluster: Any, spec: Any) -> List[bool]:
        """Per-row precomputed heartbeat admission verdicts, built on the
        first heartbeat hit against this view.

        Would an update byte-identical to this snapshot row pass the
        group admission tests?  Pure function of columns frozen with the
        view, so heartbeat classification reduces to an equality compare
        plus this flag.  Built lazily because moving clusters rebuild
        their view every tick (``advance`` bumps the version) and their
        members rarely heartbeat — only the parked steady state, where
        the view persists across ticks, ever reads these flags.
        """
        hb_ok = self.hb_ok
        if hb_ok is None:
            cx = cluster.cx
            cy = cluster.cy
            avespeed = cluster.avespeed
            cluster_cn = cluster.cn_node
            require_dest = spec.require_same_destination
            slack = spec.eviction_slack
            max_d = spec.theta_d * slack
            max_d_sq = max_d * max_d
            max_ds = spec.theta_s * slack
            hb_ok = []
            for speed, rx, ry, cn in zip(
                self.speeds, self.recon_x, self.recon_y, self.cns
            ):
                dx = rx - cx
                dy = ry - cy
                hb_ok.append(
                    (not require_dest or cn == cluster_cn)
                    and dx * dx + dy * dy <= max_d_sq
                    and abs(speed - avespeed) <= max_ds
                )
            self.hb_ok = hb_ok
        return hb_ok

    def numpy_tables(self, np: Any) -> tuple:
        """``(sorted_keys, sorted_rows, speeds, rx, ry, cns, sheds, hb_ok)``.

        The first two arrays are the key→row join table sorted by key for
        ``searchsorted``; the column arrays stay in row order.  Callers
        must run :meth:`ensure_hb_ok` first — the flag column is lazy.
        """
        tables = self._np_tables
        if tables is None:
            n = len(self.speeds)
            keys = np.fromiter(self.rows.keys(), dtype=np.int64, count=n)
            rows = np.fromiter(self.rows.values(), dtype=np.int64, count=n)
            order = np.argsort(keys, kind="stable")
            # asarray is a no-copy passthrough when a column is already an
            # ndarray of the right dtype (the columnar fast path).
            tables = (
                keys[order],
                rows[order],
                np.asarray(self.speeds, dtype=np.float64),
                np.asarray(self.recon_x, dtype=np.float64),
                np.asarray(self.recon_y, dtype=np.float64),
                np.asarray(self.cns, dtype=np.int64),
                np.asarray(self.sheds, dtype=bool),
                np.fromiter(self.hb_ok, dtype=bool, count=n),
            )
            self._np_tables = tables
        return tables


class IngestKernel:
    """Delivers one tick's updates to a SCUBA operator.

    Instances are stateful (per-operator counters and view caches), so
    :func:`~repro.ingest.make_ingest_kernel` returns a fresh kernel per
    call — unlike the shared join-kernel backend instances.
    """

    #: Backend name (mirrors the join-kernel registry's naming).
    name = "abstract"

    def __init__(self) -> None:
        #: Updates committed through the batched fast path.
        self.fast_path_batched = 0
        #: Non-heartbeat members bulk-absorbed (aggregated refreshes).
        self.bulk_absorbs = 0
        #: ``ClusterGrid.refresh`` calls avoided by per-group dedupe.
        self.grid_refresh_deduped = 0
        #: Fast rows rerouted to the scalar path after their cluster was
        #: touched by an interleaved slow-path row (hook flushes) or a
        #: failed commit guard.
        self.batch_fallbacks = 0

    def run(self, operator: Any, updates: Sequence[Update]) -> None:
        """Ingest ``updates`` (one tick, arrival order) into ``operator``."""
        raise NotImplementedError

    def counters(self) -> Dict[str, int]:
        return {
            "fast_path_batched": self.fast_path_batched,
            "bulk_absorbs": self.bulk_absorbs,
            "grid_refresh_deduped": self.grid_refresh_deduped,
            "batch_fallbacks": self.batch_fallbacks,
        }


class ScalarIngestKernel(IngestKernel):
    """The reference path: per-update ``on_update``, no batching at all."""

    name = "scalar"

    def run(self, operator: Any, updates: Sequence[Update]) -> None:
        on_update = operator.on_update
        for update in updates:
            on_update(update)


class PythonBatchIngestKernel(IngestKernel):
    """Stdlib-only batched ingest (group admission in plain Python)."""

    name = "python"

    #: Home groups below this size take the scalar path — a one-member
    #: "group" dedupes nothing and the plan bookkeeping would be pure
    #: overhead.
    min_group = 2

    #: Ticks a cluster sits out of classification after its group fails
    #: it (see the planning loop) — bounds the per-tick view-rebuild and
    #: classify cost to ``1 / (cooldown_ticks + 1)`` of the updates for
    #: clusters that never qualify, at the price of re-batching that many
    #: ticks late when one starts qualifying again.
    cooldown_ticks = 2

    def __init__(self) -> None:
        super().__init__()
        self._views: Dict[int, IngestView] = {}
        self._cooldown: Dict[int, int] = {}
        # Walk state, live only inside run() (the pre-absorb hook reads
        # it); never pickled — the kernel is a transient of its operator.
        self._active: Dict[int, tuple] = {}
        self._commit_cid: Dict[int, int] = {}
        self._updates: Sequence[Update] = ()
        self._keys: List[int] = []
        self._cols: Optional[tuple] = None
        self._batch: Optional[UpdateBatch] = None
        self._operator: Any = None
        self._extras: List[int] = []
        self._pos = 0

    # -- view cache ---------------------------------------------------------

    def _view_of(self, cluster: Any, spec: Any) -> IngestView:
        view = self._views.get(cluster.cid)
        if view is None or view.version != cluster.version:
            view = IngestView(cluster, spec)
            self._views[cluster.cid] = view
        return view

    def _prune_views(self, storage: Any) -> None:
        views = self._views
        if len(views) > 2 * len(storage) + 64:
            for cid in [cid for cid in views if cid not in storage]:
                del views[cid]
        cooldown = self._cooldown
        if len(cooldown) > 2 * len(storage) + 64:
            for cid in [cid for cid in cooldown if cid not in storage]:
                del cooldown[cid]

    # -- batch driver -------------------------------------------------------

    def run(self, operator: Any, updates: Sequence[Update]) -> None:
        n = len(updates)
        if n < self.min_group:
            on_update = operator.on_update
            for update in updates:
                on_update(update)
            return
        if isinstance(updates, TickBatch):
            # A tick batch is uniform-t by construction and carries its
            # columns; the grouping/classify/commit passes read those
            # directly and only materialize the rows that take a scalar
            # visit.
            self._run_tick(operator, updates, updates.t)
            return
        # The pipeline delivers one tick per call, so a uniform timestamp
        # is the overwhelmingly common case; the grouping pass verifies it
        # inline and backs out (before touching any state) if a hand-built
        # mixed-t stream shows up, which is then split into maximal
        # same-t runs to keep the per-tick advance-once logic sound.
        if self._run_tick(operator, updates, updates[0].t):
            return
        start = 0
        for i in range(1, n + 1):
            if i == n or updates[i].t != updates[start].t:
                self._run_tick(operator, updates[start:i], updates[start].t)
                start = i

    def _run_tick(
        self, operator: Any, updates: Sequence[Update], t: float
    ) -> bool:
        """Ingest one uniform-``t`` tick; False if ``updates`` turned out
        to mix timestamps (nothing has been mutated in that case)."""
        world = operator.world
        storage = world.storage
        home_get = world.home.key_map().get
        spec = operator.clusterer.spec
        # Seen by _classify overrides that want tick-wide columns (the
        # numpy kernel builds an UpdateBatch lazily, first large group).
        self._updates = updates
        self._batch = None

        # Group rows by home cluster, arrival order preserved.  Keys use
        # the home-table packing (entity_id * 2 + is_object); the list is
        # reused by classification for the view join.
        groups: Dict[int, List[int]] = {}
        get_group = groups.get
        # Homeless rows (entities with no cluster yet) are scalar visits.
        slow: List[int] = []
        append_slow = slow.append
        if isinstance(updates, TickBatch):
            # Column path: the batch's cached key column replaces the
            # per-row attribute reads, and classification/commit read the
            # scalar column views instead of materialized rows.
            keys = updates.keys
            xs, ys, speeds, cn_xs, cn_ys, _, _ = updates._scalar_columns()
            self._cols = (xs, ys, speeds, updates.cns, cn_xs, cn_ys)
            for i, key in enumerate(keys):
                cid = home_get(key)
                if cid is not None:
                    rows = get_group(cid)
                    if rows is None:
                        groups[cid] = [i]
                    else:
                        rows.append(i)
                else:
                    append_slow(i)
        else:
            self._cols = None
            keys = []
            append_key = keys.append
            obj = _OBJECT
            for i, update in enumerate(updates):
                if update.t != t:
                    self._cols = None
                    return False
                key = update.entity_id * 2 + (update.kind is obj)
                append_key(key)
                cid = home_get(key)
                if cid is not None:
                    rows = get_group(cid)
                    if rows is None:
                        groups[cid] = [i]
                    else:
                        rows.append(i)
                else:
                    append_slow(i)
        self._keys = keys

        # Classify each group.  Rows outside a fast group — entities with
        # no home yet, small groups, failed groups — become the walk's
        # scalar visits.
        plans = self._active
        plans.clear()
        min_group = self.min_group
        commit_cid = self._commit_cid
        commit_cid.clear()
        first_refresh: Dict[int, Any] = {}
        cooldown = self._cooldown
        for cid, rows in groups.items():
            if len(rows) < min_group:
                slow.extend(rows)
                continue
            left = cooldown.get(cid)
            if left:
                # This cluster's group just failed classification; its
                # updates are overwhelmingly likely to fail again (moving
                # convoys re-speed every tick), so skip the attempt — the
                # scalar path is always exact, this only decides where
                # the work runs.  Deterministic: same stream, same skips.
                if left == 1:
                    del cooldown[cid]
                else:
                    cooldown[cid] = left - 1
                slow.extend(rows)
                continue
            cluster = storage.get(cid)
            cluster.advance_to(t)
            if cluster.n > 1:
                classified = self._classify(updates, rows, cluster, spec)
            else:
                # Singletons trivially re-qualify but follow their member
                # (a centroid write per update): scalar path.
                classified = None
            if classified is None:
                cooldown[cid] = self.cooldown_ticks
                slow.extend(rows)
                continue
            assignments, refreshes = classified
            first_refresh[rows[0]] = cluster
            commit_cid[rows[-1]] = cid
            plans[cid] = (
                cluster, rows, assignments, refreshes, cluster.version
            )

        if not plans:
            on_update = operator.on_update
            for update in updates:
                on_update(update)
            return True

        # Commit walk.  Every table row is recorded up front in arrival
        # order (records are keyed per entity and nothing reads the
        # tables mid-tick, so the final table state — and its insertion
        # order — matches the scalar loop's); the walk then visits only
        # the positions where cluster state changes: scalar rows, each
        # group's first row (its single grid refresh) and its last row
        # (the group commit), in batch-arrival order.  Scalar visits go
        # through ``ingest_clustered`` — their table half is already
        # done.  The pre-absorb hook keeps interleaved slow rows
        # scalar-ordered (see module docstring); rows it re-routes are
        # merged back into the walk through the ``_extras`` heap.
        slow.extend(first_refresh)
        slow.extend(commit_cid)
        slow.sort()
        events = slow
        operator.record_updates(updates)
        self._updates = updates
        self._operator = operator
        extras = self._extras
        del extras[:]
        grid_refresh = world.grid.refresh
        ingest_clustered = operator.ingest_clustered
        previous_hook = world.pre_absorb_hook
        world.pre_absorb_hook = self._flush_plan
        try:
            num_events = len(events)
            ei = 0
            while ei < num_events or extras:
                if extras and (ei >= num_events or extras[0] < events[ei]):
                    i = heappop(extras)
                else:
                    i = events[ei]
                    ei += 1
                    cluster = first_refresh.get(i)
                    if cluster is not None:
                        # The one grid refresh the scalar loop would not
                        # collapse to a no-op: post-advance drift may
                        # force a re-registration, exactly here.  Skipped
                        # if the hook already cancelled the plan.
                        if cluster.cid in plans:
                            grid_refresh(cluster)
                        continue
                    cid = commit_cid.get(i)
                    if cid is not None:
                        if cid in plans:
                            self._commit(operator, updates, t, cid)
                        continue
                self._pos = i
                ingest_clustered(updates[i])
        finally:
            world.pre_absorb_hook = previous_hook
            plans.clear()
            commit_cid.clear()
            del extras[:]
            self._updates = ()
            self._cols = None
            self._operator = None
        self._prune_views(storage)
        return True

    # -- slow-path interleaving --------------------------------------------

    def _flush_plan(self, cluster: Any) -> None:
        """Pre-absorb/evict hook: a slow-path row is about to mutate
        ``cluster``.  Flush its already-walked fast rows through the
        scalar path (their admission state is still untouched, so the
        verdicts are re-derived identically) and re-route the rest —
        the not-yet-reached rows join the walk via the extras heap, and
        the group's now-stale refresh/commit events turn into no-ops
        because the plan is gone."""
        plan = self._active.pop(cluster.cid, None)
        if plan is None:
            return
        rows = plan[1]
        pos = self._pos
        extras = self._extras
        pending = []
        for i in rows:
            if i < pos:
                pending.append(i)
            else:
                heappush(extras, i)
        if pending:
            self.batch_fallbacks += len(pending)
            ingest_clustered = self._operator.ingest_clustered
            updates = self._updates
            for i in pending:
                ingest_clustered(updates[i])

    # -- group classification ----------------------------------------------

    def _classify(
        self, updates: Sequence[Update], rows: List[int], cluster: Any,
        spec: Any
    ) -> Optional[Tuple[List[Tuple[Any, bool]], int]]:
        """Per-member ``(member, heartbeat)`` pairs plus the non-heartbeat
        count when the whole group is fast-eligible, else ``None`` (whole
        group scalar — a single failing member mutates state its group
        mates' verdicts depend on, so the verdicts are only valid
        together).

        The hot branch is the heartbeat: an update byte-identical to its
        member's snapshot row, whose admission verdict is the view's
        (lazily built) precomputed ``hb_ok`` flag — equality compares
        only, no float math.  Everything else (a moved or re-speeding
        member, a shed member reporting back) takes the full refresh
        checks.

        When no current view is cached (the cluster's version changed —
        typically a moving cluster, whose ``advance`` bumps it every
        tick) the group is classified straight off the live member
        fields instead: same verdicts, but no O(members) snapshot build
        wasted on a group that is about to fail.  A view is (re)built
        only from a pure-heartbeat success, the one outcome whose commit
        keeps the version — and therefore the snapshot — stable.
        """
        view = self._views.get(cluster.cid)
        if view is None or view.version != cluster.version:
            return self._classify_direct(updates, rows, cluster, spec)
        view_rows = view.rows
        members = view.members
        v_speeds = view.speeds
        v_rx = view.recon_x
        v_ry = view.recon_y
        v_cns = view.cns
        v_sheds = view.sheds
        v_hb = view.hb_ok
        keys = self._keys
        refreshes = 0
        cx = cluster.cx
        cy = cluster.cy
        avespeed = cluster.avespeed
        cluster_cn = cluster.cn_node
        require_dest = spec.require_same_destination
        slack = spec.eviction_slack
        max_d = spec.theta_d * slack
        max_d_sq = max_d * max_d
        max_ds = spec.theta_s * slack
        radius_sq = cluster.radius * cluster.radius
        assignments: List[Tuple[Any, bool]] = []
        seen: set = set()
        seen_add = seen.add
        cols = self._cols
        if cols is not None:
            u_xs, u_ys, u_speeds, u_cns = cols[0], cols[1], cols[2], cols[3]
        for i in rows:
            row = view_rows.get(keys[i])
            if row is None:
                return None
            seen_add(row)
            if cols is not None:
                x = u_xs[i]
                y = u_ys[i]
                speed = u_speeds[i]
                cn = u_cns[i]
            else:
                update = updates[i]
                loc = update.loc
                x = loc.x
                y = loc.y
                speed = update.speed
                cn = update.cn_node
            if (
                x == v_rx[row]
                and y == v_ry[row]
                and speed == v_speeds[row]
                and cn == v_cns[row]
                and not v_sheds[row]
            ):
                # Heartbeat: the update repeats the snapshot row, so its
                # admission verdict is the precomputed one (the update's
                # destination check coincides with the member's, folded
                # into the flag).
                if v_hb is None:
                    v_hb = view.ensure_hb_ok(cluster, spec)
                if not v_hb[row]:
                    return None
                assignments.append((members[row], True))
                continue
            if require_dest and cn != cluster_cn:
                return None
            dx = x - cx
            dy = y - cy
            d_sq = dx * dx + dy * dy
            if d_sq > max_d_sq:
                return None
            if abs(speed - avespeed) > max_ds:
                return None
            if speed != v_speeds[row]:
                # A speed change mutates the running speed sum between
                # sequential absorbs — order-dependent, scalar territory.
                return None
            if d_sq > radius_sq:
                # Radius growth re-registers the grid mid-group in the
                # scalar loop; keeping the radius pinned is what lets the
                # deferred refresh collapse losslessly.  (Heartbeats are
                # exempt: the scalar absorb early-returns before its
                # radius math.)
                return None
            assignments.append((members[row], False))
            refreshes += 1
        if len(seen) != len(rows):
            # A duplicate entity in the tick: verdicts are only valid for
            # one update per member (cheaper as one final check than a
            # membership test per row).
            return None
        return assignments, refreshes

    def _classify_direct(
        self, updates: Sequence[Update], rows: List[int], cluster: Any,
        spec: Any
    ) -> Optional[Tuple[List[Tuple[Any, bool]], int]]:
        """View-less classification against live member fields (same
        verdicts as the column path — the view is a verbatim snapshot of
        exactly these fields)."""
        objects = cluster.objects
        queries = cluster.queries
        keys = self._keys
        tx = cluster.trans_x
        ty = cluster.trans_y
        cx = cluster.cx
        cy = cluster.cy
        avespeed = cluster.avespeed
        cluster_cn = cluster.cn_node
        require_dest = spec.require_same_destination
        slack = spec.eviction_slack
        max_d = spec.theta_d * slack
        max_d_sq = max_d * max_d
        max_ds = spec.theta_s * slack
        radius_sq = cluster.radius * cluster.radius
        assignments: List[Tuple[Any, bool]] = []
        refreshes = 0
        seen: set = set()
        seen_add = seen.add
        cols = self._cols
        if cols is not None:
            u_xs, u_ys, u_speeds, u_cns = cols[0], cols[1], cols[2], cols[3]
        for i in rows:
            key = keys[i]
            member = (objects if key & 1 else queries).get(key >> 1)
            if member is None:
                return None
            seen_add(key)
            if cols is not None:
                x = u_xs[i]
                y = u_ys[i]
                speed = u_speeds[i]
                cn = u_cns[i]
            else:
                update = updates[i]
                loc = update.loc
                x = loc.x
                y = loc.y
                speed = update.speed
                cn = update.cn_node
            m_speed = member.speed
            rx = member.abs_x + (tx - member.tr_x)
            ry = member.abs_y + (ty - member.tr_y)
            if (
                x == rx
                and y == ry
                and speed == m_speed
                and cn == member.cn_node
                and not member.position_shed
            ):
                # Heartbeat: admission against the unchanged snapshot
                # values, radius exempt (the scalar absorb early-returns
                # before its radius math).
                dx = rx - cx
                dy = ry - cy
                if require_dest and cn != cluster_cn:
                    return None
                if dx * dx + dy * dy > max_d_sq:
                    return None
                if abs(speed - avespeed) > max_ds:
                    return None
                assignments.append((member, True))
                continue
            if require_dest and cn != cluster_cn:
                return None
            dx = x - cx
            dy = y - cy
            d_sq = dx * dx + dy * dy
            if d_sq > max_d_sq:
                return None
            if abs(speed - avespeed) > max_ds:
                return None
            if speed != m_speed:
                return None
            if d_sq > radius_sq:
                return None
            assignments.append((member, False))
            refreshes += 1
        if len(seen) != len(rows):
            # Duplicate entity in the tick — same bail-out as the column
            # path's final dedupe check.
            return None
        if not refreshes:
            # Pure heartbeats: the commit will leave the version — and so
            # this snapshot — intact, so cache a view and classify the
            # next tick through the cheaper column compares.
            self._views[cluster.cid] = IngestView(cluster, spec)
        return assignments, refreshes

    # -- group commit -------------------------------------------------------

    def _commit(
        self, operator: Any, updates: Sequence[Update], t: float, cid: int
    ) -> None:
        # Guarded by the caller (``cid in plans``), so the plan is active.
        cluster, rows, assignments, refreshed, version0 = (
            self._active.pop(cid)
        )
        if cluster.version != version0:
            # Defensive backstop: the hook should have cancelled the plan
            # for any foreign mutation.  Re-derive scalar verdicts.
            self.batch_fallbacks += len(rows)
            ingest_clustered = operator.ingest_clustered
            for i in rows:
                ingest_clustered(updates[i])
            return
        if not refreshed:
            # Pure heartbeats (the parked steady state): last-seen stamps
            # only, nothing else moves.
            for member, _ in assignments:
                member.last_t = t
        else:
            tx = cluster.trans_x
            ty = cluster.trans_y
            cols = self._cols
            if cols is not None:
                u_xs, u_ys, _, u_cns, u_cn_xs, u_cn_ys = cols
            for i, (member, heartbeat) in zip(rows, assignments):
                if heartbeat:
                    member.last_t = t
                    continue
                if cols is not None:
                    x = u_xs[i]
                    y = u_ys[i]
                    cn = u_cns[i]
                else:
                    update = updates[i]
                    loc = update.loc
                    x = loc.x
                    y = loc.y
                    cn = update.cn_node
                if member.position_shed:
                    member.position_shed = False
                    cluster.shed_count -= 1
                member.abs_x = x
                member.abs_y = y
                member.tr_x = tx
                member.tr_y = ty
                member.last_t = t
                if member.cn_node != cn:
                    member.cn_node = cn
                    if cols is not None:
                        member.cn_x = u_cn_xs[i]
                        member.cn_y = u_cn_ys[i]
                    else:
                        member.cn_x = update.cn_loc.x
                        member.cn_y = update.cn_loc.y
            # One aggregated bump in place of ``refreshed`` sequential
            # ones: same final counter values, same cache invalidation.
            cluster.version += refreshed
            cluster.struct_version += refreshed
        group = len(rows)
        self.fast_path_batched += group
        self.bulk_absorbs += refreshed
        self.grid_refresh_deduped += group - 1
        clusterer = operator.clusterer
        clusterer.processed += group
        clusterer.fast_path_hits += group
        if not operator._shed_is_noop:
            policy = operator.config.shedding
            cx = cluster.cx
            cy = cluster.cy
            hypot = math.hypot
            for i in rows:
                update = updates[i]
                loc = update.loc
                policy.apply(
                    cluster, update, hypot(loc.x - cx, loc.y - cy)
                )
