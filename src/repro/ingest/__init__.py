"""Batched columnar ingest: the vectorised cluster-maintenance fast path.

The ingest stage counterpart of :mod:`repro.kernels`: one
:class:`UpdateBatch` per evaluation tick, plus pluggable ingest kernels
that bulk-process the steady-state fast path per cluster group instead of
per update (see :mod:`repro.ingest.base` for the exactness contract):

* ``scalar`` — the per-update ``on_update`` loop, kept as the semantics
  oracle and benchmark baseline;
* ``python`` — stdlib-only batched grouping/classification/commit;
* ``numpy`` — the same driver with array-at-a-time group admission
  tests, available with the ``perf`` extra.

Backend names are shared with the join-kernel registry
(``ScubaConfig.kernel_backend`` selects both); ``auto`` prefers numpy and
degrades to python.  Unlike join-kernel backends — stateless and shared —
ingest kernels carry per-operator counters and view caches, so
:func:`make_ingest_kernel` returns a fresh instance per call.
"""

from __future__ import annotations

from ..kernels import BACKEND_CHOICES, numpy_available
from .base import (
    IngestKernel,
    IngestView,
    PythonBatchIngestKernel,
    ScalarIngestKernel,
)
from .batch import UpdateBatch

__all__ = [
    "INGEST_BACKEND_CHOICES",
    "IngestKernel",
    "IngestView",
    "PythonBatchIngestKernel",
    "ScalarIngestKernel",
    "UpdateBatch",
    "make_ingest_kernel",
]

#: Ingest kernel names accepted by configs and the CLI — the same
#: vocabulary as the join-kernel registry.
INGEST_BACKEND_CHOICES = BACKEND_CHOICES


def make_ingest_kernel(name: str = "auto") -> IngestKernel:
    """A fresh ingest kernel for ``name``.

    ``auto`` prefers numpy and silently degrades to the pure-Python
    batched kernel; asking for ``numpy`` explicitly raises when it is
    missing, mirroring :func:`repro.kernels.resolve_backend`.
    """
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    if name == "python":
        return PythonBatchIngestKernel()
    if name == "scalar":
        return ScalarIngestKernel()
    if name == "numpy":
        from .numpy_kernel import NumpyIngestKernel

        return NumpyIngestKernel()
    raise ValueError(
        f"unknown ingest backend {name!r} (choose one of {INGEST_BACKEND_CHOICES})"
    )
