"""Visualisation: SVG rendering of cities, clusters, and answers."""

from .svg import PALETTE, SvgScene

__all__ = ["PALETTE", "SvgScene"]
