"""SVG rendering of cities, cluster state, and query answers.

The paper explains SCUBA with pictures — road networks (Fig. 1), moving
clusters with centroids and velocity vectors (Fig. 2), nuclei (Fig. 8),
the worked join example (Fig. 7).  This module draws the live equivalents
from actual system state, so an example script (or a failing test being
debugged) can dump an SVG and *look* at what the clusters are doing.

Everything is standard library: SVG is assembled as text with proper XML
escaping, and the output parses with ``xml.etree`` (asserted by tests).

Typical use::

    from repro.viz import SvgScene

    scene = SvgScene(network.bounds)
    scene.draw_network(network)
    scene.draw_world(scuba.world)       # clusters, nuclei, members
    scene.save("state.svg")
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, List, Optional, Union
from xml.sax.saxutils import quoteattr

from ..clustering import ClusterWorld, MovingCluster
from ..generator import EntityKind
from ..geometry import Rect
from ..network import RoadClass, RoadNetwork

__all__ = ["SvgScene", "PALETTE"]

#: Default colours, chosen to echo the paper's figures: muted roads, blue
#: objects, red queries, translucent cluster discs.
PALETTE = {
    "background": "#fbfaf7",
    "road_local": "#d8d4cc",
    "road_arterial": "#b9b2a5",
    "road_highway": "#8f8674",
    "node": "#a09a8c",
    "cluster_fill": "#7fa8d955",
    "cluster_stroke": "#4a78b0",
    "nucleus_fill": "#f2c14e66",
    "nucleus_stroke": "#c79a2d",
    "object": "#2a5ca8",
    "query": "#b03a48",
    "query_window": "#b03a4833",
    "velocity": "#4a78b0",
    "match": "#4caf50",
}

_ROAD_WIDTHS = {
    RoadClass.LOCAL: 4.0,
    RoadClass.ARTERIAL: 8.0,
    RoadClass.HIGHWAY: 14.0,
}


class SvgScene:
    """An SVG canvas in *world coordinates* (the bounds' coordinate system).

    The y-axis is flipped so that larger y draws upward, matching the
    paper's plots.  Elements accumulate in draw order; :meth:`to_svg`
    assembles the document and :meth:`save` writes it.
    """

    def __init__(
        self,
        bounds: Rect,
        pixel_width: int = 800,
        palette: Optional[dict] = None,
    ) -> None:
        if pixel_width < 1:
            raise ValueError(f"pixel_width must be positive, got {pixel_width}")
        self.bounds = bounds
        self.pixel_width = pixel_width
        self.palette = dict(PALETTE)
        if palette:
            self.palette.update(palette)
        self._elements: List[str] = []

    # -- low-level drawing -------------------------------------------------------

    def _y(self, y: float) -> float:
        """Flip the y-axis: world up = screen up."""
        return self.bounds.max_y + self.bounds.min_y - y

    def add_line(
        self, x1: float, y1: float, x2: float, y2: float, color: str, width: float
    ) -> None:
        """A straight stroke in world coordinates."""
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{self._y(y1):.1f}" '
            f'x2="{x2:.1f}" y2="{self._y(y2):.1f}" '
            f'stroke={quoteattr(color)} stroke-width="{width:.1f}" '
            'stroke-linecap="round"/>'
        )

    def add_circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "none",
        stroke: str = "none",
        stroke_width: float = 1.0,
    ) -> None:
        """A circle in world coordinates (radius in world units)."""
        self._elements.append(
            f'<circle cx="{cx:.1f}" cy="{self._y(cy):.1f}" r="{max(r, 0.0):.1f}" '
            f"fill={quoteattr(fill)} stroke={quoteattr(stroke)} "
            f'stroke-width="{stroke_width:.1f}"/>'
        )

    def add_rect(
        self,
        rect: Rect,
        fill: str = "none",
        stroke: str = "none",
        stroke_width: float = 1.0,
    ) -> None:
        """An axis-aligned rectangle in world coordinates."""
        self._elements.append(
            f'<rect x="{rect.min_x:.1f}" y="{self._y(rect.max_y):.1f}" '
            f'width="{rect.width:.1f}" height="{rect.height:.1f}" '
            f"fill={quoteattr(fill)} stroke={quoteattr(stroke)} "
            f'stroke-width="{stroke_width:.1f}"/>'
        )

    def add_text(self, x: float, y: float, text: str, size: float = 80.0) -> None:
        """A text label in world coordinates."""
        from xml.sax.saxutils import escape

        self._elements.append(
            f'<text x="{x:.1f}" y="{self._y(y):.1f}" '
            f'font-size="{size:.0f}" font-family="sans-serif" '
            f'fill="#555">{escape(text)}</text>'
        )

    # -- high-level layers ----------------------------------------------------------

    def draw_network(self, network: RoadNetwork, draw_nodes: bool = True) -> None:
        """Roads (width/colour by class) and connection nodes."""
        ordered = sorted(
            network.edges(), key=lambda e: _ROAD_WIDTHS[e.road_class]
        )
        for edge in ordered:
            a = network.node_location(edge.u)
            b = network.node_location(edge.v)
            key = f"road_{edge.road_class.value}"
            self.add_line(a.x, a.y, b.x, b.y, self.palette[key],
                          _ROAD_WIDTHS[edge.road_class])
        if draw_nodes:
            for node in network.nodes():
                self.add_circle(
                    node.location.x, node.location.y, 12.0, fill=self.palette["node"]
                )

    def draw_cluster(self, cluster: MovingCluster, draw_members: bool = True) -> None:
        """One moving cluster: disc, nucleus, velocity vector, members."""
        p = self.palette
        self.add_circle(
            cluster.cx,
            cluster.cy,
            cluster.radius,
            fill=p["cluster_fill"],
            stroke=p["cluster_stroke"],
            stroke_width=3.0,
        )
        nucleus_r = min(cluster.nucleus_radius, cluster.radius)
        if cluster.shed_count and nucleus_r > 0:
            self.add_circle(
                cluster.cx,
                cluster.cy,
                nucleus_r,
                fill=p["nucleus_fill"],
                stroke=p["nucleus_stroke"],
                stroke_width=2.0,
            )
        velocity = cluster.velocity()
        speed = math.hypot(velocity.x, velocity.y)
        if speed > 0:
            scale = max(cluster.radius, 60.0) / speed
            self.add_line(
                cluster.cx,
                cluster.cy,
                cluster.cx + velocity.x * scale,
                cluster.cy + velocity.y * scale,
                p["velocity"],
                5.0,
            )
        if draw_members:
            for member in cluster.members():
                loc = cluster.member_location(member)
                if loc is None:
                    continue
                color = (
                    p["object"] if member.kind is EntityKind.OBJECT else p["query"]
                )
                self.add_circle(loc.x, loc.y, 15.0, fill=color)

    def draw_world(self, world: ClusterWorld, draw_members: bool = True) -> None:
        """Every live cluster in the world."""
        for cluster in world.storage.clusters():
            self.draw_cluster(cluster, draw_members=draw_members)

    def draw_query_window(self, region: Rect) -> None:
        """A range-query window."""
        self.add_rect(
            region,
            fill=self.palette["query_window"],
            stroke=self.palette["query"],
            stroke_width=2.0,
        )

    def draw_matches(self, world: ClusterWorld, matches: Iterable) -> None:
        """Highlight matched objects (green halo) from QueryMatch tuples."""
        for match in matches:
            cid = world.home.cluster_of(match.oid, EntityKind.OBJECT)
            if cid is None or cid not in world.storage:
                continue
            cluster = world.storage.get(cid)
            member = cluster.get_member(match.oid, EntityKind.OBJECT)
            if member is None:
                continue
            loc = cluster.member_location(member)
            if loc is None:
                continue
            self.add_circle(
                loc.x, loc.y, 30.0, stroke=self.palette["match"], stroke_width=4.0
            )

    # -- output ----------------------------------------------------------------------

    def to_svg(self) -> str:
        """The assembled SVG document."""
        b = self.bounds
        height = round(self.pixel_width * b.height / b.width) if b.width else 1
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.pixel_width}" height="{height}" '
            f'viewBox="{b.min_x:.1f} {b.min_y:.1f} {b.width:.1f} {b.height:.1f}">',
            f'<rect x="{b.min_x:.1f}" y="{b.min_y:.1f}" width="{b.width:.1f}" '
            f'height="{b.height:.1f}" fill={quoteattr(self.palette["background"])}/>',
            *self._elements,
            "</svg>",
        ]
        return "\n".join(parts)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the SVG to ``path``; returns the path."""
        target = Path(path)
        target.write_text(self.to_svg(), encoding="utf-8")
        return target

    @property
    def element_count(self) -> int:
        return len(self._elements)
