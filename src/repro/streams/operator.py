"""The continuous-operator contract.

SCUBA "has been implemented inside our stream processing system CAPE" (§6.1)
as a continuous operator: tuples flow in at every time unit, and every Δ
time units the operator evaluates all registered queries and emits answers.
:class:`ContinuousJoinOperator` captures exactly that contract so the engine
can drive SCUBA and the regular grid baseline interchangeably — and so a
user can plug in their own algorithm and reuse the whole harness.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List

from ..generator import EntityKind, Update
from .results import QueryMatch

__all__ = ["ContinuousJoinOperator"]


class ContinuousJoinOperator(abc.ABC):
    """A continuous spatio-temporal join over object and query streams."""

    @abc.abstractmethod
    def on_update(self, update: Update) -> None:
        """Ingest one location/query update (the pre-join phase).

        Called for every tuple as it arrives, *between* evaluations.  All
        per-tuple state maintenance (hashing into a grid, incremental
        clustering, ...) happens here.
        """

    @abc.abstractmethod
    def evaluate(self, now: float) -> List[QueryMatch]:
        """Run one Δ-triggered evaluation and return the current answers.

        Implementations must also perform their post-join maintenance here
        (advancing cluster positions, dissolving expired state, ...) and
        record phase timings in :attr:`last_join_seconds` /
        :attr:`last_maintenance_seconds`.
        """

    #: Seconds the most recent :meth:`evaluate` spent joining.
    last_join_seconds: float = 0.0
    #: Seconds the most recent :meth:`evaluate` spent on post-join upkeep.
    last_maintenance_seconds: float = 0.0

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Forget one entity entirely, as if it had never reported.

        Sharded execution replicates entities into neighbouring shards'
        halo regions; when an entity's reported position leaves a shard's
        halo, the shard must drop its (now unmaintained) copy or it would
        keep producing matches from stale state.  Unknown entities are a
        no-op.  Operators that cannot remove per-entity state may leave
        this unimplemented — they then cannot serve as shard operators.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support retract()"
        )

    def join_counters(self) -> Dict[str, Any]:
        """Implementation-detail counters to fold into run statistics.

        Raw cumulative counts (and identifying strings such as the kernel
        backend name) only — rates are derived at reporting time so that
        sharded runs can sum counters across shards correctly.
        """
        return {}

    def state_roots(self) -> List[Any]:
        """Objects that constitute the operator's in-memory state.

        The memory experiments deep-size everything reachable from these
        roots.  The default is the operator itself, which is correct but
        implementations may narrow it to exclude configuration.
        """
        return [self]

    def reset(self) -> None:
        """Discard all accumulated state (optional operation)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support reset()"
        )
