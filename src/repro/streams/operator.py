"""The continuous-operator contract.

SCUBA "has been implemented inside our stream processing system CAPE" (§6.1)
as a continuous operator: tuples flow in at every time unit, and every Δ
time units the operator evaluates all registered queries and emits answers.
:class:`ContinuousJoinOperator` captures exactly that contract so the engine
can drive SCUBA and the regular grid baseline interchangeably — and so a
user can plug in their own algorithm and reuse the whole harness.

The Δ-triggered evaluation is decomposed into the paper's phases —
``join_phase`` (the joining sweep), ``shed_phase`` (the load-shedding
control boundary) and ``post_join_phase`` (cluster upkeep) — so the
staged pipeline (:mod:`repro.pipeline`) can time and hook each phase
individually.  :class:`StagedJoinOperator` is the base for operators
implementing the phases; its :meth:`~StagedJoinOperator.evaluate` is a
compatibility facade running all three in order, so legacy callers (and
shard workers, which evaluate in one message round-trip) see the original
single-call contract.  Operators that only implement ``evaluate`` keep
working: the default ``join_phase`` falls back to it.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Sequence

from ..generator import EntityKind, Update
from .metrics import Timer
from .results import QueryMatch

__all__ = ["ContinuousJoinOperator", "StagedJoinOperator"]


class ContinuousJoinOperator(abc.ABC):
    """A continuous spatio-temporal join over object and query streams."""

    @abc.abstractmethod
    def on_update(self, update: Update) -> None:
        """Ingest one location/query update (the pre-join phase).

        Called for every tuple as it arrives, *between* evaluations.  All
        per-tuple state maintenance (hashing into a grid, incremental
        clustering, ...) happens here.
        """

    def ingest_batch(self, updates: Sequence[Update]) -> None:
        """Ingest one tick's updates, in arrival order.

        The pipeline and the shard executors deliver updates through this
        entry point so operators with a batched ingest path (see
        :mod:`repro.ingest`) can process a tick at a time.  The default is
        the per-update loop, semantically identical for every operator.
        """
        for update in updates:
            self.on_update(update)

    @abc.abstractmethod
    def evaluate(self, now: float) -> List[QueryMatch]:
        """Run one Δ-triggered evaluation and return the current answers.

        Implementations must also perform their post-join maintenance here
        (advancing cluster positions, dissolving expired state, ...) and
        record phase timings in :attr:`last_join_seconds` /
        :attr:`last_maintenance_seconds`.
        """

    #: Seconds the most recent :meth:`evaluate` spent joining.
    last_join_seconds: float = 0.0
    #: Seconds the most recent :meth:`evaluate` spent on post-join upkeep.
    last_maintenance_seconds: float = 0.0

    # -- staged phase API ----------------------------------------------------
    #
    # The pipeline drives these instead of evaluate() when the operator
    # overrides join_phase (see repro.pipeline.plans.OperatorPlan).  The
    # defaults keep evaluate()-only operators working: the whole legacy
    # evaluation runs inside the join stage, and the other phases no-op.

    def join_phase(self, now: float) -> List[QueryMatch]:
        """The Δ-triggered joining phase, returning the current answers.

        Legacy fallback: operators that only implement :meth:`evaluate`
        run it here in full (post-join maintenance included), so staged
        execution stays correct even without a phase decomposition — only
        the per-stage timing attribution is coarser.
        """
        return self.evaluate(now)

    def shed_phase(self, now: float) -> None:
        """The load-shedding control boundary between join and upkeep.

        Runs once per Δ, after the answers are produced: adaptive
        controllers inspect resource pressure here and swap the shedding
        policy applied to subsequent ingests.  Default: nothing to shed.
        """

    def post_join_phase(self, now: float) -> None:
        """Post-join maintenance (cluster dissolution/advance, pruning).

        Default: nothing — evaluate()-only operators already maintain
        their state inside :meth:`evaluate`.
        """

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Forget one entity entirely, as if it had never reported.

        Sharded execution replicates entities into neighbouring shards'
        halo regions; when an entity's reported position leaves a shard's
        halo, the shard must drop its (now unmaintained) copy or it would
        keep producing matches from stale state.  Unknown entities are a
        no-op.  Operators that cannot remove per-entity state may leave
        this unimplemented — they then cannot serve as shard operators.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support retract()"
        )

    def join_counters(self) -> Dict[str, Any]:
        """Implementation-detail counters to fold into run statistics.

        Raw cumulative counts (and identifying strings such as the kernel
        backend name) only — rates are derived at reporting time so that
        sharded runs can sum counters across shards correctly.
        """
        return {}

    def state_roots(self) -> List[Any]:
        """Objects that constitute the operator's in-memory state.

        The memory experiments deep-size everything reachable from these
        roots.  The default is the operator itself, which is correct but
        implementations may narrow it to exclude configuration.
        """
        return [self]

    def reset(self) -> None:
        """Discard all accumulated state (optional operation)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support reset()"
        )


class StagedJoinOperator(ContinuousJoinOperator):
    """Base for operators implementing the staged phase decomposition.

    Subclasses implement :meth:`join_phase` (and optionally
    :meth:`shed_phase` / :meth:`post_join_phase`); :meth:`evaluate`
    becomes a facade that runs the phases in pipeline order and records
    the legacy two-way timing split (join vs maintenance), so direct
    callers, shard workers and old tests observe the original contract.
    """

    @abc.abstractmethod
    def join_phase(self, now: float) -> List[QueryMatch]:
        """Produce the interval's answers (no maintenance side effects)."""

    def evaluate(self, now: float) -> List[QueryMatch]:
        """Compatibility facade: join → shed → post-join, timed."""
        join_timer = Timer()
        with join_timer:
            matches = self.join_phase(now)
        self.last_join_seconds = join_timer.seconds
        maintenance_timer = Timer()
        with maintenance_timer:
            self.shed_phase(now)
            self.post_join_phase(now)
        self.last_maintenance_seconds = maintenance_timer.seconds
        return matches
