"""Result sinks.

A sink receives the matches produced at each evaluation.  Experiments use
:class:`CollectingSink` when they need the answers themselves (accuracy
measurement) and :class:`CountingSink` when only volumes matter (timing
benchmarks, where retaining millions of matches would distort memory).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .results import QueryMatch

__all__ = ["ResultSink", "CollectingSink", "CountingSink"]


class ResultSink:
    """Base sink: ignores everything (a /dev/null for answers)."""

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        """Receive the matches of the evaluation that fired at time ``t``."""


class CollectingSink(ResultSink):
    """Retains matches grouped by evaluation time, optionally bounded.

    ``max_retained`` caps the total number of retained matches: when a new
    interval would push the sink past the cap, whole *oldest* intervals are
    evicted first (answers are per-interval sets — truncating inside an
    interval would leave a misleading partial answer).  ``dropped_matches``
    counts what was evicted, so long benchmark runs can keep recent answers
    for inspection without growing memory without bound.
    """

    def __init__(self, max_retained: Optional[int] = None) -> None:
        if max_retained is not None and max_retained < 0:
            raise ValueError(
                f"max_retained must be non-negative, got {max_retained}"
            )
        self.by_interval: Dict[float, List[QueryMatch]] = {}
        self.max_retained = max_retained
        self.retained_count = 0
        self.dropped_matches = 0

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        self.by_interval.setdefault(t, []).extend(matches)
        self.retained_count += len(matches)
        if self.max_retained is None:
            return
        while self.retained_count > self.max_retained and len(self.by_interval) > 1:
            oldest = min(self.by_interval)
            evicted = self.by_interval.pop(oldest)
            self.retained_count -= len(evicted)
            self.dropped_matches += len(evicted)
        # A single interval larger than the cap is kept whole — the cap
        # bounds growth across intervals, not the size of one answer.

    @property
    def all_matches(self) -> List[QueryMatch]:
        """Every match of the run, in evaluation order."""
        out: List[QueryMatch] = []
        for t in sorted(self.by_interval):
            out.extend(self.by_interval[t])
        return out

    def matches_at(self, t: float) -> List[QueryMatch]:
        return self.by_interval.get(t, [])

    def clear(self) -> None:
        self.by_interval.clear()
        self.retained_count = 0
        self.dropped_matches = 0


class CountingSink(ResultSink):
    """Counts matches without retaining them."""

    def __init__(self) -> None:
        self.total = 0
        self.per_interval: List[int] = []

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        self.total += len(matches)
        self.per_interval.append(len(matches))
