"""Result sinks.

A sink receives the matches produced at each evaluation.  Experiments use
:class:`CollectingSink` when they need the answers themselves (accuracy
measurement) and :class:`CountingSink` when only volumes matter (timing
benchmarks, where retaining millions of matches would distort memory).
"""

from __future__ import annotations

from typing import Dict, List

from .results import QueryMatch

__all__ = ["ResultSink", "CollectingSink", "CountingSink"]


class ResultSink:
    """Base sink: ignores everything (a /dev/null for answers)."""

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        """Receive the matches of the evaluation that fired at time ``t``."""


class CollectingSink(ResultSink):
    """Retains every match, grouped by evaluation time."""

    def __init__(self) -> None:
        self.by_interval: Dict[float, List[QueryMatch]] = {}

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        self.by_interval.setdefault(t, []).extend(matches)

    @property
    def all_matches(self) -> List[QueryMatch]:
        """Every match of the run, in evaluation order."""
        out: List[QueryMatch] = []
        for t in sorted(self.by_interval):
            out.extend(self.by_interval[t])
        return out

    def matches_at(self, t: float) -> List[QueryMatch]:
        return self.by_interval.get(t, [])

    def clear(self) -> None:
        self.by_interval.clear()


class CountingSink(ResultSink):
    """Counts matches without retaining them."""

    def __init__(self) -> None:
        self.total = 0
        self.per_interval: List[int] = []

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        self.total += len(matches)
        self.per_interval.append(len(matches))
