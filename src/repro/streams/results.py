"""Query answers.

A continuous range query's answer at evaluation time ``t`` is the set of
objects inside its window.  The engine materialises each (query, object)
pair as a :class:`QueryMatch`; downstream accuracy measurement compares
*sets* of these pairs, so the class is hashable and order-insensitive
containers of it compare cleanly.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Set, Tuple

__all__ = ["QueryMatch", "match_set"]


class QueryMatch(NamedTuple):
    """Object ``oid`` satisfies query ``qid`` at evaluation time ``t``."""

    qid: int
    oid: int
    t: float

    @property
    def pair(self) -> Tuple[int, int]:
        """The time-independent (qid, oid) identity of the match."""
        return (self.qid, self.oid)


def match_set(matches: Iterable[QueryMatch]) -> Set[Tuple[int, int]]:
    """The set of (qid, oid) pairs in ``matches``, for accuracy comparison."""
    return {m.pair for m in matches}
