"""Query answers.

A continuous range query's answer at evaluation time ``t`` is the set of
objects inside its window.  The engine materialises each (query, object)
pair as a :class:`QueryMatch`; downstream accuracy measurement compares
*sets* of these pairs, so the class is hashable and order-insensitive
containers of it compare cleanly.
"""

from __future__ import annotations

from itertools import repeat
from typing import Iterable, List, NamedTuple, Set, Tuple

__all__ = ["QueryMatch", "MatchBlock", "MatchList", "match_set"]


class QueryMatch(NamedTuple):
    """Object ``oid`` satisfies query ``qid`` at evaluation time ``t``."""

    qid: int
    oid: int
    t: float

    @property
    def pair(self) -> Tuple[int, int]:
        """The time-independent (qid, oid) identity of the match."""
        return (self.qid, self.oid)


def _as_list(column) -> list:
    """Column as a list of built-in scalars (ndarray columns ``tolist``)."""
    tolist = getattr(column, "tolist", None)
    return tolist() if tolist is not None else list(column)


class MatchBlock:
    """A columnar run of matches sharing one evaluation time.

    Holds parallel qid/oid columns (lists or ndarrays) instead of one
    tuple per match; rows materialise as :class:`QueryMatch` — with
    built-in ``int`` ids, never ``np.int64`` — only when iterated.  The
    macro-batched join emits these so producing an answer costs two
    column gathers rather than len(answer) tuple constructions.
    """

    __slots__ = ("qids", "oids", "t")

    def __init__(self, qids, oids, t: float) -> None:
        self.qids = qids
        self.oids = oids
        self.t = t

    def __len__(self) -> int:
        return len(self.qids)

    def __iter__(self):
        return map(
            QueryMatch._make,
            zip(_as_list(self.qids), _as_list(self.oids), repeat(self.t)),
        )

    def __reduce__(self):
        # Materialise columns for transport: shard answers cross process
        # boundaries, and built-in lists pickle without requiring numpy
        # on the receiving side.
        return (MatchBlock, (_as_list(self.qids), _as_list(self.oids), self.t))


def _rebuild_matchlist(raw: list, extra: int) -> "MatchList":
    out = MatchList()
    list.extend(out, raw)
    out._extra = extra
    return out


class MatchList(list):
    """An answer list whose producer may append whole columnar runs.

    Scalar code paths use the inherited (C-speed) ``append``/``extend``
    with :class:`QueryMatch` rows; the batched join calls
    :meth:`append_block` to splice in a :class:`MatchBlock` run at its
    canonical position.  ``len()`` and iteration present the flattened
    match sequence, so counting sinks stay O(1) per interval and
    collecting sinks materialise rows only when they retain them.
    Positional indexing/slicing exposes the raw interleaving — consumers
    wanting rows by index should iterate (or ``materialize()``) first.
    """

    __slots__ = ("_extra",)

    def __init__(self) -> None:
        super().__init__()
        #: Flattened length minus the raw entry count (Σ len(block) - 1).
        self._extra = 0

    def append_block(self, qids, oids, t: float) -> None:
        n = len(qids)
        if n:
            self._extra += n - 1
            list.append(self, MatchBlock(qids, oids, t))

    def __len__(self) -> int:
        return list.__len__(self) + self._extra

    def __iter__(self):
        for row in list.__iter__(self):
            if type(row) is MatchBlock:
                yield from row
            else:
                yield row

    def materialize(self) -> List[QueryMatch]:
        """The flattened answer as a plain list of :class:`QueryMatch`."""
        return [*self]

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple)):
            return [*self] == list(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    __hash__ = None

    def __reduce__(self):
        return (_rebuild_matchlist, (list(list.__iter__(self)), self._extra))


def match_set(matches: Iterable[QueryMatch]) -> Set[Tuple[int, int]]:
    """The set of (qid, oid) pairs in ``matches``, for accuracy comparison."""
    return {m.pair for m in matches}
