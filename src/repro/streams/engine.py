"""The miniature stream engine.

This module stands in for CAPE, the stream processor the paper implemented
SCUBA inside (§6.1).  The engine owns the clock: it advances the workload
generator one time unit at a time, pushes the emitted tuples into the
operator (the *pre-join maintenance* phase runs per tuple), and every Δ time
units triggers the operator's evaluation — exactly the paper's execution
model where "queries are evaluated periodically (every Δ time units)".

All three phase timings are captured per interval in
:class:`~repro.streams.metrics.IntervalStats` so experiments can report the
same cost breakdown as the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..generator import NetworkBasedGenerator
from .metrics import IntervalStats, RunStats, Timer
from .operator import ContinuousJoinOperator
from .sink import ResultSink

__all__ = ["EngineConfig", "StreamEngine"]


@dataclass
class EngineConfig:
    """Clocking parameters of the engine.

    ``delta`` is the paper's Δ — the period of query evaluation — and
    defaults to the paper's setting of 2 time units.  ``tick`` is the
    granularity at which entities move and report (1 time unit in the
    paper's setup).
    """

    delta: float = 2.0
    tick: float = 1.0

    def __post_init__(self) -> None:
        if self.tick <= 0 or self.delta <= 0:
            raise ValueError("tick and delta must be positive")
        ratio = self.delta / self.tick
        # Relative tolerance: the absolute rounding error of the division
        # grows with the ratio's magnitude, so a fixed 1e-9 cutoff would
        # spuriously reject large-but-whole ratios such as 1e6 / 0.1 ticks
        # (= 9999999.999999998, off by ~1.9e-9).
        if abs(ratio - round(ratio)) > 1e-9 * max(1.0, abs(ratio)):
            raise ValueError(
                f"delta ({self.delta}) must be a whole number of ticks "
                f"({self.tick})"
            )

    @property
    def ticks_per_interval(self) -> int:
        return round(self.delta / self.tick)


class StreamEngine:
    """Drives generator → operator → sink for a configured number of intervals."""

    def __init__(
        self,
        generator: NetworkBasedGenerator,
        operator: ContinuousJoinOperator,
        sink: Optional[ResultSink] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.generator = generator
        self.operator = operator
        self.sink = sink if sink is not None else ResultSink()
        self.config = config if config is not None else EngineConfig()
        self.stats = RunStats()

    def run_interval(self) -> IntervalStats:
        """Advance one full Δ interval: ingest ticks, then evaluate."""
        generate_timer = Timer()
        ingest_timer = Timer()
        tuple_count = 0
        for _ in range(self.config.ticks_per_interval):
            with generate_timer:
                updates = self.generator.tick(self.config.tick)
            tuple_count += len(updates)
            with ingest_timer:
                for update in updates:
                    self.operator.on_update(update)
        now = self.generator.time
        matches = self.operator.evaluate(now)
        self.sink.accept(matches, now)
        stats = IntervalStats(
            t=now,
            generate_seconds=generate_timer.seconds,
            ingest_seconds=ingest_timer.seconds,
            join_seconds=self.operator.last_join_seconds,
            maintenance_seconds=self.operator.last_maintenance_seconds,
            result_count=len(matches),
            tuple_count=tuple_count,
        )
        self.stats.add(stats)
        self.stats.record_counters(self.operator.join_counters())
        return stats

    def run(self, intervals: int) -> RunStats:
        """Run ``intervals`` consecutive Δ intervals and return the stats."""
        if intervals < 0:
            raise ValueError(f"intervals must be non-negative, got {intervals}")
        for _ in range(intervals):
            self.run_interval()
        return self.stats
