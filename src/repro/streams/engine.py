"""The miniature stream engine.

This module stands in for CAPE, the stream processor the paper implemented
SCUBA inside (§6.1).  The engine owns the clock: it advances the workload
generator one time unit at a time, pushes the emitted tuples into the
operator (the *pre-join maintenance* phase runs per tuple), and every Δ time
units triggers the operator's evaluation — exactly the paper's execution
model where "queries are evaluated periodically (every Δ time units)".

Since the staged-pipeline refactor, :class:`StreamEngine` is a thin driver
over :class:`repro.pipeline.EvaluationPipeline` with an
:class:`~repro.pipeline.plan.OperatorPlan`: the interval loop, per-stage
timing, :class:`~repro.streams.metrics.IntervalStats` accounting and sink
delivery live in :mod:`repro.pipeline`, shared verbatim with the sharded
engine.  Pass ``hooks=[...]`` to observe or steer individual stage
boundaries (see :class:`repro.pipeline.PipelineHook`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Iterable, Optional

from ..generator import NetworkBasedGenerator
from .metrics import IntervalStats, RunStats
from .operator import ContinuousJoinOperator
from .sink import ResultSink

__all__ = ["EngineConfig", "StreamEngine"]


@dataclass
class EngineConfig:
    """Clocking parameters of the engine.

    ``delta`` is the paper's Δ — the period of query evaluation — and
    defaults to the paper's setting of 2 time units.  ``tick`` is the
    granularity at which entities move and report (1 time unit in the
    paper's setup).
    """

    delta: float = 2.0
    tick: float = 1.0

    def __post_init__(self) -> None:
        if self.tick <= 0 or self.delta <= 0:
            raise ValueError("tick and delta must be positive")
        ratio = self.delta / self.tick
        # Relative tolerance: the absolute rounding error of the division
        # grows with the ratio's magnitude, so a fixed 1e-9 cutoff would
        # spuriously reject large-but-whole ratios such as 1e6 / 0.1 ticks
        # (= 9999999.999999998, off by ~1.9e-9).
        if abs(ratio - round(ratio)) > 1e-9 * max(1.0, abs(ratio)):
            raise ValueError(
                f"delta ({self.delta}) must be a whole number of ticks "
                f"({self.tick})"
            )

    @property
    def ticks_per_interval(self) -> int:
        return round(self.delta / self.tick)


class StreamEngine:
    """Drives generator → operator → sink for a configured number of intervals."""

    def __init__(
        self,
        generator: NetworkBasedGenerator,
        operator: ContinuousJoinOperator,
        sink: Optional[ResultSink] = None,
        config: Optional[EngineConfig] = None,
        hooks: Iterable = (),
    ) -> None:
        # Imported here: repro.pipeline depends on repro.streams submodules,
        # so a module-level import would be circular.
        from ..pipeline.pipeline import EvaluationPipeline
        from ..pipeline.plan import OperatorPlan

        self.generator = generator
        self.operator = operator
        self.sink = sink if sink is not None else ResultSink()
        self.config = config if config is not None else EngineConfig()
        self.pipeline = EvaluationPipeline(
            generator,
            OperatorPlan(operator),
            sink=self.sink,
            config=self.config,
            hooks=hooks,
        )

    @property
    def stats(self) -> RunStats:
        return self.pipeline.stats

    def run_interval(self) -> IntervalStats:
        """Advance one full Δ interval: ingest ticks, then evaluate."""
        return self.pipeline.run_interval()

    def run(self, intervals: int) -> RunStats:
        """Run ``intervals`` consecutive Δ intervals and return the stats."""
        return self.pipeline.run(intervals)

    # -- checkpoint/restore --------------------------------------------------

    def snapshot_state(self) -> dict:
        """Picklable engine state at an interval barrier.

        Captures the operator wholesale (its pickle contract drops caches,
        which rebuild on first use without changing answers) plus the
        pipeline's clock/accounting.  The source is *not* included — its
        cursor travels separately so snapshots stay source-agnostic.
        """
        return {
            "kind": "serial",
            "operator": pickle.dumps(self.operator),
            "pipeline": self.pipeline.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` on a freshly built engine."""
        if state.get("kind") != "serial":
            raise ValueError(
                f"snapshot is for a {state.get('kind')!r} engine, not serial"
            )
        self.operator = pickle.loads(state["operator"])
        self.pipeline.plan.rebind(self.operator)
        self.pipeline.restore_state(state["pipeline"])
