"""Miniature stream-processing engine (the CAPE stand-in).

Defines the continuous-operator contract, the periodic Δ-triggered
execution loop, result sinks, and per-phase timing metrics.
"""

from .engine import EngineConfig, StreamEngine
from .metrics import IntervalStats, RunStats, Timer, merge_counters
from .operator import ContinuousJoinOperator, StagedJoinOperator
from .results import MatchBlock, MatchList, QueryMatch, match_set
from .sink import CollectingSink, CountingSink, ResultSink

__all__ = [
    "CollectingSink",
    "ContinuousJoinOperator",
    "CountingSink",
    "EngineConfig",
    "IntervalStats",
    "MatchBlock",
    "MatchList",
    "QueryMatch",
    "ResultSink",
    "RunStats",
    "StagedJoinOperator",
    "StreamEngine",
    "Timer",
    "match_set",
    "merge_counters",
]
