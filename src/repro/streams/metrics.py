"""Timing and accounting primitives for the stream engine.

The paper's evaluation reports three kinds of cost, and we measure the same
three: **join time** (the Δ-triggered evaluation), **maintenance time**
(cluster pre/post-join upkeep — ingest-side clustering plus post-join
dissolution/relocation), and **memory** (estimated separately in
:mod:`repro.experiments.memory`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

__all__ = ["Timer", "IntervalStats", "RunStats"]


class Timer:
    """A context manager accumulating wall-clock seconds.

    One timer instance can be entered repeatedly; ``seconds`` accumulates
    across uses, which is how per-tuple ingest cost is summed over a whole
    interval.
    """

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds += time.perf_counter() - self._started

    def reset(self) -> float:
        """Return the accumulated seconds and zero the counter."""
        elapsed = self.seconds
        self.seconds = 0.0
        return elapsed


@dataclass
class IntervalStats:
    """Measured costs of one Δ execution interval."""

    #: Simulation time at which the interval's evaluation fired.
    t: float
    #: Seconds spent ingesting tuples (pre-join maintenance phase).
    ingest_seconds: float
    #: Seconds spent in the joining phase.
    join_seconds: float
    #: Seconds spent in post-join maintenance.
    maintenance_seconds: float
    #: Number of (query, object) matches produced.
    result_count: int
    #: Number of tuples ingested during the interval.
    tuple_count: int

    @property
    def total_seconds(self) -> float:
        return self.ingest_seconds + self.join_seconds + self.maintenance_seconds


@dataclass
class RunStats:
    """Aggregate statistics over a whole engine run."""

    intervals: List[IntervalStats] = field(default_factory=list)

    def add(self, stats: IntervalStats) -> None:
        self.intervals.append(stats)

    @property
    def interval_count(self) -> int:
        return len(self.intervals)

    @property
    def total_join_seconds(self) -> float:
        return sum(s.join_seconds for s in self.intervals)

    @property
    def total_ingest_seconds(self) -> float:
        return sum(s.ingest_seconds for s in self.intervals)

    @property
    def total_maintenance_seconds(self) -> float:
        return sum(s.maintenance_seconds for s in self.intervals)

    @property
    def total_result_count(self) -> int:
        return sum(s.result_count for s in self.intervals)

    @property
    def total_tuple_count(self) -> int:
        return sum(s.tuple_count for s in self.intervals)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.intervals)

    def mean_join_seconds(self) -> float:
        """Average join time per interval (0.0 for an empty run)."""
        if not self.intervals:
            return 0.0
        return self.total_join_seconds / len(self.intervals)

    def summary(self) -> str:
        """One-line human-readable digest, used by examples."""
        return (
            f"{self.interval_count} intervals | "
            f"ingest {self.total_ingest_seconds:.3f}s | "
            f"join {self.total_join_seconds:.3f}s | "
            f"maintenance {self.total_maintenance_seconds:.3f}s | "
            f"{self.total_result_count} results"
        )
