"""Timing and accounting primitives for the stream engine.

The paper's evaluation reports three kinds of cost, and we measure the same
three: **join time** (the Δ-triggered evaluation), **maintenance time**
(cluster pre/post-join upkeep — ingest-side clustering plus post-join
dissolution/relocation), and **memory** (estimated separately in
:mod:`repro.experiments.memory`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

__all__ = ["Timer", "IntervalStats", "RunStats", "merge_counters"]


def merge_counters(parts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine operator counter dicts from several shards into one.

    Numeric values are summed (counts stay raw so rates derived later are
    correct); identifying strings (e.g. ``kernel_backend``) are kept when
    consistent and joined with ``+`` when shards disagree.
    """
    merged: Dict[str, Any] = {}
    for part in parts:
        for key, value in part.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                prev = merged.get(key)
                if prev is None or prev == value:
                    merged[key] = value
                elif isinstance(prev, str) and isinstance(value, str):
                    merged[key] = "+".join(sorted({*prev.split("+"), value}))
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


class Timer:
    """A context manager accumulating wall-clock seconds.

    One timer instance can be entered repeatedly; ``seconds`` accumulates
    across uses, which is how per-tuple ingest cost is summed over a whole
    interval.
    """

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds += time.perf_counter() - self._started

    def reset(self) -> float:
        """Return the accumulated seconds and zero the counter."""
        elapsed = self.seconds
        self.seconds = 0.0
        return elapsed


@dataclass
class IntervalStats:
    """Measured costs of one Δ execution interval."""

    #: Simulation time at which the interval's evaluation fired.
    t: float
    #: Seconds spent ingesting tuples (pre-join maintenance phase).
    ingest_seconds: float
    #: Seconds spent in the joining phase.
    join_seconds: float
    #: Seconds spent in post-join maintenance.
    maintenance_seconds: float
    #: Number of (query, object) matches produced.
    result_count: int
    #: Number of tuples ingested during the interval.
    tuple_count: int
    #: Seconds the engine spent *producing* the interval's tuples
    #: (``generator.tick``).  Workload cost, not operator cost — reported
    #: separately and excluded from :attr:`total_seconds` so the paper's
    #: three-phase breakdown stays comparable.
    generate_seconds: float = 0.0
    #: Per-pipeline-stage wall-clock breakdown (stage name → seconds),
    #: recorded by :class:`repro.pipeline.EvaluationPipeline`.  Empty for
    #: stats produced outside a pipeline (e.g. shard-local stats).
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    #: Fields every interval record serializes, in output order — the one
    #: place the flat schema is spelled out (subclasses extend via
    #: :meth:`extra_fields`, not by overriding :meth:`to_dict`).
    _BASE_FIELDS = (
        "t",
        "generate_seconds",
        "ingest_seconds",
        "join_seconds",
        "maintenance_seconds",
        "result_count",
        "tuple_count",
    )

    @property
    def total_seconds(self) -> float:
        return self.ingest_seconds + self.join_seconds + self.maintenance_seconds

    def to_dict(self) -> dict:
        """Flat JSON-ready representation (shared serialization path)."""
        data = {name: getattr(self, name) for name in self._BASE_FIELDS}
        if self.stage_seconds:
            data["stage_seconds"] = dict(self.stage_seconds)
        data.update(self.extra_fields())
        return data

    def extra_fields(self) -> Dict[str, Any]:
        """Subclass extension point feeding :meth:`to_dict`.

        Subclasses return their additional serialized fields here instead
        of overriding ``to_dict`` — keeping one serialization path for
        every engine flavour.
        """
        return {}

    @classmethod
    def merged(
        cls,
        parts: Iterable["IntervalStats"],
        *,
        t: float,
        parallel: bool = False,
        result_count: int | None = None,
    ) -> "IntervalStats":
        """Combine per-shard (or per-phase) stats into one interval record.

        ``parallel=False`` sums every phase (sequential execution of the
        parts); ``parallel=True`` takes the per-phase maximum — the critical
        path when the parts ran concurrently.  ``result_count`` overrides
        the summed count (a result merger may have deduplicated).
        """
        parts = list(parts)
        combine = max if parallel else sum
        zero = [0.0]  # max() needs a non-empty sequence
        stage_names = sorted({name for p in parts for name in p.stage_seconds})
        return cls(
            t=t,
            generate_seconds=combine([p.generate_seconds for p in parts] or zero),
            ingest_seconds=combine([p.ingest_seconds for p in parts] or zero),
            join_seconds=combine([p.join_seconds for p in parts] or zero),
            maintenance_seconds=combine(
                [p.maintenance_seconds for p in parts] or zero
            ),
            result_count=(
                result_count
                if result_count is not None
                else sum(p.result_count for p in parts)
            ),
            tuple_count=sum(p.tuple_count for p in parts),
            stage_seconds={
                name: combine([p.stage_seconds.get(name, 0.0) for p in parts])
                for name in stage_names
            },
        )


@dataclass
class RunStats:
    """Aggregate statistics over a whole engine run."""

    intervals: List[IntervalStats] = field(default_factory=list)
    #: Latest operator counter snapshot (cumulative raw counts plus
    #: identifying strings such as the kernel backend name), recorded by
    #: the engine after each evaluation via :meth:`record_counters`.
    counters: Dict[str, Any] = field(default_factory=dict)

    def add(self, stats: IntervalStats) -> None:
        self.intervals.append(stats)

    def record_counters(self, counters: Dict[str, Any]) -> None:
        """Replace the counter snapshot (operator counts are cumulative)."""
        self.counters = dict(counters)

    def interval_total(self, name: str, default: float = 0.0) -> float:
        """Sum a numeric per-interval field across the run.

        The shared accumulator for subclass-specific interval fields
        (``route_seconds``, ``duplicates_dropped``, ...): ``default``
        covers intervals recorded by an engine that does not measure the
        field.
        """
        return sum(getattr(s, name, default) for s in self.intervals)

    def stage_seconds(self) -> Dict[str, float]:
        """Cumulative per-pipeline-stage seconds across the run."""
        totals: Dict[str, float] = {}
        for interval in self.intervals:
            for name, seconds in interval.stage_seconds.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    @property
    def interval_count(self) -> int:
        return len(self.intervals)

    @property
    def total_join_seconds(self) -> float:
        return sum(s.join_seconds for s in self.intervals)

    @property
    def total_ingest_seconds(self) -> float:
        return sum(s.ingest_seconds for s in self.intervals)

    @property
    def total_maintenance_seconds(self) -> float:
        return sum(s.maintenance_seconds for s in self.intervals)

    @property
    def total_result_count(self) -> int:
        return sum(s.result_count for s in self.intervals)

    @property
    def total_tuple_count(self) -> int:
        return sum(s.tuple_count for s in self.intervals)

    @property
    def total_generate_seconds(self) -> float:
        return sum(s.generate_seconds for s in self.intervals)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.intervals)

    def mean_join_seconds(self) -> float:
        """Average join time per interval (0.0 for an empty run)."""
        if not self.intervals:
            return 0.0
        return self.total_join_seconds / len(self.intervals)

    def summary(self) -> str:
        """One-line human-readable digest, used by examples."""
        return (
            f"{self.interval_count} intervals | "
            f"generate {self.total_generate_seconds:.3f}s | "
            f"ingest {self.total_ingest_seconds:.3f}s | "
            f"join {self.total_join_seconds:.3f}s | "
            f"maintenance {self.total_maintenance_seconds:.3f}s | "
            f"{self.total_result_count} results"
        )

    def to_dict(self) -> dict:
        """JSON-ready representation: totals plus the per-interval series.

        Long benchmark runs export this instead of retaining sinks/objects,
        so memory stays bounded and results land in version-controllable
        JSON files.
        """
        counters = dict(self.counters)
        # Derive a hit rate for every hits/misses counter pair so reports
        # need no post-processing; raw counts stay alongside.
        for key in list(counters):
            if not key.endswith("_hits"):
                continue
            miss_key = key[: -len("_hits")] + "_misses"
            hits = counters[key]
            misses = counters.get(miss_key)
            if (
                isinstance(hits, (int, float))
                and isinstance(misses, (int, float))
                and hits + misses > 0
            ):
                counters[key[: -len("_hits")] + "_hit_rate"] = hits / (hits + misses)
        data = {
            "interval_count": self.interval_count,
            "totals": {
                "generate_seconds": self.total_generate_seconds,
                "ingest_seconds": self.total_ingest_seconds,
                "join_seconds": self.total_join_seconds,
                "maintenance_seconds": self.total_maintenance_seconds,
                "total_seconds": self.total_seconds,
                "result_count": self.total_result_count,
                "tuple_count": self.total_tuple_count,
            },
            "stage_seconds": self.stage_seconds(),
            "counters": counters,
            "intervals": [s.to_dict() for s in self.intervals],
        }
        data.update(self.extra_sections())
        return data

    def extra_sections(self) -> Dict[str, Any]:
        """Subclass extension point feeding :meth:`to_dict`.

        Mirrors :meth:`IntervalStats.extra_fields`: engine-specific stats
        subclasses contribute whole sections (e.g. ``"parallel"``) here
        rather than re-implementing the serialization.
        """
        return {}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
