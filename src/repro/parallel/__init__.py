"""Sharded parallel execution of continuous spatio-temporal queries.

SCUBA's cluster-based join is embarrassingly parallel across disjoint
regions of the ClusterGrid.  This package partitions the workspace into K
spatial shards with halo replication at the borders, runs one operator per
shard (in-process or in worker processes), and merges the per-shard
answers back into a single exact result stream:

* :class:`ShardPlan` / :class:`SpatialPartitioner` — tiling, routing,
  halo replication, retract hand-offs;
* :class:`SerialExecutor` / :class:`ProcessExecutor` — where shard
  operators run;
* :class:`ResultMerger` — owner-filtered deduplication of halo-duplicated
  matches;
* :class:`ShardedEngine` — the drop-in ``StreamEngine`` counterpart, with
  :class:`ShardedRunStats` reporting per-shard timing, load imbalance and
  halo replication factor;
* :class:`AdaptiveShardPlan` / :class:`ReshardController` — runtime
  re-sharding: a kd-style rebalanceable plan with versioned epochs, a
  split-hot/merge-cold policy under hysteresis, and live cluster
  migration between shards at interval boundaries.
"""

from .engine import (
    IncrementalGridShardFactory,
    NaiveShardFactory,
    RegularShardFactory,
    ScubaShardFactory,
    ShardedEngine,
    ShardedIntervalStats,
    ShardedRunStats,
    ShardedStagePlan,
)
from .executor import (
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ShardResult,
    make_executor,
)
from .merge import MergeOutcome, ResultMerger
from .partition import (
    AdaptiveShardPlan,
    MigrationMove,
    Retract,
    RouteDecision,
    ShardPlan,
    SpatialPartitioner,
    derive_halo_margin,
)
from .reshard import ReshardAction, ReshardConfig, ReshardController

__all__ = [
    "AdaptiveShardPlan",
    "IncrementalGridShardFactory",
    "MergeOutcome",
    "MigrationMove",
    "NaiveShardFactory",
    "ProcessExecutor",
    "RegularShardFactory",
    "ReshardAction",
    "ReshardConfig",
    "ReshardController",
    "ResultMerger",
    "Retract",
    "RouteDecision",
    "ScubaShardFactory",
    "SerialExecutor",
    "ShardExecutor",
    "ShardPlan",
    "ShardResult",
    "ShardedEngine",
    "ShardedIntervalStats",
    "ShardedRunStats",
    "ShardedStagePlan",
    "SpatialPartitioner",
    "derive_halo_margin",
    "make_executor",
]
