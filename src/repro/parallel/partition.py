"""Spatial partitioning of the workspace into shards with halo replication.

Distributed continuous-range-query systems split the data space into
disjoint regions, assign each region to a worker, and replicate entities
near region borders into the neighbouring workers so cross-boundary matches
are never lost (Zhu & Yu 2022; CheetahGIS).  This module provides the two
pieces of that scheme:

* :class:`ShardPlan` — a static decomposition of the workspace ``Rect``
  into a ``kx × ky`` lattice of tiles, each surrounded by a **halo** of
  configurable margin.  A point is *owned* by exactly one tile (half-open
  binning) but may fall inside several tiles' halo regions.
* :class:`SpatialPartitioner` — the stateful router: it maps every
  incoming update to the set of shards whose halo contains it, remembers
  each entity's previous placement, and emits :class:`Retract` hand-off
  records for shards the entity has left (a shard holding a stale copy
  would otherwise keep producing matches from it).

**Halo-margin derivation.**  A match pairs query ``q`` and object ``o``
with ``o`` inside ``q``'s window, so ``|o.loc − q.loc|`` is at most the
window's half-diagonal.  The shard owning ``q``'s location therefore sees
every object it can match provided the halo margin is at least the largest
half-diagonal of any query window — that alone makes the merged answer
exact.  SCUBA shards additionally cluster what they see: adding ``Θ_D``
(the maximum cluster radius) replicates most of the cluster context around
owned entities, keeping per-shard clusters — and the approximate answers
load shedding derives from them — close to their single-process shape.
:func:`derive_halo_margin` computes ``Θ_D + half-diagonal`` accordingly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from ..generator import EntityKind, Update
from ..geometry import Rect

__all__ = ["Retract", "RouteDecision", "ShardPlan", "SpatialPartitioner",
           "derive_halo_margin"]


def derive_halo_margin(
    theta_d: float, max_query_extent: Tuple[float, float]
) -> float:
    """The default halo margin: ``Θ_D`` + largest query half-diagonal.

    ``max_query_extent`` is the (width, height) of the largest range-query
    window the workload can produce.  The half-diagonal term is what makes
    the sharded join *exact*; the ``Θ_D`` term replicates cluster context
    (see module docstring).
    """
    if theta_d < 0:
        raise ValueError(f"theta_d must be non-negative, got {theta_d}")
    w, h = max_query_extent
    if w < 0 or h < 0:
        raise ValueError(f"query extent must be non-negative: {w}x{h}")
    return theta_d + 0.5 * (w * w + h * h) ** 0.5


class Retract(NamedTuple):
    """Hand-off record: shard must forget this entity (it left the halo)."""

    entity_id: int
    kind: EntityKind


class RouteDecision(NamedTuple):
    """Where one update goes: its owner, all recipients, and leavers."""

    owner: int
    targets: Tuple[int, ...]
    leavers: Tuple[int, ...]


class ShardPlan:
    """A ``kx × ky`` tiling of the workspace with per-tile halo regions."""

    def __init__(self, bounds: Rect, kx: int, ky: int, halo_margin: float) -> None:
        if kx < 1 or ky < 1:
            raise ValueError(f"tile counts must be >= 1, got {kx}x{ky}")
        if halo_margin < 0:
            raise ValueError(f"halo_margin must be non-negative, got {halo_margin}")
        self.bounds = bounds
        self.kx = kx
        self.ky = ky
        self.halo_margin = float(halo_margin)
        self._tile_w = bounds.width / kx
        self._tile_h = bounds.height / ky

    @classmethod
    def split(cls, bounds: Rect, shards: int, halo_margin: float) -> "ShardPlan":
        """Decompose into ``shards`` tiles, as square as ``shards`` allows.

        The tile lattice is the most balanced ``kx × ky`` factorisation of
        ``shards`` (e.g. 4 → 2×2, 8 → 4×2, 6 → 3×2), which minimises halo
        area — and therefore replication — for a given shard count.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        ky = int(shards**0.5)
        while shards % ky != 0:
            ky -= 1
        kx = shards // ky
        # Orient the finer split along the wider side of the workspace.
        if bounds.height > bounds.width and kx != ky:
            kx, ky = ky, kx
        return cls(bounds, kx, ky, halo_margin)

    # -- geometry -----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.kx * self.ky

    def tile(self, shard: int) -> Rect:
        """The owned (halo-free) rectangle of ``shard``."""
        row, col = divmod(shard, self.kx)
        if not (0 <= row < self.ky):
            raise IndexError(f"shard {shard} out of range")
        b = self.bounds
        return Rect(
            b.min_x + col * self._tile_w,
            b.min_y + row * self._tile_h,
            b.min_x + (col + 1) * self._tile_w,
            b.min_y + (row + 1) * self._tile_h,
        )

    def halo_rect(self, shard: int) -> Rect:
        """The tile grown by the halo margin — everything the shard sees."""
        return self.tile(shard).expanded(self.halo_margin)

    def owner_of(self, x: float, y: float) -> int:
        """The unique shard owning point ``(x, y)``.

        Binning is half-open with clamping, exactly like the spatial grid
        index: boundary points belong to the higher tile, out-of-bounds
        points to the border tiles.
        """
        col = int((x - self.bounds.min_x) / self._tile_w)
        col = min(max(col, 0), self.kx - 1)
        row = int((y - self.bounds.min_y) / self._tile_h)
        row = min(max(row, 0), self.ky - 1)
        return row * self.kx + col

    def _axis_span(
        self, v: float, origin: float, width: float, n: int
    ) -> Tuple[int, int]:
        """Contiguous index range whose halo-expanded slabs contain ``v``."""
        c = int((v - origin) / width)
        c = min(max(c, 0), n - 1)
        margin = self.halo_margin
        lo = c
        while lo > 0 and v <= origin + lo * width + margin:
            lo -= 1
        hi = c
        while hi < n - 1 and v >= origin + (hi + 1) * width - margin:
            hi += 1
        return lo, hi

    def shards_containing(self, x: float, y: float) -> Tuple[int, ...]:
        """Every shard whose (closed) halo rectangle contains the point.

        Always includes :meth:`owner_of` — halo rectangles cover their own
        tile.  Containment is closed on both sides, so a point exactly on a
        halo edge is replicated to both neighbours; routing errs toward
        replication, never toward loss.
        """
        b = self.bounds
        col_lo, col_hi = self._axis_span(x, b.min_x, self._tile_w, self.kx)
        row_lo, row_hi = self._axis_span(y, b.min_y, self._tile_h, self.ky)
        return tuple(
            row * self.kx + col
            for row in range(row_lo, row_hi + 1)
            for col in range(col_lo, col_hi + 1)
        )

    def __repr__(self) -> str:
        return (
            f"ShardPlan({self.kx}x{self.ky} tiles over {self.bounds!r}, "
            f"halo={self.halo_margin:g})"
        )


class SpatialPartitioner:
    """Routes the update stream to shards, tracking per-entity placement.

    For every update the partitioner returns the shards that must receive
    it (all whose halo contains the new position) and the shards that must
    *retract* the entity (they held it before, but its new position left
    their halo).  Placement state is one small tuple per live entity.
    """

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan
        # entity key -> shard tuple it currently lives in.
        self._placement: Dict[int, Tuple[int, ...]] = {}
        # entity key -> owning shard (only queries are consulted, but
        # tracking both kinds keeps the invariant trivial).
        self._owner: Dict[int, int] = {}
        #: Updates routed since construction.
        self.updates_routed = 0
        #: Per-shard deliveries (>= updates_routed; the excess is halo copies).
        self.deliveries = 0
        #: Retract records emitted.
        self.retractions = 0

    @staticmethod
    def _key(entity_id: int, kind: EntityKind) -> int:
        return entity_id * 2 + (kind is EntityKind.OBJECT)

    def route(self, update: Update) -> RouteDecision:
        """Targets and leavers for one update (arrival order preserved)."""
        plan = self.plan
        x, y = update.loc.x, update.loc.y
        owner = plan.owner_of(x, y)
        targets = plan.shards_containing(x, y)
        key = self._key(update.entity_id, update.kind)
        previous = self._placement.get(key)
        if previous is None or previous == targets:
            leavers: Tuple[int, ...] = ()
        else:
            in_targets = set(targets)
            leavers = tuple(s for s in previous if s not in in_targets)
        self._placement[key] = targets
        self._owner[key] = owner
        self.updates_routed += 1
        self.deliveries += len(targets)
        self.retractions += len(leavers)
        return RouteDecision(owner, targets, leavers)

    def owner_of_query(self, qid: int) -> Optional[int]:
        """The shard owning query ``qid``'s last reported position."""
        return self._owner.get(self._key(qid, EntityKind.QUERY))

    def placement_of(self, entity_id: int, kind: EntityKind) -> Tuple[int, ...]:
        """Shards currently holding the entity (empty if never routed)."""
        return self._placement.get(self._key(entity_id, kind), ())

    @property
    def replication_factor(self) -> float:
        """Mean shard copies per routed update (1.0 = no halo duplication)."""
        if self.updates_routed == 0:
            return 1.0
        return self.deliveries / self.updates_routed

    def snapshot_state(self) -> Dict[str, object]:
        """Picklable routing state for a checkpoint (plan geometry excluded —
        the restoring engine must already run the identical plan)."""
        return {
            "placement": dict(self._placement),
            "owner": dict(self._owner),
            "updates_routed": self.updates_routed,
            "deliveries": self.deliveries,
            "retractions": self.retractions,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self._placement = dict(state["placement"])
        self._owner = dict(state["owner"])
        self.updates_routed = state["updates_routed"]
        self.deliveries = state["deliveries"]
        self.retractions = state["retractions"]

    def __repr__(self) -> str:
        return (
            f"SpatialPartitioner({self.plan!r}, "
            f"{len(self._placement)} placed entities, "
            f"replication={self.replication_factor:.3f})"
        )
