"""Spatial partitioning of the workspace into shards with halo replication.

Distributed continuous-range-query systems split the data space into
disjoint regions, assign each region to a worker, and replicate entities
near region borders into the neighbouring workers so cross-boundary matches
are never lost (Zhu & Yu 2022; CheetahGIS).  This module provides the two
pieces of that scheme:

* :class:`ShardPlan` — a static decomposition of the workspace ``Rect``
  into a ``kx × ky`` lattice of tiles, each surrounded by a **halo** of
  configurable margin.  A point is *owned* by exactly one tile (half-open
  binning) but may fall inside several tiles' halo regions.
* :class:`SpatialPartitioner` — the stateful router: it maps every
  incoming update to the set of shards whose halo contains it, remembers
  each entity's previous placement, and emits :class:`Retract` hand-off
  records for shards the entity has left (a shard holding a stale copy
  would otherwise keep producing matches from it).

**Halo-margin derivation.**  A match pairs query ``q`` and object ``o``
with ``o`` inside ``q``'s window, so ``|o.loc − q.loc|`` is at most the
window's half-diagonal.  The shard owning ``q``'s location therefore sees
every object it can match provided the halo margin is at least the largest
half-diagonal of any query window — that alone makes the merged answer
exact.  SCUBA shards additionally cluster what they see: adding ``Θ_D``
(the maximum cluster radius) replicates most of the cluster context around
owned entities, keeping per-shard clusters — and the approximate answers
load shedding derives from them — close to their single-process shape.
:func:`derive_halo_margin` computes ``Θ_D + half-diagonal`` accordingly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..generator import EntityKind, Update
from ..geometry import Rect

__all__ = ["AdaptiveShardPlan", "MigrationMove", "Retract", "RouteDecision",
           "ShardPlan", "SpatialPartitioner", "derive_halo_margin"]


def derive_halo_margin(
    theta_d: float, max_query_extent: Tuple[float, float]
) -> float:
    """The default halo margin: ``Θ_D`` + largest query half-diagonal.

    ``max_query_extent`` is the (width, height) of the largest range-query
    window the workload can produce.  The half-diagonal term is what makes
    the sharded join *exact*; the ``Θ_D`` term replicates cluster context
    (see module docstring).
    """
    if theta_d < 0:
        raise ValueError(f"theta_d must be non-negative, got {theta_d}")
    w, h = max_query_extent
    if w < 0 or h < 0:
        raise ValueError(f"query extent must be non-negative: {w}x{h}")
    return theta_d + 0.5 * (w * w + h * h) ** 0.5


class Retract(NamedTuple):
    """Hand-off record: shard must forget this entity (it left the halo)."""

    entity_id: int
    kind: EntityKind


class RouteDecision(NamedTuple):
    """Where one update goes: its owner, all recipients, and leavers."""

    owner: int
    targets: Tuple[int, ...]
    leavers: Tuple[int, ...]


class ShardPlan:
    """A ``kx × ky`` tiling of the workspace with per-tile halo regions."""

    def __init__(self, bounds: Rect, kx: int, ky: int, halo_margin: float) -> None:
        if kx < 1 or ky < 1:
            raise ValueError(f"tile counts must be >= 1, got {kx}x{ky}")
        if halo_margin < 0:
            raise ValueError(f"halo_margin must be non-negative, got {halo_margin}")
        self.bounds = bounds
        self.kx = kx
        self.ky = ky
        self.halo_margin = float(halo_margin)
        self._tile_w = bounds.width / kx
        self._tile_h = bounds.height / ky

    @classmethod
    def split(cls, bounds: Rect, shards: int, halo_margin: float) -> "ShardPlan":
        """Decompose into ``shards`` tiles, as square as ``shards`` allows.

        The tile lattice is the most balanced ``kx × ky`` factorisation of
        ``shards`` (e.g. 4 → 2×2, 8 → 4×2, 6 → 3×2), which minimises halo
        area — and therefore replication — for a given shard count.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        ky = int(shards**0.5)
        while shards % ky != 0:
            ky -= 1
        kx = shards // ky
        # Orient the finer split along the wider side of the workspace.
        if bounds.height > bounds.width and kx != ky:
            kx, ky = ky, kx
        return cls(bounds, kx, ky, halo_margin)

    # -- geometry -----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.kx * self.ky

    def tile(self, shard: int) -> Rect:
        """The owned (halo-free) rectangle of ``shard``."""
        row, col = divmod(shard, self.kx)
        if not (0 <= row < self.ky):
            raise IndexError(f"shard {shard} out of range")
        b = self.bounds
        return Rect(
            b.min_x + col * self._tile_w,
            b.min_y + row * self._tile_h,
            b.min_x + (col + 1) * self._tile_w,
            b.min_y + (row + 1) * self._tile_h,
        )

    def halo_rect(self, shard: int) -> Rect:
        """The tile grown by the halo margin — everything the shard sees."""
        return self.tile(shard).expanded(self.halo_margin)

    def owner_of(self, x: float, y: float) -> int:
        """The unique shard owning point ``(x, y)``.

        Binning is half-open with clamping, exactly like the spatial grid
        index: boundary points belong to the higher tile, out-of-bounds
        points to the border tiles.
        """
        col = int((x - self.bounds.min_x) / self._tile_w)
        col = min(max(col, 0), self.kx - 1)
        row = int((y - self.bounds.min_y) / self._tile_h)
        row = min(max(row, 0), self.ky - 1)
        return row * self.kx + col

    def _axis_span(
        self, v: float, origin: float, width: float, n: int
    ) -> Tuple[int, int]:
        """Contiguous index range whose halo-expanded slabs contain ``v``."""
        c = int((v - origin) / width)
        c = min(max(c, 0), n - 1)
        margin = self.halo_margin
        lo = c
        while lo > 0 and v <= origin + lo * width + margin:
            lo -= 1
        hi = c
        while hi < n - 1 and v >= origin + (hi + 1) * width - margin:
            hi += 1
        return lo, hi

    def shards_containing(self, x: float, y: float) -> Tuple[int, ...]:
        """Every shard whose (closed) halo rectangle contains the point.

        Always includes :meth:`owner_of` — halo rectangles cover their own
        tile.  Containment is closed on both sides, so a point exactly on a
        halo edge is replicated to both neighbours; routing errs toward
        replication, never toward loss.
        """
        b = self.bounds
        col_lo, col_hi = self._axis_span(x, b.min_x, self._tile_w, self.kx)
        row_lo, row_hi = self._axis_span(y, b.min_y, self._tile_h, self.ky)
        return tuple(
            row * self.kx + col
            for row in range(row_lo, row_hi + 1)
            for col in range(col_lo, col_hi + 1)
        )

    def __repr__(self) -> str:
        return (
            f"ShardPlan({self.kx}x{self.ky} tiles over {self.bounds!r}, "
            f"halo={self.halo_margin:g})"
        )


class MigrationMove(NamedTuple):
    """One entity's shard-set change under a plan transition.

    ``source`` is the shard that owned the entity under the *old* plan —
    the one shard guaranteed to hold its full state, and therefore the one
    its state is exported from.  ``gains`` are shards whose halo newly
    contains the entity; ``losses`` are shards it must be retracted from.
    """

    entity_id: int
    kind: EntityKind
    source: Optional[int]
    gains: Tuple[int, ...]
    losses: Tuple[int, ...]


class _KdNode:
    """One node of an adaptive plan's kd-tree: a leaf shard or a split."""

    __slots__ = ("axis", "threshold", "low", "high", "shard")

    def __init__(self, axis: int, threshold: float, low, high, shard: int) -> None:
        self.axis = axis          # 0 = split on x, 1 = split on y
        self.threshold = threshold
        self.low = low            # subtree with coordinate <  threshold
        self.high = high          # subtree with coordinate >= threshold
        self.shard = shard        # >= 0 on leaves, -1 on splits

    @classmethod
    def leaf(cls, shard: int) -> "_KdNode":
        return cls(0, 0.0, None, None, shard)

    @classmethod
    def split(cls, axis: int, threshold: float, low, high) -> "_KdNode":
        return cls(axis, threshold, low, high, -1)

    def __getstate__(self):
        return (self.axis, self.threshold, self.low, self.high, self.shard)

    def __setstate__(self, state):
        self.axis, self.threshold, self.low, self.high, self.shard = state


def _split_rect(rect: Rect, axis: int, threshold: float) -> Tuple[Rect, Rect]:
    if axis == 0:
        return (
            Rect(rect.min_x, rect.min_y, threshold, rect.max_y),
            Rect(threshold, rect.min_y, rect.max_x, rect.max_y),
        )
    return (
        Rect(rect.min_x, rect.min_y, rect.max_x, threshold),
        Rect(rect.min_x, threshold, rect.max_x, rect.max_y),
    )


def _merge_leaves(node: "_KdNode", a: int, b: int) -> "_KdNode":
    """Fold the sibling leaves ``a``/``b`` into one leaf ``min(a, b)``."""
    if node.shard >= 0:
        raise ValueError(f"shards {a} and {b} are not sibling leaves")
    low, high = node.low, node.high
    if low.shard >= 0 and high.shard >= 0 and {low.shard, high.shard} == {a, b}:
        return _KdNode.leaf(min(a, b))
    for child, sibling, flip in ((low, high, False), (high, low, True)):
        if child.shard < 0 and _has_leaf(child, a) and _has_leaf(child, b):
            merged = _merge_leaves(child, a, b)
            pair = (merged, sibling) if not flip else (sibling, merged)
            return _KdNode.split(node.axis, node.threshold, *pair)
    raise ValueError(f"shards {a} and {b} are not sibling leaves")


def _has_leaf(node: "_KdNode", shard: int) -> bool:
    if node.shard >= 0:
        return node.shard == shard
    return _has_leaf(node.low, shard) or _has_leaf(node.high, shard)


def _split_leaf(
    node: "_KdNode", shard: int, freed: int, axis: int, threshold: float
) -> "_KdNode":
    """Replace leaf ``shard`` with a split: low keeps ``shard``, high is
    ``freed``."""
    if node.shard >= 0:
        if node.shard != shard:
            raise ValueError(f"leaf {shard} not found")
        return _KdNode.split(
            axis, threshold, _KdNode.leaf(shard), _KdNode.leaf(freed)
        )
    if _has_leaf(node.low, shard):
        return _KdNode.split(
            node.axis,
            node.threshold,
            _split_leaf(node.low, shard, freed, axis, threshold),
            node.high,
        )
    return _KdNode.split(
        node.axis,
        node.threshold,
        node.low,
        _split_leaf(node.high, shard, freed, axis, threshold),
    )


class AdaptiveShardPlan:
    """A rebalanceable kd-tree tiling with a fixed shard count.

    Same routing interface as :class:`ShardPlan` (``owner_of`` /
    ``shards_containing`` / ``tile`` / ``halo_rect``), but the tiles are
    the leaves of a kd-tree that can be reshaped at runtime: a rebalance
    folds one pair of sibling leaves into their parent region and re-splits
    a hot region at a load median, keeping the leaf count — and therefore
    the worker count — constant.  Every transition produces a *new* plan
    with ``epoch + 1``; shard indices are persistent labels for workers,
    not positions in a lattice.

    Boundary semantics match the static plan exactly: ownership is
    half-open (a point on a split threshold belongs to the high side),
    halo containment is closed, and ``shards_containing`` always includes
    the owner, so routing errs toward replication, never toward loss.
    """

    def __init__(
        self, bounds: Rect, root: _KdNode, halo_margin: float, epoch: int = 0
    ) -> None:
        if halo_margin < 0:
            raise ValueError(f"halo_margin must be non-negative, got {halo_margin}")
        self.bounds = bounds
        self.root = root
        self.halo_margin = float(halo_margin)
        self.epoch = epoch
        self._rebuild_tiles()

    def _rebuild_tiles(self) -> None:
        tiles: Dict[int, Rect] = {}

        def walk(node: _KdNode, rect: Rect) -> None:
            if node.shard >= 0:
                if node.shard in tiles:
                    raise ValueError(f"duplicate shard id {node.shard}")
                tiles[node.shard] = rect
                return
            low_rect, high_rect = _split_rect(rect, node.axis, node.threshold)
            walk(node.low, low_rect)
            walk(node.high, high_rect)

        walk(self.root, self.bounds)
        if sorted(tiles) != list(range(len(tiles))):
            raise ValueError(f"leaf shard ids not dense: {sorted(tiles)}")
        self._tiles = [tiles[s] for s in range(len(tiles))]
        self._halos = [r.expanded(self.halo_margin) for r in self._tiles]

    @classmethod
    def split(
        cls, bounds: Rect, shards: int, halo_margin: float
    ) -> "AdaptiveShardPlan":
        """The epoch-0 plan: an area-balanced kd subdivision into ``shards``
        leaves, splitting each region along its wider side."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")

        def build(rect: Rect, ids: List[int]) -> _KdNode:
            if len(ids) == 1:
                return _KdNode.leaf(ids[0])
            axis = 0 if rect.width >= rect.height else 1
            n_low = len(ids) // 2
            frac = n_low / len(ids)
            if axis == 0:
                threshold = rect.min_x + frac * rect.width
            else:
                threshold = rect.min_y + frac * rect.height
            low_rect, high_rect = _split_rect(rect, axis, threshold)
            return _KdNode.split(
                axis,
                threshold,
                build(low_rect, ids[:n_low]),
                build(high_rect, ids[n_low:]),
            )

        return cls(bounds, build(bounds, list(range(shards))), halo_margin)

    # -- geometry (ShardPlan interface) -------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._tiles)

    def tile(self, shard: int) -> Rect:
        """The owned (halo-free) rectangle of ``shard``."""
        return self._tiles[shard]

    def halo_rect(self, shard: int) -> Rect:
        """The tile grown by the halo margin — everything the shard sees."""
        return self._halos[shard]

    def owner_of(self, x: float, y: float) -> int:
        """The unique shard owning ``(x, y)`` (half-open, like the grid)."""
        node = self.root
        while node.shard < 0:
            v = x if node.axis == 0 else y
            node = node.low if v < node.threshold else node.high
        return node.shard

    def shards_containing(self, x: float, y: float) -> Tuple[int, ...]:
        """Every shard whose (closed) halo rectangle contains the point.

        Always includes :meth:`owner_of` (also for out-of-bounds points,
        which the descent clamps to a border leaf exactly like the static
        plan's border tiles)."""
        owner = self.owner_of(x, y)
        return tuple(
            shard
            for shard, halo in enumerate(self._halos)
            if shard == owner or halo.contains_xy(x, y)
        )

    # -- transitions ---------------------------------------------------------

    def leaf_sibling_of(self, shard: int) -> Optional[int]:
        """The shard sharing ``shard``'s parent split, if it is a leaf."""
        for a, b in self.sibling_leaf_pairs():
            if shard == a:
                return b
            if shard == b:
                return a
        return None

    def sibling_leaf_pairs(self) -> List[Tuple[int, int]]:
        """All (low, high) leaf pairs under one split — mergeable regions."""
        pairs: List[Tuple[int, int]] = []

        def walk(node: _KdNode) -> None:
            if node.shard >= 0:
                return
            if node.low.shard >= 0 and node.high.shard >= 0:
                pairs.append((node.low.shard, node.high.shard))
                return
            walk(node.low)
            walk(node.high)

        walk(self.root)
        return pairs

    def rebalance(
        self,
        merge_pair: Tuple[int, int],
        split_shard: int,
        axis: int,
        threshold: float,
    ) -> "AdaptiveShardPlan":
        """One rebalance step: fold ``merge_pair`` (sibling leaves; the
        lower id keeps the merged region) and re-split ``split_shard`` at
        ``threshold``, handing the high side to the freed id.  Returns a
        new plan with ``epoch + 1``; ``self`` is untouched."""
        a, b = merge_pair
        root = _merge_leaves(self.root, a, b)
        freed = max(a, b)
        root = _split_leaf(root, split_shard, freed, axis, threshold)
        return AdaptiveShardPlan(
            self.bounds, root, self.halo_margin, epoch=self.epoch + 1
        )

    def replan(
        self, positions: Sequence[Tuple[float, float]]
    ) -> "AdaptiveShardPlan":
        """A fresh load-median kd subdivision over the current population.

        Single merge/split steps can only move borders between *sibling*
        leaves; when load concentrates after a few transitions the tree
        shape itself becomes the bottleneck.  A replan rebuilds the whole
        tree the way :meth:`split` does, but splitting each region at the
        **load median** of the positions inside it (wider axis first, the
        kd construction of arXiv:1211.4414) instead of at area midpoints;
        regions whose positions are degenerate — empty, or all on one
        coordinate — fall back to the area midpoint, so the subdivision is
        total for any input.  Shard ids are reassigned 0..K-1 in tree
        order; the caller migrates every entity whose placement changed.
        Returns a new plan with ``epoch + 1``; ``self`` is untouched.
        """
        k = self.num_shards

        def build(
            rect: Rect, pts: List[Tuple[float, float]], ids: List[int]
        ) -> _KdNode:
            if len(ids) == 1:
                return _KdNode.leaf(ids[0])
            axis = 0 if rect.width >= rect.height else 1
            n_low_ids = len(ids) // 2
            frac = n_low_ids / len(ids)
            lo_edge = rect.min_x if axis == 0 else rect.min_y
            hi_edge = rect.max_x if axis == 0 else rect.max_y
            threshold = None
            if len(pts) >= 2:
                coords = sorted(p[axis] for p in pts)
                candidate = coords[int(len(coords) * frac)]
                if not lo_edge < candidate < hi_edge:
                    # The load quantile collapsed onto a region edge
                    # (duplicates); take the next distinct coordinate.
                    higher = [c for c in coords if lo_edge < c < hi_edge]
                    candidate = higher[0] if higher else None
                threshold = candidate
            if threshold is None:
                threshold = lo_edge + frac * (hi_edge - lo_edge)
            low_rect, high_rect = _split_rect(rect, axis, threshold)
            low_pts = [p for p in pts if p[axis] < threshold]
            high_pts = [p for p in pts if p[axis] >= threshold]
            return _KdNode.split(
                axis,
                threshold,
                build(low_rect, low_pts, ids[:n_low_ids]),
                build(high_rect, high_pts, ids[n_low_ids:]),
            )

        root = build(self.bounds, list(positions), list(range(k)))
        return AdaptiveShardPlan(
            self.bounds, root, self.halo_margin, epoch=self.epoch + 1
        )

    def __repr__(self) -> str:
        return (
            f"AdaptiveShardPlan({self.num_shards} kd tiles over "
            f"{self.bounds!r}, halo={self.halo_margin:g}, epoch={self.epoch})"
        )


class SpatialPartitioner:
    """Routes the update stream to shards, tracking per-entity placement.

    For every update the partitioner returns the shards that must receive
    it (all whose halo contains the new position) and the shards that must
    *retract* the entity (they held it before, but its new position left
    their halo).  Placement state is one small tuple per live entity.
    """

    def __init__(self, plan) -> None:
        self.plan = plan
        # entity key -> shard tuple it currently lives in.
        self._placement: Dict[int, Tuple[int, ...]] = {}
        # entity key -> owning shard (only queries are consulted, but
        # tracking both kinds keeps the invariant trivial).
        self._owner: Dict[int, int] = {}
        # entity key -> last reported (x, y).  Lets a plan transition
        # recompute every placement without asking the shards, and gives
        # the reshard controller its load medians.
        self._position: Dict[int, Tuple[float, float]] = {}
        #: Updates routed since construction.
        self.updates_routed = 0
        #: Per-shard deliveries (>= updates_routed; the excess is halo copies).
        self.deliveries = 0
        #: Retract records emitted.
        self.retractions = 0

    @staticmethod
    def _key(entity_id: int, kind: EntityKind) -> int:
        return entity_id * 2 + (kind is EntityKind.OBJECT)

    def route(self, update: Update) -> RouteDecision:
        """Targets and leavers for one update (arrival order preserved)."""
        key = self._key(update.entity_id, update.kind)
        return self.route_xy(key, update.loc.x, update.loc.y)

    def route_xy(self, key: int, x: float, y: float) -> RouteDecision:
        """:meth:`route` for a pre-packed key and raw coordinates.

        The columnar dispatch loop routes straight from a tick batch's
        key/x/y columns without materialising update objects; bookkeeping
        and decisions are identical to :meth:`route` for equal inputs.
        ``x``/``y`` must be Python floats (they land in the pickled
        placement state).
        """
        plan = self.plan
        owner = plan.owner_of(x, y)
        targets = plan.shards_containing(x, y)
        previous = self._placement.get(key)
        if previous is None or previous == targets:
            leavers: Tuple[int, ...] = ()
        else:
            in_targets = set(targets)
            leavers = tuple(s for s in previous if s not in in_targets)
        self._placement[key] = targets
        self._owner[key] = owner
        self._position[key] = (x, y)
        self.updates_routed += 1
        self.deliveries += len(targets)
        self.retractions += len(leavers)
        return RouteDecision(owner, targets, leavers)

    def owner_of_query(self, qid: int) -> Optional[int]:
        """The shard owning query ``qid``'s last reported position."""
        return self._owner.get(self._key(qid, EntityKind.QUERY))

    def placement_of(self, entity_id: int, kind: EntityKind) -> Tuple[int, ...]:
        """Shards currently holding the entity (empty if never routed)."""
        return self._placement.get(self._key(entity_id, kind), ())

    @property
    def replication_factor(self) -> float:
        """Mean shard copies per routed update (1.0 = no halo duplication)."""
        if self.updates_routed == 0:
            return 1.0
        return self.deliveries / self.updates_routed

    # -- load introspection & plan transitions -------------------------------

    def owner_counts(self) -> List[int]:
        """Entities owned per shard — the deterministic load signal.

        Derived from last reported positions, so two identically-driven
        runs (or a resumed run) always see identical counts — unlike
        wall-clock timings, which would make reshard decisions
        irreproducible."""
        counts = [0] * self.plan.num_shards
        for shard in self._owner.values():
            counts[shard] += 1
        return counts

    def owned_positions(self, shards) -> List[Tuple[float, float]]:
        """Last reported positions of entities owned by any of ``shards``."""
        wanted = set(shards)
        return [
            self._position[key]
            for key, shard in self._owner.items()
            if shard in wanted
        ]

    def rebind(self, new_plan) -> List[MigrationMove]:
        """Adopt ``new_plan`` and diff every entity's placement against it.

        Recomputes targets/owner for all tracked entities from their last
        reported positions and returns one :class:`MigrationMove` per
        entity whose shard set changed, in ascending key order (a
        deterministic migration schedule).  The caller executes the moves:
        export state from ``source``, ingest into ``gains``, retract from
        ``losses``."""
        if new_plan.num_shards != self.plan.num_shards:
            raise ValueError(
                f"rebind cannot change the shard count "
                f"({self.plan.num_shards} -> {new_plan.num_shards})"
            )
        moves: List[MigrationMove] = []
        for key in sorted(self._position):
            x, y = self._position[key]
            new_targets = new_plan.shards_containing(x, y)
            new_owner = new_plan.owner_of(x, y)
            old_targets = self._placement.get(key, ())
            old_owner = self._owner.get(key)
            if old_targets == new_targets and old_owner == new_owner:
                continue
            self._placement[key] = new_targets
            self._owner[key] = new_owner
            new_set = set(new_targets)
            old_set = set(old_targets)
            gains = tuple(s for s in new_targets if s not in old_set)
            losses = tuple(s for s in old_targets if s not in new_set)
            if gains or losses:
                moves.append(
                    MigrationMove(
                        key // 2,
                        EntityKind.OBJECT if key % 2 else EntityKind.QUERY,
                        old_owner,
                        gains,
                        losses,
                    )
                )
        self.plan = new_plan
        return moves

    def snapshot_state(self) -> Dict[str, object]:
        """Picklable routing state for a checkpoint (plan geometry excluded —
        the restoring engine must already run the identical plan)."""
        return {
            "placement": dict(self._placement),
            "owner": dict(self._owner),
            "position": dict(self._position),
            "updates_routed": self.updates_routed,
            "deliveries": self.deliveries,
            "retractions": self.retractions,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self._placement = dict(state["placement"])
        self._owner = dict(state["owner"])
        self._position = dict(state.get("position", {}))
        self.updates_routed = state["updates_routed"]
        self.deliveries = state["deliveries"]
        self.retractions = state["retractions"]

    def __repr__(self) -> str:
        return (
            f"SpatialPartitioner({self.plan!r}, "
            f"{len(self._placement)} placed entities, "
            f"replication={self.replication_factor:.3f})"
        )
