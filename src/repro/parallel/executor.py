"""Shard executors: where the per-shard operators actually run.

The sharded engine is executor-agnostic: it hands each tick's per-shard
operation lists (updates interleaved with :class:`Retract` hand-offs, in
arrival order) to an executor, and at every Δ boundary asks for the
per-shard evaluation results.  Two executors are provided:

* :class:`SerialExecutor` — all shard operators live in-process and run
  one after another.  Zero parallelism, zero serialisation cost; its
  results are *bit-identical* to the process executor's, which makes it
  the reference for determinism and equivalence tests (and the sensible
  choice for K-way partitioning experiments on one core).
* :class:`ProcessExecutor` — one long-lived worker process per shard,
  fed over pipes.  Ingest messages are fire-and-forget, so routing of the
  next tick overlaps with ingestion in the workers; the Δ-triggered
  evaluate is a scatter/gather barrier.  Requires every update, operator
  factory, and match to be picklable.

Both return one :class:`ShardResult` per shard: the shard's matches plus a
shard-local :class:`IntervalStats` (its own ingest/join/maintenance split).
"""

from __future__ import annotations

import abc
import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..geometry import Rect
from ..streams import IntervalStats, QueryMatch
from .partition import Retract

__all__ = [
    "BatchShardOps",
    "ShardOp",
    "ShardResult",
    "ShardExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
]

# One entry of a shard's per-tick operation list: a stream update to
# ingest, or a Retract hand-off to apply.
ShardOp = object

#: Builds a shard's operator given the shard's halo-expanded bounds.
OperatorFactory = Callable[[Rect], "object"]


@dataclass
class ShardResult:
    """One shard's contribution to an interval evaluation."""

    matches: List[QueryMatch]
    stats: IntervalStats
    #: The shard operator's cumulative ``join_counters()`` snapshot.
    counters: Dict[str, Any] = field(default_factory=dict)


class BatchShardOps:
    """One shard's tick operations in columnar form.

    ``batch`` is the shard's row selection of the tick's
    :class:`~repro.generator.TickBatch` (arrival order preserved);
    ``retracts`` positions each :class:`Retract` between batch rows as a
    ``(row_pos, retract)`` pair — the retract applies after ``row_pos``
    rows have been ingested, exactly where it sat in the object-path
    operation list.  Picklable as-is, so the process executor ships one
    column set per shard instead of a per-object update list.
    """

    __slots__ = ("batch", "retracts")

    def __init__(
        self, batch, retracts: Sequence[Tuple[int, Retract]] = ()
    ) -> None:
        self.batch = batch
        self.retracts = tuple(retracts)

    def __len__(self) -> int:
        return len(self.batch) + len(self.retracts)

    def __repr__(self) -> str:
        return (
            f"BatchShardOps({len(self.batch)} rows, "
            f"{len(self.retracts)} retracts)"
        )


def _apply_batch_ops(operator, ops: BatchShardOps) -> int:
    """Columnar twin of :func:`_apply_ops`: batch segments between
    retract positions go through ``ingest_batch`` as TickBatch slices, so
    the operator sees the same maximal update runs in the same order."""
    batch = ops.batch
    n = len(batch)
    ingested = 0
    ingest_batch = operator.ingest_batch
    start = 0
    for pos, retract in ops.retracts:
        if start < pos:
            segment = batch if (start == 0 and pos == n) else batch[start:pos]
            ingest_batch(segment)
            ingested += pos - start
        operator.retract(retract.entity_id, retract.kind)
        start = pos
    if start < n:
        ingest_batch(batch if start == 0 else batch[start:n])
        ingested += n - start
    return ingested


def _apply_ops(operator, ops: Sequence[ShardOp]) -> int:
    """Apply one tick's operations in order; returns updates ingested.

    Maximal runs of consecutive updates go through the operator's
    ``ingest_batch`` (Retracts are run boundaries applied in place), so a
    batched ingest path sees whole-tick groups while the op order — and
    therefore the resulting state — matches the one-at-a-time loop.
    """
    if isinstance(ops, BatchShardOps):
        return _apply_batch_ops(operator, ops)
    ingested = 0
    ingest_batch = operator.ingest_batch
    run_start = 0
    for i, op in enumerate(ops):
        if type(op) is Retract:
            if run_start < i:
                ingest_batch(ops[run_start:i])
                ingested += i - run_start
            operator.retract(op.entity_id, op.kind)
            run_start = i + 1
    if run_start < len(ops):
        ingest_batch(ops[run_start:])
        ingested += len(ops) - run_start
    return ingested


class ShardExecutor(abc.ABC):
    """Lifecycle: ``start`` once, then per tick ``ingest``, per Δ
    ``evaluate``, and finally ``close``."""

    @abc.abstractmethod
    def start(
        self, factories: Sequence[OperatorFactory], bounds: Sequence[Rect]
    ) -> None:
        """Instantiate one operator per shard (len(factories) shards)."""

    @abc.abstractmethod
    def ingest(self, shard_ops: Sequence[Sequence[ShardOp]]) -> None:
        """Feed one tick's operation list to every shard."""

    @abc.abstractmethod
    def evaluate(self, now: float) -> List[ShardResult]:
        """Run the Δ-triggered evaluation on every shard and gather."""

    @abc.abstractmethod
    def snapshot_operators(self) -> List[bytes]:
        """Pickle every shard operator's state (checkpoint barrier).

        Call only between intervals — mid-interval operator state is not a
        resumable point.  The blobs restore through
        :meth:`restore_operators` on an executor of the same shard count.
        """

    @abc.abstractmethod
    def restore_operators(self, blobs: Sequence[bytes]) -> None:
        """Replace every shard operator with its pickled snapshot."""

    @abc.abstractmethod
    def apply(self, method: str, *args: object) -> List[object]:
        """Invoke ``operator.method(*args)`` on every shard, gather results.

        Shards whose operator lacks the method contribute ``None`` — the
        broadcast channel for cross-shard control signals (e.g. forced
        shedding escalation) that must also reach off-process workers.
        """

    @abc.abstractmethod
    def apply_each(self, method: str, args_per_shard: Sequence[object]) -> List[object]:
        """Like :meth:`apply`, but shard ``i`` gets ``args_per_shard[i]``
        as its single argument — the scatter/gather channel for per-shard
        control payloads (e.g. migration export key lists).  Shards whose
        operator lacks the method contribute ``None``."""

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """In-process, one-shard-after-another execution (the reference)."""

    name = "serial"

    def __init__(self) -> None:
        self.operators: List[object] = []
        self._ingest_seconds: List[float] = []
        self._tuples: List[int] = []

    def start(
        self, factories: Sequence[OperatorFactory], bounds: Sequence[Rect]
    ) -> None:
        self.operators = [f(b) for f, b in zip(factories, bounds)]
        self._ingest_seconds = [0.0] * len(self.operators)
        self._tuples = [0] * len(self.operators)

    def ingest(self, shard_ops: Sequence[Sequence[ShardOp]]) -> None:
        for shard, ops in enumerate(shard_ops):
            if not ops:
                continue
            started = time.perf_counter()
            self._tuples[shard] += _apply_ops(self.operators[shard], ops)
            self._ingest_seconds[shard] += time.perf_counter() - started

    def evaluate(self, now: float) -> List[ShardResult]:
        results = []
        for shard, operator in enumerate(self.operators):
            matches = operator.evaluate(now)
            results.append(
                ShardResult(
                    matches=matches,
                    stats=IntervalStats(
                        t=now,
                        ingest_seconds=self._ingest_seconds[shard],
                        join_seconds=operator.last_join_seconds,
                        maintenance_seconds=operator.last_maintenance_seconds,
                        result_count=len(matches),
                        tuple_count=self._tuples[shard],
                    ),
                    counters=operator.join_counters(),
                )
            )
            self._ingest_seconds[shard] = 0.0
            self._tuples[shard] = 0
        return results

    def snapshot_operators(self) -> List[bytes]:
        return [pickle.dumps(operator) for operator in self.operators]

    def restore_operators(self, blobs: Sequence[bytes]) -> None:
        if len(blobs) != len(self.operators):
            raise ValueError(
                f"snapshot has {len(blobs)} shards, executor has "
                f"{len(self.operators)}"
            )
        self.operators = [pickle.loads(blob) for blob in blobs]

    def apply(self, method: str, *args: object) -> List[object]:
        return [
            getattr(operator, method)(*args)
            if hasattr(operator, method)
            else None
            for operator in self.operators
        ]

    def apply_each(self, method: str, args_per_shard: Sequence[object]) -> List[object]:
        if len(args_per_shard) != len(self.operators):
            raise ValueError(
                f"got {len(args_per_shard)} per-shard args for "
                f"{len(self.operators)} shards"
            )
        return [
            getattr(operator, method)(args)
            if hasattr(operator, method)
            else None
            for operator, args in zip(self.operators, args_per_shard)
        ]


def _shard_worker(conn, factory: OperatorFactory, bounds: Rect) -> None:
    """Worker-process loop: build the operator, then serve the pipe."""
    operator = factory(bounds)
    ingest_seconds = 0.0
    tuples = 0
    while True:
        message = conn.recv()
        tag = message[0]
        if tag == "ingest":
            started = time.perf_counter()
            tuples += _apply_ops(operator, message[1])
            ingest_seconds += time.perf_counter() - started
        elif tag == "evaluate":
            now = message[1]
            matches = operator.evaluate(now)
            stats = IntervalStats(
                t=now,
                ingest_seconds=ingest_seconds,
                join_seconds=operator.last_join_seconds,
                maintenance_seconds=operator.last_maintenance_seconds,
                result_count=len(matches),
                tuple_count=tuples,
            )
            conn.send((matches, stats, operator.join_counters()))
            ingest_seconds = 0.0
            tuples = 0
        elif tag == "snapshot":
            conn.send(pickle.dumps(operator))
        elif tag == "restore":
            operator = pickle.loads(message[1])
            ingest_seconds = 0.0
            tuples = 0
        elif tag == "apply":
            method, args = message[1], message[2]
            bound = getattr(operator, method, None)
            conn.send(bound(*args) if bound is not None else None)
        elif tag == "close":
            conn.close()
            return


class ProcessExecutor(ShardExecutor):
    """One persistent worker process per shard, fed over pipes.

    Workers build their operator locally from the (picklable) factory, so
    no operator state ever crosses a process boundary — only updates in
    and (matches, stats) out.
    """

    name = "process"

    def __init__(self, mp_context: str | None = None) -> None:
        self._ctx = multiprocessing.get_context(mp_context)
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._pipes: List = []

    def start(
        self, factories: Sequence[OperatorFactory], bounds: Sequence[Rect]
    ) -> None:
        for factory, shard_bounds in zip(factories, bounds):
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_shard_worker,
                args=(child_conn, factory, shard_bounds),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._pipes.append(parent_conn)

    def ingest(self, shard_ops: Sequence[Sequence[ShardOp]]) -> None:
        # Fire-and-forget: workers ingest while the parent routes the next
        # tick.  Empty lists are skipped — no message, no wakeup.  Columnar
        # op sets ship whole (one column-set pickle per shard); object
        # lists are materialised defensively before crossing the pipe.
        for pipe, ops in zip(self._pipes, shard_ops):
            if ops:
                payload = ops if isinstance(ops, BatchShardOps) else list(ops)
                pipe.send(("ingest", payload))

    def evaluate(self, now: float) -> List[ShardResult]:
        for pipe in self._pipes:
            pipe.send(("evaluate", now))
        results = []
        for pipe in self._pipes:
            matches, stats, counters = pipe.recv()
            results.append(
                ShardResult(matches=matches, stats=stats, counters=counters)
            )
        return results

    def snapshot_operators(self) -> List[bytes]:
        for pipe in self._pipes:
            pipe.send(("snapshot",))
        return [pipe.recv() for pipe in self._pipes]

    def restore_operators(self, blobs: Sequence[bytes]) -> None:
        if len(blobs) != len(self._pipes):
            raise ValueError(
                f"snapshot has {len(blobs)} shards, executor has "
                f"{len(self._pipes)}"
            )
        for pipe, blob in zip(self._pipes, blobs):
            pipe.send(("restore", blob))

    def apply(self, method: str, *args: object) -> List[object]:
        for pipe in self._pipes:
            pipe.send(("apply", method, args))
        return [pipe.recv() for pipe in self._pipes]

    def apply_each(self, method: str, args_per_shard: Sequence[object]) -> List[object]:
        if len(args_per_shard) != len(self._pipes):
            raise ValueError(
                f"got {len(args_per_shard)} per-shard args for "
                f"{len(self._pipes)} shards"
            )
        # Reuses the "apply" worker message with a one-element args tuple;
        # pipe FIFO ordering guarantees all previously sent ingests are
        # applied before the call runs, so exports see a settled shard.
        for pipe, args in zip(self._pipes, args_per_shard):
            pipe.send(("apply", method, (args,)))
        return [pipe.recv() for pipe in self._pipes]

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("close",))
                pipe.close()
            except (OSError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._pipes = []
        self._processes = []

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def make_executor(name: str) -> ShardExecutor:
    """Executor by name: ``serial`` or ``process``."""
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor()
    raise ValueError(f"unknown executor {name!r} (choose serial or process)")
