"""Adaptive re-sharding: deciding when and where to move shard borders.

Static spatial tilings lose to skew: SCUBA workloads are convoys and
hotspots, so one downtown tile can dominate the interval critical path
while suburb shards idle.  The established answer is load-adaptive
repartitioning — kd-tree region splits driven by runtime load (Tauheed et
al., arXiv:1211.4414) and grid migration protocols for continuous range
queries (Zhu & Yu, arXiv:2206.01905).  :class:`ReshardController` is that
policy for the sharded engine:

* **Telemetry** — every interval the engine's pipeline hook feeds the
  controller per-shard stage timings (EWMA-smoothed, exported as
  telemetry) and per-shard object/query counts from the partitioner.
* **Decision** — at every ``interval``-th boundary, under a cooldown and a
  minimum-gain threshold (hysteresis), the controller compares the
  hottest shard's owned-entity count against the mean.  Decisions are
  keyed on *counts*, not timings: counts are a pure function of the
  update stream, so a resumed run replays the exact reshard schedule of
  an uninterrupted one — timing-keyed decisions would be irreproducible.
* **Action** — one :meth:`~repro.parallel.partition.AdaptiveShardPlan.rebalance`
  step: fold the cheapest pair of sibling leaf regions (freeing a shard
  id) and re-split the hot region at the load median of its entities
  along its wider axis.  When the hot leaf's own sibling is the cheapest
  victim this degenerates to moving their shared border — a *resplit*.

The controller only proposes plans; executing the migration (state export
from the old owner shard, replay into the gaining shards, retraction from
the losing ones) is the engine's job.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import Rect
from .partition import AdaptiveShardPlan, SpatialPartitioner

__all__ = ["ReshardAction", "ReshardConfig", "ReshardController"]


@dataclass
class ReshardConfig:
    """Hysteresis knobs of the reshard policy."""

    #: Consider a rebalance every N intervals (decision cadence).
    interval: int = 4
    #: Minimum intervals between *executed* reshards (cooldown).
    cooldown: int = 4
    #: Trigger only when max/mean owned-entity imbalance exceeds this.
    imbalance_threshold: float = 1.25
    #: Do nothing for populations smaller than this (not worth moving).
    min_entities: int = 64
    #: Minimum predicted reduction of the hot shard's count, as a
    #: fraction — the min-gain threshold that stops border thrash.
    min_gain: float = 0.1
    #: EWMA weight of the newest per-shard join timing observation.
    ewma: float = 0.5

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {self.cooldown}")
        if self.imbalance_threshold < 1.0:
            raise ValueError(
                f"imbalance_threshold must be >= 1.0, "
                f"got {self.imbalance_threshold}"
            )
        if not 0.0 <= self.min_gain < 1.0:
            raise ValueError(f"min_gain must be in [0, 1), got {self.min_gain}")
        if not 0.0 < self.ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {self.ewma}")


@dataclass
class ReshardAction:
    """A proposed plan transition plus its accounting."""

    plan: AdaptiveShardPlan
    splits: int
    merges: int
    #: ``"resplit"`` (border moved between siblings), ``"merge_split"``
    #: (cold pair folded, hot region split with the freed id), or
    #: ``"replan"`` (whole tree rebuilt along load medians — K-1 merges
    #: and K-1 splits in one transition).
    kind: str


class ReshardController:
    """Split-hot / merge-cold decisions under hysteresis (see module doc)."""

    def __init__(self, config: Optional[ReshardConfig] = None) -> None:
        self.config = config if config is not None else ReshardConfig()
        #: Intervals observed so far (the decision clock).
        self.intervals_seen = 0
        #: Interval index of the last executed reshard.
        self.last_reshard = -(10**9)
        #: EWMA of per-shard join seconds — exported telemetry; never
        #: consulted for decisions (see module docstring).
        self.join_ewma: List[float] = []
        #: Executed transitions: (interval, kind, new epoch).
        self.history: List[Tuple[int, str, int]] = []

    # -- telemetry -----------------------------------------------------------

    def observe(self, shard_join_seconds) -> None:
        """Fold one interval's per-shard join timings into the EWMA."""
        self.intervals_seen += 1
        timings = list(shard_join_seconds)
        if len(self.join_ewma) != len(timings):
            self.join_ewma = timings
            return
        w = self.config.ewma
        self.join_ewma = [
            (1.0 - w) * old + w * new_t
            for old, new_t in zip(self.join_ewma, timings)
        ]

    # -- decision ------------------------------------------------------------

    def propose(
        self, plan: AdaptiveShardPlan, partitioner: SpatialPartitioner
    ) -> Optional[ReshardAction]:
        """A rebalance for the current load, or ``None`` under hysteresis."""
        cfg = self.config
        if plan.num_shards < 2:
            return None
        if self.intervals_seen % cfg.interval != 0:
            return None
        if self.intervals_seen - self.last_reshard < cfg.cooldown:
            return None
        counts = partitioner.owner_counts()
        total = sum(counts)
        if total < cfg.min_entities:
            return None
        mean = total / len(counts)
        hot = max(range(len(counts)), key=lambda s: (counts[s], -s))
        if counts[hot] <= cfg.imbalance_threshold * mean:
            return None

        ceiling = counts[hot] * (1.0 - cfg.min_gain)
        best: Optional[Tuple[float, ReshardAction]] = None
        for a, b in plan.sibling_leaf_pairs():
            if hot in (a, b):
                # The hot leaf's own sibling pair: re-split the parent
                # region at its load median (a pure border move).
                region = _union(plan.tile(a), plan.tile(b))
                survivor = min(a, b)
                split = self._median_split(
                    partitioner, (a, b), region, plan.bounds
                )
                if split is None:
                    continue
                axis, threshold, n_low, n_high = split
                predicted = max(n_low, n_high)
                if predicted > ceiling:
                    continue
                action = ReshardAction(
                    plan.rebalance((a, b), survivor, axis, threshold),
                    splits=1,
                    merges=0,
                    kind="resplit",
                )
            else:
                # Fold the cold pair, split the hot region with the freed
                # shard id.
                combined = counts[a] + counts[b]
                split = self._median_split(
                    partitioner, (hot,), plan.tile(hot), plan.bounds
                )
                if split is None:
                    continue
                axis, threshold, n_low, n_high = split
                predicted = max(combined, n_low, n_high)
                if predicted > ceiling:
                    continue
                action = ReshardAction(
                    plan.rebalance((a, b), hot, axis, threshold),
                    splits=1,
                    merges=1,
                    kind="merge_split",
                )
            if best is None or predicted < best[0]:
                best = (predicted, action)
        # Global candidate: rebuild the whole tree along load medians.
        # Single merge/split steps can strand load behind the tree shape
        # (only *sibling* leaves are mergeable); the replan escapes that.
        # It migrates far more entities than a local move, so it must be
        # strictly better than every single-step candidate to win.
        all_positions = partitioner.owned_positions(range(len(counts)))
        if all_positions:
            replanned = plan.replan(all_positions)
            new_counts = [0] * len(counts)
            for x, y in all_positions:
                new_counts[replanned.owner_of(x, y)] += 1
            predicted = float(max(new_counts))
            if predicted <= ceiling and (best is None or predicted < best[0]):
                best = (
                    predicted,
                    ReshardAction(
                        replanned,
                        splits=len(counts) - 1,
                        merges=len(counts) - 1,
                        kind="replan",
                    ),
                )
        if best is None:
            return None
        self.last_reshard = self.intervals_seen
        action = best[1]
        self.history.append((self.intervals_seen, action.kind, action.plan.epoch))
        return action

    @staticmethod
    def _median_split(
        partitioner: SpatialPartitioner,
        shards: Tuple[int, ...],
        region,
        bounds,
    ) -> Optional[Tuple[int, float, int, int]]:
        """Load-median threshold for ``region`` along its wider axis.

        Returns ``(axis, threshold, n_low, n_high)`` with both sides
        non-empty and the threshold strictly inside the region, or
        ``None`` when the entity distribution is degenerate (all on one
        coordinate)."""
        positions = partitioner.owned_positions(shards)
        if len(positions) < 2:
            return None
        axis = 0 if region.width >= region.height else 1
        coords = sorted(p[axis] for p in positions)
        threshold = coords[len(coords) // 2]
        n_low = bisect_left(coords, threshold)
        if n_low == 0:
            # Median hit the minimum: use the next distinct coordinate so
            # the low side (strictly below the threshold) is non-empty.
            hi = bisect_right(coords, threshold)
            if hi >= len(coords):
                return None
            threshold = coords[hi]
            n_low = hi
        lo_edge = region.min_x if axis == 0 else region.min_y
        hi_edge = region.max_x if axis == 0 else region.max_y
        if not (lo_edge < threshold < hi_edge):
            return None
        return axis, threshold, n_low, len(coords) - n_low

    # -- checkpoint ----------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Picklable decision state — resumed runs must replay the same
        reshard schedule as an uninterrupted one."""
        return {
            "intervals_seen": self.intervals_seen,
            "last_reshard": self.last_reshard,
            "join_ewma": list(self.join_ewma),
            "history": list(self.history),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self.intervals_seen = state["intervals_seen"]
        self.last_reshard = state["last_reshard"]
        self.join_ewma = list(state["join_ewma"])
        self.history = list(state["history"])

    def __repr__(self) -> str:
        return (
            f"ReshardController({self.intervals_seen} intervals, "
            f"{len(self.history)} reshards)"
        )


def _union(a: Rect, b: Rect) -> Rect:
    return Rect(
        min(a.min_x, b.min_x),
        min(a.min_y, b.min_y),
        max(a.max_x, b.max_x),
        max(a.max_y, b.max_y),
    )
