"""The sharded execution engine.

:class:`ShardedEngine` mirrors :class:`~repro.streams.engine.StreamEngine`'s
API (``run_interval`` / ``run`` / ``stats`` / a sink) but evaluates the
workload over K spatial shards, each running its own operator instance
over the shard's halo-expanded bounds:

1. every tick, the generator's updates are routed by the
   :class:`~repro.parallel.partition.SpatialPartitioner` — each update is
   delivered to every shard whose halo contains it, and shards the entity
   left receive a :class:`~repro.parallel.partition.Retract`;
2. the executor ingests each shard's operation list (concurrently with
   routing, for the process executor);
3. every Δ, the executor evaluates all shards and the
   :class:`~repro.parallel.merge.ResultMerger` owner-filters the per-shard
   answers into one deduplicated result list for the sink.

With the **serial** executor the result stream is bit-identical to the
process executor's, and — for exact operators without load shedding — to
the single-process ``StreamEngine``'s answer set, which is how the whole
subsystem is pinned by tests.

Engine-level interval phases are redefined for sharded execution (the
per-shard truth is kept in :attr:`ShardedIntervalStats.shard_stats`):
``ingest_seconds`` is routing + dispatch in the driver, ``join_seconds``
is the wall-clock of the parallel evaluate scatter/gather (the critical
path), and ``maintenance_seconds`` is the result merge.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from math import sqrt
from typing import List, Optional, Tuple, Union

from ..core import NaiveJoin, RegularConfig, RegularGridJoin, Scuba, ScubaConfig
from ..generator import NetworkBasedGenerator
from ..geometry import Rect
from ..network import DEFAULT_BOUNDS
from ..streams import (
    EngineConfig,
    IntervalStats,
    ResultSink,
    RunStats,
    Timer,
    merge_counters,
)
from .executor import ShardExecutor, make_executor
from .merge import ResultMerger
from .partition import Retract, ShardPlan, SpatialPartitioner, derive_halo_margin

__all__ = [
    "NaiveShardFactory",
    "RegularShardFactory",
    "ScubaShardFactory",
    "ShardedEngine",
    "ShardedIntervalStats",
    "ShardedRunStats",
]


# -- operator factories ------------------------------------------------------
#
# Top-level classes (not closures) so the process executor can pickle them
# into worker processes.  Each deep-copies its config per shard: shards must
# never share mutable state (e.g. a stateful shedding policy's RNG), or the
# serial and process executors would diverge.


@dataclass
class ScubaShardFactory:
    """Builds one SCUBA operator per shard.

    ``max_query_extent`` must be at least the largest range window the
    workload produces — it feeds the halo-margin derivation.  The shard's
    ClusterGrid resolution is scaled down with the shard's area so cell
    size (relative to ``Θ_D``) matches the single-process configuration.
    """

    config: ScubaConfig = field(default_factory=ScubaConfig)
    max_query_extent: Tuple[float, float] = (50.0, 50.0)
    scale_grid: bool = True

    @property
    def halo_margin(self) -> float:
        return derive_halo_margin(self.config.theta_d, self.max_query_extent)

    def _scaled_grid_size(self, bounds: Rect) -> int:
        if not self.scale_grid:
            return self.config.grid_size
        world = self.config.bounds
        scale = sqrt(bounds.area / world.area) if world.area > 0 else 1.0
        return max(1, round(self.config.grid_size * min(scale, 1.0)))

    def __call__(self, bounds: Rect) -> Scuba:
        config = copy.deepcopy(self.config)
        config.bounds = bounds
        config.grid_size = self._scaled_grid_size(bounds)
        return Scuba(config)


@dataclass
class RegularShardFactory:
    """Builds one regular-grid operator per shard."""

    config: RegularConfig = field(default_factory=RegularConfig)
    max_query_extent: Tuple[float, float] = (50.0, 50.0)
    scale_grid: bool = True

    @property
    def halo_margin(self) -> float:
        # No clusters to replicate context for: the query half-diagonal
        # alone makes the merged grid join exact.
        return derive_halo_margin(0.0, self.max_query_extent)

    def __call__(self, bounds: Rect) -> RegularGridJoin:
        config = copy.deepcopy(self.config)
        config.bounds = bounds
        if self.scale_grid:
            world = self.config.bounds
            scale = sqrt(bounds.area / world.area) if world.area > 0 else 1.0
            config.grid_size = max(1, round(self.config.grid_size * min(scale, 1.0)))
        return RegularGridJoin(config)


@dataclass
class NaiveShardFactory:
    """Builds one naive nested-loop operator per shard (tests/oracles)."""

    max_query_extent: Tuple[float, float] = (50.0, 50.0)

    @property
    def halo_margin(self) -> float:
        return derive_halo_margin(0.0, self.max_query_extent)

    def __call__(self, bounds: Rect) -> NaiveJoin:
        return NaiveJoin()


# -- stats -------------------------------------------------------------------


@dataclass
class ShardedIntervalStats(IntervalStats):
    """One Δ interval of sharded execution, with per-shard detail."""

    #: Shard-local stats (ingest/join/maintenance as measured in the shard).
    shard_stats: Tuple[IntervalStats, ...] = ()
    #: Seconds the driver spent routing updates to shards.
    route_seconds: float = 0.0
    #: Seconds the driver spent merging/deduplicating shard answers.
    merge_seconds: float = 0.0
    #: Matches dropped by the merger as halo duplicates.
    duplicates_dropped: int = 0
    #: Tuples delivered to shards (>= tuple_count; excess = halo copies).
    deliveries: int = 0
    #: Retract hand-offs issued this interval.
    retractions: int = 0

    @property
    def max_shard_join_seconds(self) -> float:
        return max((s.join_seconds for s in self.shard_stats), default=0.0)

    @property
    def mean_shard_join_seconds(self) -> float:
        if not self.shard_stats:
            return 0.0
        return sum(s.join_seconds for s in self.shard_stats) / len(self.shard_stats)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data.update(
            route_seconds=self.route_seconds,
            merge_seconds=self.merge_seconds,
            duplicates_dropped=self.duplicates_dropped,
            deliveries=self.deliveries,
            retractions=self.retractions,
            shard_join_seconds=[s.join_seconds for s in self.shard_stats],
            shard_result_counts=[s.result_count for s in self.shard_stats],
        )
        return data


@dataclass
class ShardedRunStats(RunStats):
    """Aggregate sharded-run statistics with load-imbalance metrics."""

    num_shards: int = 1

    # -- per-shard aggregation ----------------------------------------------

    def shard_join_seconds(self) -> List[float]:
        """Total join seconds per shard across the run."""
        totals = [0.0] * self.num_shards
        for interval in self.intervals:
            for shard, s in enumerate(getattr(interval, "shard_stats", ())):
                totals[shard] += s.join_seconds
        return totals

    @property
    def max_shard_join_seconds(self) -> float:
        return max(self.shard_join_seconds(), default=0.0)

    @property
    def mean_shard_join_seconds(self) -> float:
        totals = self.shard_join_seconds()
        return sum(totals) / len(totals) if totals else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-shard total join time (1.0 = perfectly balanced).

        The paper-shaped cost model makes this the quantity that caps
        parallel speedup: the interval's join finishes when the slowest
        shard does.
        """
        mean = self.mean_shard_join_seconds
        if mean <= 0.0:
            return 1.0
        return self.max_shard_join_seconds / mean

    @property
    def total_deliveries(self) -> int:
        return sum(getattr(s, "deliveries", s.tuple_count) for s in self.intervals)

    @property
    def replication_factor(self) -> float:
        """Mean shard copies per generated tuple (halo overhead)."""
        tuples = self.total_tuple_count
        if tuples == 0:
            return 1.0
        return self.total_deliveries / tuples

    @property
    def total_duplicates_dropped(self) -> int:
        return sum(getattr(s, "duplicates_dropped", 0) for s in self.intervals)

    @property
    def total_route_seconds(self) -> float:
        return sum(getattr(s, "route_seconds", 0.0) for s in self.intervals)

    @property
    def total_merge_seconds(self) -> float:
        return sum(getattr(s, "merge_seconds", 0.0) for s in self.intervals)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["parallel"] = {
            "num_shards": self.num_shards,
            "shard_join_seconds": self.shard_join_seconds(),
            "max_shard_join_seconds": self.max_shard_join_seconds,
            "mean_shard_join_seconds": self.mean_shard_join_seconds,
            "load_imbalance": self.load_imbalance,
            "replication_factor": self.replication_factor,
            "duplicates_dropped": self.total_duplicates_dropped,
            "route_seconds": self.total_route_seconds,
            "merge_seconds": self.total_merge_seconds,
        }
        return data

    def summary(self) -> str:
        return (
            super().summary()
            + f" | {self.num_shards} shards | "
            f"imbalance {self.load_imbalance:.2f} | "
            f"replication {self.replication_factor:.2f}"
        )


# -- the engine --------------------------------------------------------------


class ShardedEngine:
    """Drives generator → partitioner → K shard operators → merger → sink."""

    def __init__(
        self,
        generator: NetworkBasedGenerator,
        operator_factory,
        *,
        shards: Union[int, ShardPlan] = 2,
        sink: Optional[ResultSink] = None,
        config: Optional[EngineConfig] = None,
        executor: Union[str, ShardExecutor] = "serial",
        bounds: Optional[Rect] = None,
        halo_margin: Optional[float] = None,
    ) -> None:
        self.generator = generator
        self.operator_factory = operator_factory
        self.sink = sink if sink is not None else ResultSink()
        self.config = config if config is not None else EngineConfig()
        if isinstance(shards, ShardPlan):
            self.plan = shards
        else:
            if halo_margin is None:
                halo_margin = getattr(operator_factory, "halo_margin", None)
                if halo_margin is None:
                    raise ValueError(
                        "halo_margin is required when the operator factory "
                        "exposes none"
                    )
            world = bounds if bounds is not None else DEFAULT_BOUNDS
            self.plan = ShardPlan.split(world, shards, halo_margin)
        self.partitioner = SpatialPartitioner(self.plan)
        self.merger = ResultMerger(self.partitioner)
        self.executor = (
            make_executor(executor) if isinstance(executor, str) else executor
        )
        k = self.plan.num_shards
        self.executor.start(
            [operator_factory] * k,
            [self.plan.halo_rect(shard) for shard in range(k)],
        )
        self.stats = ShardedRunStats(num_shards=k)
        self._closed = False

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def run_interval(self) -> ShardedIntervalStats:
        """Advance one full Δ interval: route ticks, then evaluate+merge."""
        generate_timer = Timer()
        route_timer = Timer()
        ingest_timer = Timer()
        tuple_count = 0
        deliveries_before = self.partitioner.deliveries
        retractions_before = self.partitioner.retractions
        k = self.plan.num_shards
        for _ in range(self.config.ticks_per_interval):
            with generate_timer:
                updates = self.generator.tick(self.config.tick)
            tuple_count += len(updates)
            with route_timer:
                shard_ops: List[List[object]] = [[] for _ in range(k)]
                for update in updates:
                    decision = self.partitioner.route(update)
                    for shard in decision.targets:
                        shard_ops[shard].append(update)
                    if decision.leavers:
                        retract = Retract(update.entity_id, update.kind)
                        for shard in decision.leavers:
                            shard_ops[shard].append(retract)
            with ingest_timer:
                self.executor.ingest(shard_ops)
        now = self.generator.time
        join_timer = Timer()
        with join_timer:
            results = self.executor.evaluate(now)
        merge_timer = Timer()
        with merge_timer:
            outcome = self.merger.merge([r.matches for r in results])
        self.sink.accept(outcome.matches, now)
        stats = ShardedIntervalStats(
            t=now,
            generate_seconds=generate_timer.seconds,
            ingest_seconds=route_timer.seconds + ingest_timer.seconds,
            join_seconds=join_timer.seconds,
            maintenance_seconds=merge_timer.seconds,
            result_count=len(outcome.matches),
            tuple_count=tuple_count,
            shard_stats=tuple(r.stats for r in results),
            route_seconds=route_timer.seconds,
            merge_seconds=merge_timer.seconds,
            duplicates_dropped=outcome.duplicates_dropped,
            deliveries=self.partitioner.deliveries - deliveries_before,
            retractions=self.partitioner.retractions - retractions_before,
        )
        self.stats.add(stats)
        self.stats.record_counters(merge_counters(r.counters for r in results))
        return stats

    def run(self, intervals: int) -> ShardedRunStats:
        """Run ``intervals`` consecutive Δ intervals and return the stats."""
        if intervals < 0:
            raise ValueError(f"intervals must be non-negative, got {intervals}")
        for _ in range(intervals):
            self.run_interval()
        return self.stats

    def close(self) -> None:
        """Shut down the executor (worker processes, if any)."""
        if not self._closed:
            self.executor.close()
            self._closed = True

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
