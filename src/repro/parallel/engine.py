"""The sharded execution engine.

:class:`ShardedEngine` mirrors :class:`~repro.streams.engine.StreamEngine`'s
API (``run_interval`` / ``run`` / ``stats`` / a sink) but evaluates the
workload over K spatial shards, each running its own operator instance
over the shard's halo-expanded bounds:

1. every tick, the generator's updates are routed by the
   :class:`~repro.parallel.partition.SpatialPartitioner` — each update is
   delivered to every shard whose halo contains it, and shards the entity
   left receive a :class:`~repro.parallel.partition.Retract`;
2. the executor ingests each shard's operation list (concurrently with
   routing, for the process executor);
3. every Δ, the executor evaluates all shards and the
   :class:`~repro.parallel.merge.ResultMerger` owner-filters the per-shard
   answers into one deduplicated result list for the sink.

With the **serial** executor the result stream is bit-identical to the
process executor's, and — for exact operators without load shedding — to
the single-process ``StreamEngine``'s answer set, which is how the whole
subsystem is pinned by tests.

Both engines share one interval loop: :class:`ShardedEngine` is a thin
driver over :class:`~repro.pipeline.EvaluationPipeline` with a
:class:`ShardedStagePlan` supplying the stage bodies — routing/dispatch in
``ingest``, the scatter/gather in ``join``, the owner-filtered merge in
``post_join_maintenance``.  (Per-shard load shedding runs *inside* the
workers' evaluation, so the driver's ``shed`` stage is an empty, hookable
boundary.)

Engine-level interval phases are redefined for sharded execution (the
per-shard truth is kept in :attr:`ShardedIntervalStats.shard_stats`):
``ingest_seconds`` is routing + dispatch in the driver, ``join_seconds``
is the wall-clock of the parallel evaluate scatter/gather (the critical
path), and ``maintenance_seconds`` is the result merge.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from math import sqrt
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core import (
    IncrementalGridConfig,
    IncrementalGridJoin,
    NaiveJoin,
    RegularConfig,
    RegularGridJoin,
    Scuba,
    ScubaConfig,
)
from ..generator import EntityKind, NetworkBasedGenerator, TickBatch
from ..geometry import Rect
from ..network import DEFAULT_BOUNDS
from ..pipeline.context import EvaluationContext
from ..pipeline.hooks import PipelineHook
from ..pipeline.pipeline import EvaluationPipeline
from ..pipeline.plan import StagePlan
from ..streams import (
    EngineConfig,
    IntervalStats,
    ResultSink,
    RunStats,
    Timer,
    merge_counters,
)
from .executor import BatchShardOps, ShardExecutor, make_executor
from .merge import ResultMerger
from .partition import (
    AdaptiveShardPlan,
    Retract,
    ShardPlan,
    SpatialPartitioner,
    derive_halo_margin,
)
from .reshard import ReshardConfig, ReshardController

__all__ = [
    "IncrementalGridShardFactory",
    "NaiveShardFactory",
    "RegularShardFactory",
    "ScubaShardFactory",
    "ShardedEngine",
    "ShardedIntervalStats",
    "ShardedRunStats",
    "ShardedStagePlan",
]


# -- operator factories ------------------------------------------------------
#
# Top-level classes (not closures) so the process executor can pickle them
# into worker processes.  Each deep-copies its config per shard: shards must
# never share mutable state (e.g. a stateful shedding policy's RNG), or the
# serial and process executors would diverge.


def _scaled_grid_size(
    world: Rect, grid_size: int, bounds: Rect, scale_grid: bool
) -> int:
    """Shard grid resolution scaled with √(shard area / world area).

    Keeps cell size (relative to Θ_D / the query extent) matched to the
    single-process configuration; never scales *up* past the configured
    resolution.
    """
    if not scale_grid:
        return grid_size
    scale = sqrt(bounds.area / world.area) if world.area > 0 else 1.0
    return max(1, round(grid_size * min(scale, 1.0)))


@dataclass
class ScubaShardFactory:
    """Builds one SCUBA operator per shard.

    ``max_query_extent`` must be at least the largest range window the
    workload produces — it feeds the halo-margin derivation.  The shard's
    ClusterGrid resolution is scaled down with the shard's area so cell
    size (relative to ``Θ_D``) matches the single-process configuration.
    """

    config: ScubaConfig = field(default_factory=ScubaConfig)
    max_query_extent: Tuple[float, float] = (50.0, 50.0)
    scale_grid: bool = True

    @property
    def halo_margin(self) -> float:
        return derive_halo_margin(self.config.theta_d, self.max_query_extent)

    def __call__(self, bounds: Rect) -> Scuba:
        config = copy.deepcopy(self.config)
        config.bounds = bounds
        config.grid_size = _scaled_grid_size(
            self.config.bounds, self.config.grid_size, bounds, self.scale_grid
        )
        return Scuba(config)


@dataclass
class RegularShardFactory:
    """Builds one regular-grid operator per shard."""

    config: RegularConfig = field(default_factory=RegularConfig)
    max_query_extent: Tuple[float, float] = (50.0, 50.0)
    scale_grid: bool = True

    @property
    def halo_margin(self) -> float:
        # No clusters to replicate context for: the query half-diagonal
        # alone makes the merged grid join exact.
        return derive_halo_margin(0.0, self.max_query_extent)

    def __call__(self, bounds: Rect) -> RegularGridJoin:
        config = copy.deepcopy(self.config)
        config.bounds = bounds
        config.grid_size = _scaled_grid_size(
            self.config.bounds, self.config.grid_size, bounds, self.scale_grid
        )
        return RegularGridJoin(config)


@dataclass
class IncrementalGridShardFactory:
    """Builds one incremental (answer-maintaining) grid operator per shard.

    Like the regular baseline, exactness after the owner-filtered merge
    needs only the query half-diagonal as halo; the per-query answer sets
    stay consistent under halo hand-offs because
    :meth:`~repro.core.IncrementalGridJoin.retract` removes an entity's
    answer contributions along with its index entries.
    """

    config: IncrementalGridConfig = field(default_factory=IncrementalGridConfig)
    max_query_extent: Tuple[float, float] = (50.0, 50.0)
    scale_grid: bool = True

    @property
    def halo_margin(self) -> float:
        return derive_halo_margin(0.0, self.max_query_extent)

    def __call__(self, bounds: Rect) -> IncrementalGridJoin:
        config = copy.deepcopy(self.config)
        config.bounds = bounds
        config.grid_size = _scaled_grid_size(
            self.config.bounds, self.config.grid_size, bounds, self.scale_grid
        )
        return IncrementalGridJoin(config)


@dataclass
class NaiveShardFactory:
    """Builds one naive nested-loop operator per shard (tests/oracles)."""

    max_query_extent: Tuple[float, float] = (50.0, 50.0)

    @property
    def halo_margin(self) -> float:
        return derive_halo_margin(0.0, self.max_query_extent)

    def __call__(self, bounds: Rect) -> NaiveJoin:
        return NaiveJoin()


# -- stats -------------------------------------------------------------------


@dataclass
class ShardedIntervalStats(IntervalStats):
    """One Δ interval of sharded execution, with per-shard detail."""

    #: Shard-local stats (ingest/join/maintenance as measured in the shard).
    shard_stats: Tuple[IntervalStats, ...] = ()
    #: Seconds the driver spent routing updates to shards.
    route_seconds: float = 0.0
    #: Seconds the driver spent merging/deduplicating shard answers.
    merge_seconds: float = 0.0
    #: Matches dropped by the merger as halo duplicates.
    duplicates_dropped: int = 0
    #: Tuples delivered to shards (>= tuple_count; excess = halo copies).
    deliveries: int = 0
    #: Retract hand-offs issued this interval.
    retractions: int = 0
    #: Shard-plan version the interval was dispatched under (adaptive
    #: sharding increments it per executed reshard; 0 = initial plan).
    plan_epoch: int = 0

    @property
    def max_shard_join_seconds(self) -> float:
        return max((s.join_seconds for s in self.shard_stats), default=0.0)

    @property
    def mean_shard_join_seconds(self) -> float:
        if not self.shard_stats:
            return 0.0
        return sum(s.join_seconds for s in self.shard_stats) / len(self.shard_stats)

    def extra_fields(self) -> Dict[str, Any]:
        return {
            "route_seconds": self.route_seconds,
            "merge_seconds": self.merge_seconds,
            "duplicates_dropped": self.duplicates_dropped,
            "deliveries": self.deliveries,
            "retractions": self.retractions,
            "plan_epoch": self.plan_epoch,
            "shard_join_seconds": [s.join_seconds for s in self.shard_stats],
            "shard_result_counts": [s.result_count for s in self.shard_stats],
        }


@dataclass
class ShardedRunStats(RunStats):
    """Aggregate sharded-run statistics with load-imbalance metrics."""

    num_shards: int = 1

    # -- per-shard aggregation ----------------------------------------------

    def shard_join_seconds(self) -> List[float]:
        """Total join seconds per shard across the run."""
        totals = [0.0] * self.num_shards
        for interval in self.intervals:
            for shard, s in enumerate(getattr(interval, "shard_stats", ())):
                totals[shard] += s.join_seconds
        return totals

    @property
    def max_shard_join_seconds(self) -> float:
        return max(self.shard_join_seconds(), default=0.0)

    @property
    def mean_shard_join_seconds(self) -> float:
        totals = self.shard_join_seconds()
        return sum(totals) / len(totals) if totals else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-shard total join time (1.0 = perfectly balanced).

        The paper-shaped cost model makes this the quantity that caps
        parallel speedup: the interval's join finishes when the slowest
        shard does.
        """
        mean = self.mean_shard_join_seconds
        if mean <= 0.0:
            return 1.0
        return self.max_shard_join_seconds / mean

    @property
    def total_deliveries(self) -> int:
        return sum(getattr(s, "deliveries", s.tuple_count) for s in self.intervals)

    @property
    def replication_factor(self) -> float:
        """Mean shard copies per generated tuple (halo overhead)."""
        tuples = self.total_tuple_count
        if tuples == 0:
            return 1.0
        return self.total_deliveries / tuples

    @property
    def total_duplicates_dropped(self) -> int:
        return int(self.interval_total("duplicates_dropped", default=0))

    @property
    def total_route_seconds(self) -> float:
        return self.interval_total("route_seconds")

    @property
    def total_merge_seconds(self) -> float:
        return self.interval_total("merge_seconds")

    def extra_sections(self) -> Dict[str, Any]:
        return {
            "parallel": {
                "num_shards": self.num_shards,
                "shard_join_seconds": self.shard_join_seconds(),
                "max_shard_join_seconds": self.max_shard_join_seconds,
                "mean_shard_join_seconds": self.mean_shard_join_seconds,
                "load_imbalance": self.load_imbalance,
                "replication_factor": self.replication_factor,
                "duplicates_dropped": self.total_duplicates_dropped,
                "route_seconds": self.total_route_seconds,
                "merge_seconds": self.total_merge_seconds,
            }
        }

    def summary(self) -> str:
        return (
            super().summary()
            + f" | {self.num_shards} shards | "
            f"imbalance {self.load_imbalance:.2f} | "
            f"replication {self.replication_factor:.2f}"
        )


# -- the stage plan ----------------------------------------------------------


class ShardedStagePlan(StagePlan):
    """Routing + scatter/gather over K shards as pipeline stage bodies.

    Owns the plan-private per-interval accounting that the generic
    pipeline has no business knowing about: the routing-only sub-timer
    (routing and dispatch share the ``ingest`` stage), the
    delivery/retraction baselines, and the gathered per-shard results
    between the ``join`` and ``post_join_maintenance`` (merge) stages.
    """

    def __init__(
        self,
        partitioner: SpatialPartitioner,
        executor: ShardExecutor,
        merger: ResultMerger,
    ) -> None:
        self.partitioner = partitioner
        self.executor = executor
        self.merger = merger
        self._route_timer = Timer()
        self._deliveries_before = 0
        self._retractions_before = 0
        self._shard_results: Sequence[Any] = ()
        self._outcome = None
        #: Plan epoch captured at dispatch (adaptive sharding; asserted at
        #: merge time — the plan must not transition mid-interval).
        self._dispatch_epoch = 0
        #: Run-cumulative driver-side counters (reshard accounting) folded
        #: into every interval's operator counters.
        self.extra_counters: Dict[str, Any] = {}

    def begin_interval(self, ctx: EvaluationContext) -> None:
        self._route_timer = Timer()
        self._deliveries_before = self.partitioner.deliveries
        self._retractions_before = self.partitioner.retractions
        self._shard_results = ()
        self._outcome = None
        self._dispatch_epoch = getattr(self.partitioner.plan, "epoch", 0)

    def ingest(self, ctx: EvaluationContext, updates: Sequence[Any]) -> None:
        k = self.partitioner.plan.num_shards
        if isinstance(updates, TickBatch):
            with self._route_timer:
                shard_ops = self._route_batch(updates, k)
            self.executor.ingest(shard_ops)
            return
        with self._route_timer:
            shard_ops: List[List[object]] = [[] for _ in range(k)]
            for update in updates:
                decision = self.partitioner.route(update)
                for shard in decision.targets:
                    shard_ops[shard].append(update)
                if decision.leavers:
                    retract = Retract(update.entity_id, update.kind)
                    for shard in decision.leavers:
                        shard_ops[shard].append(retract)
        self.executor.ingest(shard_ops)

    def _route_batch(self, batch: TickBatch, k: int) -> List[Any]:
        """Route a tick batch by its key/x/y columns into per-shard
        :class:`BatchShardOps` (row selections + positioned Retracts).

        Decisions, bookkeeping, and per-shard op order are identical to
        the object loop — only the materialisation of update rows is
        skipped.  Coordinates come from the batch's scalar (Python-float)
        columns, so the partitioner's pickled placement state stays free
        of numpy scalars.
        """
        route_xy = self.partitioner.route_xy
        keys = batch.keys
        ids = batch.ids
        kinds = batch.kinds
        xs, ys = batch._scalar_columns()[:2]
        rows: List[List[int]] = [[] for _ in range(k)]
        retracts: List[List[Tuple[int, Retract]]] = [[] for _ in range(k)]
        obj, qry = EntityKind.OBJECT, EntityKind.QUERY
        for i in range(len(keys)):
            decision = route_xy(keys[i], xs[i], ys[i])
            for shard in decision.targets:
                rows[shard].append(i)
            if decision.leavers:
                retract = Retract(ids[i], obj if kinds[i] else qry)
                for shard in decision.leavers:
                    retracts[shard].append((len(rows[shard]), retract))
        n = len(keys)
        return [
            # A shard receiving every row (row lists are strictly
            # increasing, so full length means the identity selection)
            # adopts the batch itself — no column copy.
            BatchShardOps(batch if len(r) == n else batch.select(r), rt)
            if (r or rt)
            else []
            for r, rt in zip(rows, retracts)
        ]

    def join(self, ctx: EvaluationContext) -> None:
        self._shard_results = self.executor.evaluate(ctx.now)

    def post_join_maintenance(self, ctx: EvaluationContext) -> None:
        self._outcome = self.merger.merge(
            [r.matches for r in self._shard_results],
            epoch=self._dispatch_epoch,
        )
        ctx.matches = self._outcome.matches

    def interval_stats(self, ctx: EvaluationContext) -> ShardedIntervalStats:
        outcome = self._outcome
        merge_seconds = ctx.stage_timers["post_join_maintenance"].seconds
        return ShardedIntervalStats(
            t=ctx.now,
            generate_seconds=ctx.generate_timer.seconds,
            ingest_seconds=ctx.seconds("ingest", "pre_join_maintenance"),
            join_seconds=ctx.stage_timers["join"].seconds,
            maintenance_seconds=merge_seconds,
            result_count=len(ctx.matches),
            tuple_count=ctx.tuple_count,
            stage_seconds=ctx.stage_seconds(),
            shard_stats=tuple(r.stats for r in self._shard_results),
            route_seconds=self._route_timer.seconds,
            merge_seconds=merge_seconds,
            duplicates_dropped=outcome.duplicates_dropped if outcome else 0,
            deliveries=self.partitioner.deliveries - self._deliveries_before,
            retractions=self.partitioner.retractions - self._retractions_before,
            plan_epoch=self._dispatch_epoch,
        )

    def counters(self, ctx: EvaluationContext) -> Dict[str, Any]:
        counters = merge_counters(r.counters for r in self._shard_results)
        if self.extra_counters:
            counters.update(self.extra_counters)
        return counters


# -- the engine --------------------------------------------------------------


class _ReshardHook(PipelineHook):
    """Feeds load telemetry to the engine's reshard controller.

    Runs after the interval's stats are recorded, so a plan transition
    executed here lands cleanly *between* intervals — the next dispatch
    sees the new epoch, the just-merged results were wholly produced
    under the old one.
    """

    def __init__(self, engine: "ShardedEngine") -> None:
        self.engine = engine

    def on_interval_end(self, ctx, stats) -> None:
        self.engine._maybe_reshard(stats)


class ShardedEngine:
    """Drives generator → partitioner → K shard operators → merger → sink.

    With ``adaptive=True`` (or an :class:`AdaptiveShardPlan` passed as
    ``shards``) the engine additionally runs a
    :class:`~repro.parallel.reshard.ReshardController`: at interval
    boundaries it may rebalance the plan and live-migrate the affected
    entities between shards over the existing update/Retract protocol
    (see :meth:`_execute_reshard`).  Adaptive workers are built over the
    halo-expanded *world* bounds rather than their tile — tiles move under
    them, and the operators' grids clamp out-of-bounds coordinates, so a
    full-resolution world grid stays correct across any plan transition.
    """

    def __init__(
        self,
        generator: NetworkBasedGenerator,
        operator_factory,
        *,
        shards: Union[int, ShardPlan, AdaptiveShardPlan] = 2,
        sink: Optional[ResultSink] = None,
        config: Optional[EngineConfig] = None,
        executor: Union[str, ShardExecutor] = "serial",
        bounds: Optional[Rect] = None,
        halo_margin: Optional[float] = None,
        hooks: Iterable = (),
        adaptive: bool = False,
        reshard_interval: int = 4,
        reshard_config: Optional[ReshardConfig] = None,
    ) -> None:
        self.generator = generator
        self.operator_factory = operator_factory
        self.sink = sink if sink is not None else ResultSink()
        self.config = config if config is not None else EngineConfig()
        if isinstance(shards, AdaptiveShardPlan):
            self.plan = shards
            adaptive = True
        elif isinstance(shards, ShardPlan):
            if adaptive:
                raise ValueError(
                    "adaptive=True needs an AdaptiveShardPlan or a shard "
                    "count, not a static ShardPlan"
                )
            self.plan = shards
        else:
            if halo_margin is None:
                halo_margin = getattr(operator_factory, "halo_margin", None)
                if halo_margin is None:
                    raise ValueError(
                        "halo_margin is required when the operator factory "
                        "exposes none"
                    )
            world = bounds if bounds is not None else DEFAULT_BOUNDS
            plan_cls = AdaptiveShardPlan if adaptive else ShardPlan
            self.plan = plan_cls.split(world, shards, halo_margin)
        self.adaptive = adaptive
        self.partitioner = SpatialPartitioner(self.plan)
        self.merger = ResultMerger(self.partitioner)
        self.executor = (
            make_executor(executor) if isinstance(executor, str) else executor
        )
        k = self.plan.num_shards
        if adaptive:
            # Tiles move under adaptive workers; give every shard the full
            # halo-expanded world so its index never needs rebuilding.
            world_rect = self.plan.bounds.expanded(self.plan.halo_margin)
            worker_bounds = [world_rect] * k
        else:
            worker_bounds = [self.plan.halo_rect(shard) for shard in range(k)]
        self.executor.start([operator_factory] * k, worker_bounds)
        if adaptive:
            if reshard_config is None:
                reshard_config = ReshardConfig(interval=reshard_interval)
            self.reshard_controller: Optional[ReshardController] = (
                ReshardController(reshard_config)
            )
        else:
            self.reshard_controller = None
        self.stage_plan = ShardedStagePlan(
            self.partitioner, self.executor, self.merger
        )
        if adaptive:
            self.stage_plan.extra_counters.update(
                reshard_splits=0,
                reshard_merges=0,
                clusters_migrated=0,
                migration_seconds=0.0,
            )
            hooks = list(hooks) + [_ReshardHook(self)]
        self.pipeline = EvaluationPipeline(
            generator,
            self.stage_plan,
            sink=self.sink,
            config=self.config,
            hooks=hooks,
            stats=ShardedRunStats(num_shards=k),
        )
        self._closed = False

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def stats(self) -> ShardedRunStats:
        return self.pipeline.stats

    def run_interval(self) -> ShardedIntervalStats:
        """Advance one full Δ interval: route ticks, then evaluate+merge."""
        return self.pipeline.run_interval()

    def run(self, intervals: int) -> ShardedRunStats:
        """Run ``intervals`` consecutive Δ intervals and return the stats."""
        return self.pipeline.run(intervals)

    # -- adaptive re-sharding ------------------------------------------------

    @property
    def plan_epoch(self) -> int:
        """Current shard-plan version (0 for static plans)."""
        return getattr(self.plan, "epoch", 0)

    def _maybe_reshard(self, interval_stats) -> None:
        """Interval-boundary reshard step (called by the pipeline hook)."""
        controller = self.reshard_controller
        if controller is None:
            return
        controller.observe(
            s.join_seconds for s in getattr(interval_stats, "shard_stats", ())
        )
        action = controller.propose(self.plan, self.partitioner)
        if action is None:
            return
        timer = Timer()
        with timer:
            clusters = self._execute_reshard(action.plan)
        extra = self.stage_plan.extra_counters
        extra["reshard_splits"] += action.splits
        extra["reshard_merges"] += action.merges
        extra["clusters_migrated"] += clusters
        extra["migration_seconds"] += timer.seconds
        # The interval's counter snapshot was recorded before this hook
        # fired; refresh it so the reshard is visible in the interval it
        # was decided in, not one interval late.
        self.pipeline.stats.counters.update(extra)

    def _execute_reshard(self, new_plan: AdaptiveShardPlan) -> int:
        """Install ``new_plan`` and live-migrate the affected entities.

        The migration rides the existing routing protocol: for every
        entity whose placement changed, its state is exported from the
        *old owner* shard as a replayable update (``export_entity_updates``
        on the operator — object-backed and columnar storage export
        identically), delivered to every shard that gained the entity, and
        a :class:`Retract` is sent to every shard that lost it.  Stale
        report times are safe to replay: cluster ``advance_to`` is guarded
        against moving backwards, and grid operators re-hash positions
        idempotently.  Returns the number of distinct source clusters the
        migration touched.
        """
        moves = self.partitioner.rebind(new_plan)
        self.plan = new_plan
        if not moves:
            return 0
        k = new_plan.num_shards
        export_keys: List[List[Tuple[int, Any]]] = [[] for _ in range(k)]
        for move in moves:
            if move.source is not None:
                export_keys[move.source].append((move.entity_id, move.kind))
        exports = self.executor.apply_each("export_entity_updates", export_keys)
        updates: Dict[Tuple[int, Any], Any] = {}
        clusters = 0
        for shard, result in enumerate(exports):
            if result is None:
                if export_keys[shard]:
                    raise RuntimeError(
                        "operator does not implement export_entity_updates; "
                        "adaptive sharding needs migratable operators"
                    )
                continue
            clusters += result["clusters"]
            for update in result["updates"]:
                updates[(update.entity_id, update.kind)] = update
        shard_ops: List[List[object]] = [[] for _ in range(k)]
        for move in moves:
            update = updates.get((move.entity_id, move.kind))
            if update is not None:
                for shard in move.gains:
                    shard_ops[shard].append(update)
            for shard in move.losses:
                shard_ops[shard].append(Retract(move.entity_id, move.kind))
        self.executor.ingest(shard_ops)
        return clusters

    # -- checkpoint/restore --------------------------------------------------

    def snapshot_state(self) -> dict:
        """Picklable engine state at an interval barrier.

        The sharded snapshot is a manifest: one operator blob per shard
        (gathered from the executor — off-process workers pickle and ship
        their state), the partitioner's routing memory, the plan geometry
        for validation, and the pipeline clock/accounting.
        """
        plan = self.plan
        state = {
            "kind": "sharded",
            "manifest": {
                "num_shards": plan.num_shards,
                "kx": getattr(plan, "kx", None),
                "ky": getattr(plan, "ky", None),
                "halo_margin": plan.halo_margin,
                "bounds": plan.bounds,
                "adaptive": self.adaptive,
                # Adaptive layouts drift from their construction
                # parameters, so the snapshot carries the whole plan: a
                # resumed engine adopts it (plus its epoch) wholesale.
                "plan": plan if self.adaptive else None,
                "epoch": self.plan_epoch,
            },
            "operators": self.executor.snapshot_operators(),
            "partitioner": self.partitioner.snapshot_state(),
            "pipeline": self.pipeline.snapshot_state(),
        }
        if self.reshard_controller is not None:
            state["reshard"] = {
                "controller": self.reshard_controller.snapshot_state(),
                "counters": dict(self.stage_plan.extra_counters),
            }
        return state

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` on a freshly built engine.

        The engine must have been constructed with the same shard plan the
        snapshot was taken under — per-shard state is only meaningful over
        identical tile geometry.
        """
        if state.get("kind") != "sharded":
            raise ValueError(
                f"snapshot is for a {state.get('kind')!r} engine, not sharded"
            )
        manifest = state["manifest"]
        plan = self.plan
        if manifest.get("adaptive"):
            if not self.adaptive:
                raise ValueError(
                    "snapshot was taken with adaptive sharding; build the "
                    "engine with adaptive=True (or pass the snapshot plan)"
                )
            recorded_plan = manifest["plan"]
            current = (plan.num_shards, plan.halo_margin, plan.bounds)
            recorded = (
                recorded_plan.num_shards,
                recorded_plan.halo_margin,
                recorded_plan.bounds,
            )
            if current != recorded:
                raise ValueError(
                    f"snapshot shard plan {recorded} does not match engine "
                    f"plan {current}"
                )
            # Adopt the adapted layout wholesale — the operators being
            # restored hold state partitioned under *it*, not under
            # whatever initial split this engine was built with.
            self.plan = recorded_plan
            self.partitioner.plan = recorded_plan
        else:
            current = (
                plan.num_shards,
                getattr(plan, "kx", None),
                getattr(plan, "ky", None),
                plan.halo_margin,
            )
            recorded = (
                manifest["num_shards"],
                manifest.get("kx"),
                manifest.get("ky"),
                manifest["halo_margin"],
            )
            if current != recorded:
                raise ValueError(
                    f"snapshot shard plan {recorded} does not match engine "
                    f"plan {current}"
                )
        self.executor.restore_operators(state["operators"])
        self.partitioner.restore_state(state["partitioner"])
        self.pipeline.restore_state(state["pipeline"])
        reshard = state.get("reshard")
        if reshard is not None and self.reshard_controller is not None:
            self.reshard_controller.restore_state(reshard["controller"])
            self.stage_plan.extra_counters.update(reshard["counters"])

    def broadcast(self, method: str, *args) -> List[Any]:
        """Invoke an operator method on every shard (see executor.apply)."""
        return self.executor.apply(method, *args)

    def close(self) -> None:
        """Shut down the executor (worker processes, if any)."""
        if not self._closed:
            self.executor.close()
            self._closed = True

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
