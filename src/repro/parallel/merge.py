"""Merging per-shard answers into one deduplicated result stream.

Halo replication means a (query, object) pair can be co-located in several
shards, each of which will report the match.  The merger keeps exactly one
copy using **query ownership**: a match survives iff it was produced by
the shard that owns the query's last reported position.  Ownership is a
total function (every routed query has exactly one owner), and the halo
margin guarantees the owner shard sees every object its queries can match
— so owner-filtering is a *lossless* deduplication, not a heuristic, and
the merged answer's cardinality equals the single-process engine's.

A set-based fallback (:meth:`ResultMerger.merge_dedup`) exists for
operators whose matches carry no ownership information; it unions shards
and drops duplicates by (qid, oid, t) identity.  Under load shedding the
two differ: a halo shard's differently-shaped clusters can emit an
approximate match the owner shard does not, which owner-filtering
suppresses and set-union keeps.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from ..streams import QueryMatch
from .partition import SpatialPartitioner

__all__ = ["MergeOutcome", "ResultMerger"]


class MergeOutcome(NamedTuple):
    """The merged matches plus dedup accounting."""

    matches: List[QueryMatch]
    duplicates_dropped: int


class ResultMerger:
    """Deduplicates halo-duplicated matches from per-shard answers."""

    def __init__(self, partitioner: SpatialPartitioner) -> None:
        self.partitioner = partitioner
        #: Cumulative duplicates dropped over the merger's lifetime.
        self.total_duplicates_dropped = 0
        #: Plan epoch of the last merged interval (adaptive sharding).
        self.last_epoch: Optional[int] = None

    def merge(
        self,
        per_shard: Sequence[List[QueryMatch]],
        epoch: Optional[int] = None,
    ) -> MergeOutcome:
        """Owner-filter merge (exact; see module docstring).

        Output order is deterministic: shards in index order, each shard's
        matches in its operator's emission order.

        Owner filtering stays exact under adaptive re-sharding because the
        plan only ever rebinds at interval boundaries: the ``per_shard``
        answers of one interval were produced under a single plan epoch,
        and the partitioner's ``owner_of_query`` map is rebuilt by the
        same ``rebind`` that installs a new plan — so the owner consulted
        here is always the owner the shards evaluated under.  ``epoch``
        (when given) asserts exactly that: it is the plan epoch captured
        at dispatch time and must match the live plan's epoch at merge
        time, or the interval spanned a plan transition — a driver bug.
        """
        plan_epoch = getattr(self.partitioner.plan, "epoch", None)
        if epoch is not None and plan_epoch is not None and epoch != plan_epoch:
            raise RuntimeError(
                f"merge under plan epoch {plan_epoch} for results dispatched "
                f"under epoch {epoch}: plan transitioned mid-interval"
            )
        self.last_epoch = plan_epoch if plan_epoch is not None else epoch
        owner_of_query = self.partitioner.owner_of_query
        merged: List[QueryMatch] = []
        dropped = 0
        for shard, matches in enumerate(per_shard):
            for match in matches:
                if owner_of_query(match.qid) == shard:
                    merged.append(match)
                else:
                    dropped += 1
        self.total_duplicates_dropped += dropped
        return MergeOutcome(merged, dropped)

    def merge_dedup(self, per_shard: Sequence[List[QueryMatch]]) -> MergeOutcome:
        """Identity-set union fallback: first occurrence wins."""
        seen = set()
        merged: List[QueryMatch] = []
        dropped = 0
        for matches in per_shard:
            for match in matches:
                if match in seen:
                    dropped += 1
                else:
                    seen.add(match)
                    merged.append(match)
        self.total_duplicates_dropped += dropped
        return MergeOutcome(merged, dropped)
