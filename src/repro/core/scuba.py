"""The SCUBA continuous operator (paper §4.2, Algorithm 1).

Execution cycles through three phases:

1. **Cluster pre-join maintenance** — runs continuously between
   evaluations: every incoming location update is clustered incrementally
   (:meth:`Scuba.on_update`), and the configured load-shedding policy may
   immediately discard the member's relative position.
2. **Cluster-based joining** — fires every Δ time units
   (:meth:`Scuba.join_phase`): a sweep over the occupied ClusterGrid cells
   joins co-located cluster pairs with the lossless join-between filter,
   descending into join-within only for surviving pairs; mixed clusters
   additionally self-join.
3. **Cluster post-join maintenance** — :meth:`Scuba.post_join_phase`:
   clusters that have reached (or will pass) their destination connection
   node are dissolved, survivors are advanced along their velocity vectors
   to their expected position at the next evaluation and re-registered in
   the grid.

Between joining and post-join maintenance sits the **shed** boundary
(:meth:`Scuba.shed_phase`): with ``ScubaConfig.adaptive_shedding`` the
§5 feedback controller observes memory pressure there and walks η along
its ladder.  The phases run either individually under the staged
:class:`~repro.pipeline.EvaluationPipeline` or back-to-back through the
inherited :meth:`evaluate` facade (used by off-process shard workers).

Instrumentation counters (`between_tests`, `within_tests`, ...) are part of
the public surface: the paper's figures report exactly these costs.

Evaluation is **incremental across Δ-cycles**: join views and join-between
verdicts are cached keyed on cluster version counters (see
:class:`~repro.core.joins.ClusterJoinView`), so clusters that did not
change between evaluations are snapshotted and pre-filtered exactly once.
The caches are pure memoisation — logical test counters and emitted
matches are identical with and without them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import hypot
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..clustering import (
    ClusteringSpec,
    ClusterWorld,
    IncrementalClusterer,
    MovingCluster,
    split_cluster,
)
from ..generator import EntityKind, Update
from ..geometry import Rect
from ..kernels import BACKEND_CHOICES, resolve_backend
from ..network import DEFAULT_BOUNDS
from ..shedding import AdaptiveShedder, NoShedding, SheddingPolicy
from ..streams import QueryMatch, StagedJoinOperator
from .joins import ClusterJoinView, join_between, join_within_pair, join_within_self
from .tables import ObjectsTable, QueriesTable

__all__ = ["ScubaConfig", "Scuba"]


@dataclass
class ScubaConfig:
    """Tuning knobs of the SCUBA operator.

    Defaults reproduce the paper's experimental settings (§6.1): a 100×100
    ClusterGrid, ``Θ_D = 100`` spatial units, ``Θ_S = 10`` units/time-unit,
    Δ = 2 time units, no load shedding.
    """

    bounds: Rect = field(default_factory=lambda: DEFAULT_BOUNDS)
    grid_size: int = 100
    theta_d: float = 100.0
    theta_s: float = 10.0
    #: Δ — the evaluation period, used by post-join maintenance to advance
    #: clusters to their expected next-evaluation position.
    delta: float = 2.0
    #: Load-shedding policy (η knob of §5/Fig. 13).  Under adaptive
    #: shedding this is the *live* policy, re-pointed by the controller at
    #: every shed phase.
    shedding: SheddingPolicy = field(default_factory=NoShedding)
    #: Enable the §5 feedback loop: an
    #: :class:`~repro.shedding.AdaptiveShedder` observes retained member
    #: positions at the shed stage of every interval and walks η up or
    #: down ``shed_ladder`` against ``shed_budget``.
    adaptive_shedding: bool = False
    #: Retained-position budget the adaptive controller defends.
    shed_budget: int = 10_000
    #: Escalation ladder for η; ``None`` uses the controller's default
    #: ``(0.0, 0.25, 0.5, 0.75, 1.0)``.
    shed_ladder: Optional[Sequence[float]] = None
    #: Require identical destination connection node for cluster admission.
    #: Disabled only by the direction-predicate ablation.
    require_same_destination: bool = True
    #: Tighten cluster radii during post-join maintenance.  The paper's
    #: pseudocode only ever grows radii; recomputation keeps long-lived
    #: clusters compact.  Disabled by the deterioration ablation.
    recompute_radius: bool = True
    #: Dissolve clusters at their destination (paper behaviour).  Disabled
    #: by the deterioration ablation.
    expire_clusters: bool = True
    #: Apply the join-between pre-filter.  Disabled by the two-step-join
    #: ablation, which joins-within every co-located cluster pair.
    use_between_filter: bool = True
    #: Split clusters at their destination node instead of dissolving them
    #: outright — the paper's §3.1 future-work option.  Members that have
    #: already reported their next destination are regrouped into
    #: successor clusters without re-clustering churn.
    split_at_destination: bool = False
    #: Join-kernel backend: ``"auto"`` picks NumPy when installed (the
    #: ``perf`` extra) and the batched pure-Python backend otherwise;
    #: ``"scalar"`` is the seed-faithful reference path.
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        if self.adaptive_shedding and self.shed_budget < 1:
            raise ValueError(
                f"shed_budget must be >= 1, got {self.shed_budget}"
            )
        if self.kernel_backend not in BACKEND_CHOICES:
            raise ValueError(
                f"kernel_backend must be one of {BACKEND_CHOICES}, "
                f"got {self.kernel_backend!r}"
            )

    def clustering_spec(self) -> ClusteringSpec:
        return ClusteringSpec(
            theta_d=self.theta_d,
            theta_s=self.theta_s,
            require_same_destination=self.require_same_destination,
            enable_splitting=self.split_at_destination,
        )


class Scuba(StagedJoinOperator):
    """Shared cluster-based execution of continuous spatio-temporal queries."""

    def __init__(self, config: Optional[ScubaConfig] = None) -> None:
        self.config = config if config is not None else ScubaConfig()
        self._init_state()

    def _init_state(self) -> None:
        """(Re)build all mutable state from ``self.config``.

        Shared by :meth:`__init__` and :meth:`reset` so resetting cannot
        drift from construction (the seed re-called ``__init__``, which
        breaks under subclassing and re-validates config needlessly).
        """
        self.world = ClusterWorld(self.config.bounds, self.config.grid_size)
        self.clusterer = IncrementalClusterer(
            self.world, self.config.clustering_spec()
        )
        self.objects_table = ObjectsTable()
        self.queries_table = QueriesTable()
        self._shed_is_noop = isinstance(self.config.shedding, NoShedding)
        if self.config.adaptive_shedding:
            ladder = self.config.shed_ladder
            self.shedder: Optional[AdaptiveShedder] = (
                AdaptiveShedder(self.config.theta_d, self.config.shed_budget)
                if ladder is None
                else AdaptiveShedder(
                    self.config.theta_d, self.config.shed_budget, ladder
                )
            )
            # Start from the controller's current rung so config and
            # controller never disagree about the live policy.
            self.set_shedding_policy(self.shedder.policy)
        else:
            self.shedder = None
        self.kernels = resolve_backend(self.config.kernel_backend)
        # Cross-evaluation caches, all keyed on cluster version counters
        # (cids are never reused, so a stale cid can only miss or be
        # pruned, never alias).  Dropped on pickling and rebuilt lazily.
        self._view_cache: Dict[int, ClusterJoinView] = {}
        self._between_cache: Dict[Tuple[int, int], Tuple[int, int, bool]] = {}
        # Reused across sweeps to avoid re-growing a large set every Δ.
        self._seen_pairs: Set[Tuple[int, int]] = set()
        # Phase timings of the most recent evaluate().
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0
        # Cumulative instrumentation.
        self.between_tests = 0
        self.between_hits = 0
        self.within_tests = 0
        self.evaluations = 0
        self.view_cache_hits = 0
        self.view_cache_misses = 0
        self.between_cache_hits = 0
        self.between_cache_misses = 0

    # -- phase 1: pre-join maintenance ------------------------------------------

    def on_update(self, update: Update) -> None:
        """Cluster one incoming update (and maybe shed its position)."""
        if update.kind is EntityKind.OBJECT:
            self.objects_table.record(update.entity_id, update.attrs, update.t)
        else:
            self.queries_table.record(update.entity_id, update.attrs, update.t)
        cluster = self.clusterer.ingest(update)
        if not self._shed_is_noop:
            dist = hypot(update.loc.x - cluster.cx, update.loc.y - cluster.cy)
            self.config.shedding.apply(cluster, update, dist)

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Forget one entity: evict it from its cluster and its table.

        Used by sharded execution when an entity's reported position leaves
        this operator's halo region.  Eviction reuses the clusterer's
        membership pathway, so cluster invariants (home/grid consistency,
        dissolution of emptied clusters) hold exactly as for re-clustering.
        """
        cid = self.world.home.cluster_of(entity_id, kind)
        if cid is not None:
            self.world.evict(self.world.storage.get(cid), entity_id, kind)
        table = (
            self.objects_table if kind is EntityKind.OBJECT else self.queries_table
        )
        table.evict(entity_id)

    # -- phases 2 + 3: joining, shedding control, post-join maintenance -----------

    def join_phase(self, now: float) -> List[QueryMatch]:
        """The Δ-triggered cluster join; returns the current query answers."""
        self.evaluations += 1
        results: List[QueryMatch] = []
        self._joining_phase(now, results)
        return results

    def shed_phase(self, now: float) -> None:
        """Adaptive shedding control boundary (§5's feedback reaction).

        With ``adaptive_shedding`` enabled, the controller inspects the
        retained-position count and may step η along its ladder; the
        resulting policy becomes the live one for the next interval's
        pre-join maintenance.  A fixed policy makes this a no-op.
        """
        if self.shedder is not None:
            self.set_shedding_policy(self.shedder.observe(self.world.storage, now))

    def post_join_phase(self, now: float) -> None:
        """Dissolve arrivals, advance survivors, refresh the grid."""
        self._post_join_maintenance(now)

    def set_shedding_policy(self, policy: SheddingPolicy) -> None:
        """Swap the live shedding policy (keeps the no-op fast path honest)."""
        self.config.shedding = policy
        self._shed_is_noop = isinstance(policy, NoShedding)

    def _view_of(self, cluster: MovingCluster) -> ClusterJoinView:
        """Cached join view of ``cluster``, rebuilt only when it changed."""
        view = self._view_cache.get(cluster.cid)
        if view is not None and view.version == cluster.version:
            self.view_cache_hits += 1
            return view
        self.view_cache_misses += 1
        view = ClusterJoinView(cluster)
        self._view_cache[cluster.cid] = view
        return view

    def _joining_phase(self, now: float, results: List[QueryMatch]) -> None:
        """Algorithm 1, lines 8-21: the cell sweep."""
        storage = self.world.storage
        view_of = self._view_of
        backend = self.kernels

        # Self join-within for every mixed cluster (Algorithm 1, line 15).
        for cluster in storage.clusters():
            if cluster.is_mixed:
                self.within_tests += join_within_self(
                    view_of(cluster), now, results, backend
                )

        # Pairwise joins for clusters sharing a grid cell.  A pair may share
        # several cells; the seen-set makes it join exactly once.
        seen_pairs = self._seen_pairs
        seen_pairs.clear()
        between_cache = self._between_cache
        use_filter = self.config.use_between_filter
        grid = self.world.grid
        for cell, members in grid.occupied_cells():
            if len(members) < 2:
                continue
            cids = grid.sorted_members(cell)
            for i, cid_l in enumerate(cids):
                left = storage.get(cid_l)
                for cid_r in cids[i + 1 :]:
                    pair = (cid_l, cid_r)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    right = storage.get(cid_r)
                    # Join only pairs that can mix types (line 18).
                    if not (
                        (left.objects and right.queries)
                        or (left.queries and right.objects)
                    ):
                        continue
                    if use_filter:
                        # between_tests counts the *logical* filter
                        # applications (the paper's cost metric); the memo
                        # only skips recomputing the geometry for pairs
                        # whose clusters are both unchanged.
                        self.between_tests += 1
                        cached = between_cache.get(pair)
                        if (
                            cached is not None
                            and cached[0] == left.version
                            and cached[1] == right.version
                        ):
                            self.between_cache_hits += 1
                            verdict = cached[2]
                        else:
                            self.between_cache_misses += 1
                            verdict = join_between(left, right)
                            between_cache[pair] = (
                                left.version,
                                right.version,
                                verdict,
                            )
                        if not verdict:
                            continue
                        self.between_hits += 1
                    self.within_tests += join_within_pair(
                        view_of(left), view_of(right), now, results, backend
                    )

    def _post_join_maintenance(self, now: float) -> None:
        """Dissolve arrivals, advance survivors, refresh the grid."""
        cfg = self.config
        for cluster in list(self.world.storage):
            if cfg.expire_clusters and (
                cluster.has_expired(now) or cluster.will_pass_destination(cfg.delta)
            ):
                if cfg.split_at_destination:
                    # Regroup any members whose reported next destination
                    # already diverged (stragglers under partial update
                    # fractions); the common case — members peeling off one
                    # by one as they cross — is handled at eviction time by
                    # the clusterer's successor links.
                    split_cluster(self.world, cluster, now)
                else:
                    self.world.dissolve(cluster)
                continue
            # Clusters untouched since their last update (shed members,
            # partial update fractions) still move by their velocity.
            cluster.advance_to(now)
            if cfg.recompute_radius:
                # Per-interval compaction: bake the transformation vector,
                # re-centre on the true member mean (per-tuple refreshes do
                # not touch the centroid), and tighten the radius.
                cluster.flush_transform()
                cluster.recentre()
                cluster.recompute_radius()
            cluster.update_expiry(now)
            self.world.grid.refresh(cluster)
        self._prune_caches()

    def _prune_caches(self) -> None:
        """Drop cache entries for clusters that no longer exist.

        cids are allocated monotonically and never reused, so dead entries
        can never produce stale hits — pruning is purely to bound memory
        across long runs with cluster churn.
        """
        storage = self.world.storage
        view_cache = self._view_cache
        if len(view_cache) > len(storage):
            dead = [cid for cid in view_cache if cid not in storage]
            for cid in dead:
                del view_cache[cid]
        between_cache = self._between_cache
        if between_cache:
            dead_pairs = [
                pair
                for pair in between_cache
                if pair[0] not in storage or pair[1] not in storage
            ]
            for pair in dead_pairs:
                del between_cache[pair]

    # -- introspection ---------------------------------------------------------------

    @property
    def cluster_count(self) -> int:
        return self.world.cluster_count

    @property
    def split_joins(self) -> int:
        """Node crossings resolved through successor links (splitting on)."""
        return self.clusterer.split_joins

    def join_counters(self) -> Dict[str, Any]:
        """Kernel/cache instrumentation folded into run statistics."""
        return {
            "kernel_backend": self.kernels.name,
            "view_cache_hits": self.view_cache_hits,
            "view_cache_misses": self.view_cache_misses,
            "between_cache_hits": self.between_cache_hits,
            "between_cache_misses": self.between_cache_misses,
        }

    def state_roots(self) -> List[object]:
        """The five in-memory structures of §4.1 (for memory accounting)."""
        return [
            self.objects_table,
            self.queries_table,
            self.world.home,
            self.world.storage,
            self.world.grid,
        ]

    def reset(self) -> None:
        """Drop all clusters and tables, keeping configuration."""
        self._init_state()

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without caches or the backend instance.

        Views hold backend scratch data (ndarray mirrors, sort
        permutations) that must not cross process boundaries; the backend
        itself is re-resolved from config on the other side, so a shard
        shipped to a worker without NumPy degrades gracefully.
        """
        state = self.__dict__.copy()
        for transient in ("kernels", "_view_cache", "_between_cache", "_seen_pairs"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.kernels = resolve_backend(self.config.kernel_backend)
        self._view_cache = {}
        self._between_cache = {}
        self._seen_pairs = set()

    def __repr__(self) -> str:
        return (
            f"Scuba({self.cluster_count} clusters, "
            f"{len(self.objects_table)} objects, "
            f"{len(self.queries_table)} queries, "
            f"shedding={self.config.shedding!r})"
        )
