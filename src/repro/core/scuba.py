"""The SCUBA continuous operator (paper §4.2, Algorithm 1).

Execution cycles through three phases:

1. **Cluster pre-join maintenance** — runs continuously between
   evaluations: every incoming location update is clustered incrementally
   (:meth:`Scuba.on_update`), and the configured load-shedding policy may
   immediately discard the member's relative position.
2. **Cluster-based joining** — fires every Δ time units
   (:meth:`Scuba.join_phase`): a sweep over the occupied ClusterGrid cells
   joins co-located cluster pairs with the lossless join-between filter,
   descending into join-within only for surviving pairs; mixed clusters
   additionally self-join.
3. **Cluster post-join maintenance** — :meth:`Scuba.post_join_phase`:
   clusters that have reached (or will pass) their destination connection
   node are dissolved, survivors are advanced along their velocity vectors
   to their expected position at the next evaluation and re-registered in
   the grid.

Between joining and post-join maintenance sits the **shed** boundary
(:meth:`Scuba.shed_phase`): with ``ScubaConfig.adaptive_shedding`` the
§5 feedback controller observes memory pressure there and walks η along
its ladder.  The phases run either individually under the staged
:class:`~repro.pipeline.EvaluationPipeline` or back-to-back through the
inherited :meth:`evaluate` facade (used by off-process shard workers).

Instrumentation counters (`between_tests`, `within_tests`, ...) are part of
the public surface: the paper's figures report exactly these costs.

Evaluation is **incremental across Δ-cycles**: join views and join-between
verdicts are cached keyed on cluster version counters (see
:class:`~repro.core.joins.ClusterJoinView`), so clusters that did not
change between evaluations are snapshotted and pre-filtered exactly once.
The caches are pure memoisation — logical test counters and emitted
matches are identical with and without them.

With ``ScubaConfig(incremental=True)`` the sweep additionally **replays**
memoized join-within answers instead of re-running the kernels.  The key
observation (shared with MOIST's co-moving "schools"): between two
evaluations most clusters either translate rigidly or do not move at all,
so their member geometry — and therefore their match set against any
partner with the same displacement — is unchanged.  ``MovingCluster``
separates *structural* change (membership churn, shed transitions, split
hand-offs; tracked by ``struct_version``) from *rigid translation*
(tracked by the cumulative displacement ``disp_x``/``disp_y``); a
pair-level memo records the between verdict, the logical within-test
count and the matched ``(qid, oid)`` pairs, and is replayed with
re-stamped timestamps whenever both clusters are structurally clean,
shed-free and their displacement deltas since the memo cancel exactly.
Cells untouched by any dirty cluster replay their whole pair list
wholesale via the grid's dirty-cell set.  Replay is answer-preserving
(multiset-equal to full recompute): structurally-clean stationary
clusters present bitwise-identical member positions to the kernels, and
the memoized matches came from a real kernel run over those positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import hypot
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..clustering import (
    ClusteringSpec,
    ClusterWorld,
    IncrementalClusterer,
    MovingCluster,
    split_cluster,
)
from ..generator import EntityKind, LocationUpdate, QueryUpdate, TickBatch, Update
from ..generator.records import _EMPTY_ATTRS
from ..geometry import Point, Rect
from ..ingest import make_ingest_kernel
from ..kernels import BACKEND_CHOICES, resolve_backend
from ..network import DEFAULT_BOUNDS
from ..shedding import AdaptiveShedder, NoShedding, SheddingPolicy
from ..streams import MatchList, QueryMatch, StagedJoinOperator
from .joins import ClusterJoinView, join_between, join_within_pair, join_within_self
from .pairsweep import BatchJoinState, resolve_sweep_numpy
from .tables import ObjectsTable, QueriesTable

__all__ = ["ScubaConfig", "Scuba"]


@dataclass
class ScubaConfig:
    """Tuning knobs of the SCUBA operator.

    Defaults reproduce the paper's experimental settings (§6.1): a 100×100
    ClusterGrid, ``Θ_D = 100`` spatial units, ``Θ_S = 10`` units/time-unit,
    Δ = 2 time units, no load shedding.
    """

    bounds: Rect = field(default_factory=lambda: DEFAULT_BOUNDS)
    grid_size: int = 100
    theta_d: float = 100.0
    theta_s: float = 10.0
    #: Δ — the evaluation period, used by post-join maintenance to advance
    #: clusters to their expected next-evaluation position.
    delta: float = 2.0
    #: Load-shedding policy (η knob of §5/Fig. 13).  Under adaptive
    #: shedding this is the *live* policy, re-pointed by the controller at
    #: every shed phase.
    shedding: SheddingPolicy = field(default_factory=NoShedding)
    #: Enable the §5 feedback loop: an
    #: :class:`~repro.shedding.AdaptiveShedder` observes retained member
    #: positions at the shed stage of every interval and walks η up or
    #: down ``shed_ladder`` against ``shed_budget``.
    adaptive_shedding: bool = False
    #: Retained-position budget the adaptive controller defends.
    shed_budget: int = 10_000
    #: Escalation ladder for η; ``None`` uses the controller's default
    #: ``(0.0, 0.25, 0.5, 0.75, 1.0)``.
    shed_ladder: Optional[Sequence[float]] = None
    #: Require identical destination connection node for cluster admission.
    #: Disabled only by the direction-predicate ablation.
    require_same_destination: bool = True
    #: Tighten cluster radii during post-join maintenance.  The paper's
    #: pseudocode only ever grows radii; recomputation keeps long-lived
    #: clusters compact.  Disabled by the deterioration ablation.
    recompute_radius: bool = True
    #: Dissolve clusters at their destination (paper behaviour).  Disabled
    #: by the deterioration ablation.
    expire_clusters: bool = True
    #: Apply the join-between pre-filter.  Disabled by the two-step-join
    #: ablation, which joins-within every co-located cluster pair.
    use_between_filter: bool = True
    #: Split clusters at their destination node instead of dissolving them
    #: outright — the paper's §3.1 future-work option.  Members that have
    #: already reported their next destination are regrouped into
    #: successor clusters without re-clustering churn.
    split_at_destination: bool = False
    #: Join-kernel backend: ``"auto"`` picks NumPy when installed (the
    #: ``perf`` extra) and the batched pure-Python backend otherwise;
    #: ``"scalar"`` is the seed-faithful reference path.
    kernel_backend: str = "auto"
    #: Delta-driven incremental sweep: memoize per-pair and per-cluster
    #: join-within answers and replay them (with re-stamped timestamps)
    #: for structurally-clean, relatively-unmoved cluster pairs instead of
    #: re-running the kernels; clean grid cells replay their pair lists
    #: wholesale.  Answers stay multiset-identical to the full recompute.
    incremental: bool = False
    #: Macro-batched join sweep: enumerate this tick's candidate cluster
    #: pairs from the whole grid at once (packed-key dedup), run one
    #: batched join-between over all of them, and evaluate shed-free
    #: surviving pairs as fused exact×exact segments (DESIGN.md §15).
    #: ``None`` (default) turns it on whenever the incremental sweep is
    #: not active — vectorized under the NumPy kernel backend, stdlib
    #: batch fallback otherwise; ``False`` forces the per-pair driver.
    #: Answers and counters stay identical to the per-pair sweep.
    batched_join: Optional[bool] = None
    #: Batched columnar ingest: build one
    #: :class:`~repro.ingest.UpdateBatch` per evaluation tick and run the
    #: steady-state cluster-maintenance fast path per cluster group
    #: (vectorised under the NumPy backend) instead of per update.  The
    #: ingest kernel backend follows ``kernel_backend``.  Answers and
    #: cluster assignments stay identical to the scalar loop (see
    #: :mod:`repro.ingest.base` for the exactness contract).
    batched_ingest: bool = False
    #: Columnar-first storage: cluster members and table last-seen stamps
    #: rest in parallel arrays (:mod:`repro.columnar`) and post-join
    #: maintenance runs as whole-world vectorized sweeps.  Cluster state
    #: and answers stay bit-identical to the object path (DESIGN.md §12).
    columnar: bool = False
    #: Columnar sweep backend: ``"auto"`` uses NumPy when installed,
    #: ``"array"`` forces the exact stdlib scalar fallback.
    columnar_backend: str = "auto"
    #: Evict table rows for entities silent for longer than this many time
    #: units, checked once per post-join maintenance pass.  ``None``
    #: (default) keeps rows forever (seed behaviour).
    stale_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        if self.adaptive_shedding and self.shed_budget < 1:
            raise ValueError(
                f"shed_budget must be >= 1, got {self.shed_budget}"
            )
        if self.kernel_backend not in BACKEND_CHOICES:
            raise ValueError(
                f"kernel_backend must be one of {BACKEND_CHOICES}, "
                f"got {self.kernel_backend!r}"
            )
        if self.columnar_backend not in ("auto", "numpy", "array"):
            raise ValueError(
                "columnar_backend must be one of ('auto', 'numpy', 'array'), "
                f"got {self.columnar_backend!r}"
            )
        if self.stale_after is not None and self.stale_after <= 0:
            raise ValueError(
                f"stale_after must be positive, got {self.stale_after}"
            )
        if self.batched_join and self.incremental:
            raise ValueError(
                "batched_join and incremental are mutually exclusive sweep "
                "drivers (leave batched_join unset to let incremental win)"
            )

    @property
    def batched_join_active(self) -> bool:
        """Whether the macro-batched sweep drives the joining phase."""
        return self.batched_join is not False and not self.incremental

    def clustering_spec(self) -> ClusteringSpec:
        return ClusteringSpec(
            theta_d=self.theta_d,
            theta_s=self.theta_s,
            require_same_destination=self.require_same_destination,
            enable_splitting=self.split_at_destination,
        )


class Scuba(StagedJoinOperator):
    """Shared cluster-based execution of continuous spatio-temporal queries."""

    def __init__(self, config: Optional[ScubaConfig] = None) -> None:
        self.config = config if config is not None else ScubaConfig()
        self._init_state()

    def _init_state(self) -> None:
        """(Re)build all mutable state from ``self.config``.

        Shared by :meth:`__init__` and :meth:`reset` so resetting cannot
        drift from construction (the seed re-called ``__init__``, which
        breaks under subclassing and re-validates config needlessly).
        """
        if self.config.columnar:
            # Imported lazily: repro.columnar depends on repro.clustering /
            # repro.core, so a module-level import would be circular.
            from ..columnar import (
                ColumnarClusterFactory,
                ColumnarObjectsTable,
                ColumnarQueriesTable,
                MaintenanceEngine,
            )

            backend = self.config.columnar_backend
            self.world = ClusterWorld(
                self.config.bounds,
                self.config.grid_size,
                cluster_factory=ColumnarClusterFactory(backend),
            )
            self.objects_table = ColumnarObjectsTable(backend)
            self.queries_table = ColumnarQueriesTable(backend)
            self.maintenance_engine: Optional[Any] = MaintenanceEngine(backend)
        else:
            self.world = ClusterWorld(self.config.bounds, self.config.grid_size)
            self.objects_table = ObjectsTable()
            self.queries_table = QueriesTable()
            self.maintenance_engine = None
        self.clusterer = IncrementalClusterer(
            self.world, self.config.clustering_spec()
        )
        #: Table rows dropped by ``stale_after`` garbage collection.
        self.evicted_stale = 0
        self._shed_is_noop = isinstance(self.config.shedding, NoShedding)
        # Sticky never-shed marker: flips the moment a real shedding policy
        # goes live and never flips back — shed members can outlive a later
        # policy switch, so the vectorised batched driver (which assumes
        # exact member columns) keys off the whole run's history, not the
        # current policy.
        self._ever_shed = not self._shed_is_noop
        if self.config.adaptive_shedding:
            ladder = self.config.shed_ladder
            self.shedder: Optional[AdaptiveShedder] = (
                AdaptiveShedder(self.config.theta_d, self.config.shed_budget)
                if ladder is None
                else AdaptiveShedder(
                    self.config.theta_d, self.config.shed_budget, ladder
                )
            )
            # Start from the controller's current rung so config and
            # controller never disagree about the live policy.
            self.set_shedding_policy(self.shedder.policy)
        else:
            self.shedder = None
        self.kernels = resolve_backend(self.config.kernel_backend)
        # Ingest kernels are stateful (counters, member-view caches), so
        # each operator owns a fresh instance; ``None`` keeps the scalar
        # per-update loop byte-for-byte untouched when batching is off.
        self.ingest_kernel = (
            make_ingest_kernel(self.config.kernel_backend)
            if self.config.batched_ingest
            else None
        )
        # Cross-evaluation caches, all keyed on cluster version counters
        # (cids are never reused, so a stale cid can only miss or be
        # pruned, never alias).  Dropped on pickling and rebuilt lazily.
        self._view_cache: Dict[int, ClusterJoinView] = {}
        self._between_cache: Dict[Tuple[int, int], Tuple[int, int, bool]] = {}
        # Reused across sweeps to avoid re-growing a large set every Δ.
        self._seen_pairs: Set[Tuple[int, int]] = set()
        # Full between-cache scans only fire once the cache outgrows this
        # watermark (doubled past the live size after every prune), so
        # stable runs skip the per-interval scan entirely.
        self._between_watermark = 64
        # Incremental-sweep state (config.incremental): match memos keyed on
        # structural marks, the previous sweep's marks, and per-cell pair
        # lists for wholesale cell replay.  A mark is the immutable triple
        # ``(struct_version, disp_x, disp_y)``.  All are dropped on
        # pickling; an empty mark table just makes the next sweep a full
        # recompute.
        self._pair_memo: Dict[
            Tuple[int, int],
            Tuple[
                Tuple[int, float, float],
                Tuple[int, float, float],
                bool,
                int,
                Tuple[Tuple[int, int], ...],
            ],
        ] = {}
        self._pair_memo_watermark = 64
        self._self_memo: Dict[int, Tuple[int, int, Tuple[Tuple[int, int], ...]]] = {}
        self._sweep_marks: Dict[int, Tuple[int, float, float]] = {}
        self._cell_pairs: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        # Macro-batched sweep state (config.batched_join): cluster SoA
        # registry, array between-cache, pair templates.  Built lazily on
        # the first batched sweep and dropped on pickling, so shards
        # re-resolve the numpy-vs-stdlib path per process.
        self._batch_state: Optional[BatchJoinState] = None
        if self.config.incremental:
            self.world.grid.enable_dirty_tracking()
        # Phase timings of the most recent evaluate().
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0
        # Cumulative instrumentation.
        self.between_tests = 0
        self.between_hits = 0
        self.within_tests = 0
        self.evaluations = 0
        self.view_cache_hits = 0
        self.view_cache_misses = 0
        self.between_cache_hits = 0
        self.between_cache_misses = 0
        # Macro-batched sweep instrumentation: candidate mixed pairs that
        # went through the whole-tick batched between filter, and shed-free
        # join units fused into join_segments kernel calls.
        self.join_pairs_batched = 0
        self.join_segments = 0
        # Incremental-sweep instrumentation: replayed vs freshly-computed
        # join units (self joins + surviving pairs), wholesale-replayed vs
        # fully-enumerated cells, and per-sweep clean vs dirty clusters.
        # The hits/misses naming lets RunStats derive ``*_hit_rate``s.
        self.replay_hits = 0
        self.replay_misses = 0
        self.cell_replay_hits = 0
        self.cell_replay_misses = 0
        self.cluster_clean_hits = 0
        self.cluster_clean_misses = 0

    # -- phase 1: pre-join maintenance ------------------------------------------

    def on_update(self, update: Update) -> None:
        """Cluster one incoming update (and maybe shed its position)."""
        if update.kind is EntityKind.OBJECT:
            self.objects_table.record(update.entity_id, update.attrs, update.t)
        else:
            self.queries_table.record(update.entity_id, update.attrs, update.t)
        cluster = self.clusterer.ingest(update)
        if not self._shed_is_noop:
            dist = hypot(update.loc.x - cluster.cx, update.loc.y - cluster.cy)
            self.config.shedding.apply(cluster, update, dist)

    def record_update(self, update: Update) -> None:
        """Tables-only half of :meth:`on_update` (no clustering).

        The batched ingest kernels record fast-path rows at their arrival
        position and commit their cluster maintenance as a group later.
        """
        if update.kind is EntityKind.OBJECT:
            self.objects_table.record(update.entity_id, update.attrs, update.t)
        else:
            self.queries_table.record(update.entity_id, update.attrs, update.t)

    def record_updates(self, updates: Sequence[Update]) -> None:
        """Bulk :meth:`record_update`: one tick's table rows, arrival
        order, with the table methods bound once for the whole run.  Tick
        batches record straight off their id/kind columns — no row
        materialization, same table state."""
        obj_record = self.objects_table.record
        qry_record = self.queries_table.record
        if isinstance(updates, TickBatch):
            t = updates.t
            attrs_list = updates.attrs_list
            if attrs_list is None:
                for eid, is_obj in zip(updates.ids, updates.kinds):
                    if is_obj:
                        obj_record(eid, _EMPTY_ATTRS, t)
                    else:
                        qry_record(eid, _EMPTY_ATTRS, t)
            else:
                for i, (eid, is_obj) in enumerate(
                    zip(updates.ids, updates.kinds)
                ):
                    attrs = attrs_list[i]
                    if attrs is None:
                        attrs = _EMPTY_ATTRS
                    if is_obj:
                        obj_record(eid, attrs, t)
                    else:
                        qry_record(eid, attrs, t)
            return
        obj = EntityKind.OBJECT
        for update in updates:
            if update.kind is obj:
                obj_record(update.entity_id, update.attrs, update.t)
            else:
                qry_record(update.entity_id, update.attrs, update.t)

    def ingest_clustered(self, update: Update) -> None:
        """Clustering half of :meth:`on_update` (tables already recorded)."""
        cluster = self.clusterer.ingest(update)
        if not self._shed_is_noop:
            dist = hypot(update.loc.x - cluster.cx, update.loc.y - cluster.cy)
            self.config.shedding.apply(cluster, update, dist)

    def ingest_batch(self, updates: Sequence[Update]) -> None:
        kernel = self.ingest_kernel
        if kernel is None:
            on_update = self.on_update
            for update in updates:
                on_update(update)
        else:
            kernel.run(self, updates)

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Forget one entity: evict it from its cluster and its table.

        Used by sharded execution when an entity's reported position leaves
        this operator's halo region.  Eviction reuses the clusterer's
        membership pathway, so cluster invariants (home/grid consistency,
        dissolution of emptied clusters) hold exactly as for re-clustering.
        """
        cid = self.world.home.cluster_of(entity_id, kind)
        if cid is not None:
            self.world.evict(self.world.storage.get(cid), entity_id, kind)
        table = (
            self.objects_table if kind is EntityKind.OBJECT else self.queries_table
        )
        table.evict(entity_id)

    def export_entity_updates(self, keys: Sequence[Tuple[int, EntityKind]]) -> Dict[str, Any]:
        """Serialize entity state as replayable updates (shard migration).

        For each ``(entity_id, kind)`` key this shard holds, synthesize the
        update that reconstructs the entity in another shard: best-known
        absolute position (the reported position carried by any rigid
        translation since — bit-identical to what this shard would join
        with), the member's speed/heading, the query window, the table
        attributes, stamped with the member's last report time so table
        bookkeeping (``last_seen``, staleness) transfers unchanged.
        Members whose position was load shed fall back to the cluster
        centroid — the same nucleus approximation their join uses here.

        Reads only the shared member API (``get_member`` /
        ``member_location``), so the object-backed and columnar storage
        paths export identically, without touching columnar slot proxies.
        Entities this shard no longer holds are skipped.  Returns
        ``{"updates": [...], "clusters": N}`` with ``N`` the distinct
        source clusters touched.
        """
        updates: List[Update] = []
        touched: Set[int] = set()
        cluster_of = self.world.home.cluster_of
        storage = self.world.storage
        for entity_id, kind in keys:
            cid = cluster_of(entity_id, kind)
            if cid is None:
                continue
            cluster = storage.get(cid)
            member = cluster.get_member(entity_id, kind)
            if member is None:
                continue
            loc = cluster.member_location(member)
            if loc is None:
                loc = cluster.centroid
            table = (
                self.objects_table
                if kind is EntityKind.OBJECT
                else self.queries_table
            )
            attrs = table.attrs(entity_id) if entity_id in table else None
            cn_loc = Point(member.cn_x, member.cn_y)
            if kind is EntityKind.OBJECT:
                updates.append(
                    LocationUpdate(
                        entity_id,
                        loc,
                        member.last_t,
                        member.speed,
                        member.cn_node,
                        cn_loc,
                        attrs,
                    )
                )
            else:
                updates.append(
                    QueryUpdate(
                        entity_id,
                        loc,
                        member.last_t,
                        member.speed,
                        member.cn_node,
                        cn_loc,
                        member.range_width,
                        member.range_height,
                        attrs,
                    )
                )
            touched.add(cid)
        return {"updates": updates, "clusters": len(touched)}

    # -- phases 2 + 3: joining, shedding control, post-join maintenance -----------

    def join_phase(self, now: float) -> List[QueryMatch]:
        """The Δ-triggered cluster join; returns the current query answers.

        The macro-batched driver answers into a :class:`MatchList` so its
        segmented kernel can splice whole columnar match runs in at their
        canonical positions; the per-pair and incremental drivers keep the
        plain list (their kernels emit row by row either way).
        """
        self.evaluations += 1
        results: List[QueryMatch] = (
            MatchList() if self.config.batched_join_active else []
        )
        self._joining_phase(now, results)
        return results

    def shed_phase(self, now: float) -> None:
        """Adaptive shedding control boundary (§5's feedback reaction).

        With ``adaptive_shedding`` enabled, the controller inspects the
        retained-position count and may step η along its ladder; the
        resulting policy becomes the live one for the next interval's
        pre-join maintenance.  A fixed policy makes this a no-op.
        """
        if self.shedder is not None:
            self.set_shedding_policy(self.shedder.observe(self.world.storage, now))

    def post_join_phase(self, now: float) -> None:
        """Dissolve arrivals, advance survivors, refresh the grid."""
        self._post_join_maintenance(now)

    def set_shedding_policy(self, policy: SheddingPolicy) -> None:
        """Swap the live shedding policy (keeps the no-op fast path honest)."""
        self.config.shedding = policy
        self._shed_is_noop = isinstance(policy, NoShedding)
        if not self._shed_is_noop:
            self._ever_shed = True

    def escalate_shedding(self, now: float) -> bool:
        """External overload signal: force η one rung up the ladder.

        The service front-end calls this when ingest outruns evaluation
        (queue pressure), independent of the retained-position feedback.
        No-op (False) without ``adaptive_shedding``.
        """
        if self.shedder is None or not self.shedder.escalate(now):
            return False
        self.set_shedding_policy(self.shedder.policy)
        return True

    def relax_shedding(self, now: float) -> bool:
        """Release one rung of forced shedding escalation (pressure gone)."""
        if self.shedder is None or not self.shedder.relax(now):
            return False
        self.set_shedding_policy(self.shedder.policy)
        return True

    def _view_of(self, cluster: MovingCluster) -> ClusterJoinView:
        """Cached join view of ``cluster``, rebuilt only when it changed."""
        view = self._view_cache.get(cluster.cid)
        if view is not None and view.version == cluster.version:
            self.view_cache_hits += 1
            return view
        self.view_cache_misses += 1
        view = ClusterJoinView(cluster)
        self._view_cache[cluster.cid] = view
        return view

    def _joining_phase(self, now: float, results: List[QueryMatch]) -> None:
        """Algorithm 1, lines 8-21: the cell sweep."""
        if self.config.incremental:
            self._joining_phase_incremental(now, results)
            return
        if self.config.batched_join is not False:
            self._joining_phase_batched(now, results)
            return
        storage = self.world.storage
        view_of = self._view_of
        backend = self.kernels

        # Self join-within for every mixed cluster (Algorithm 1, line 15).
        for cluster in storage.clusters():
            if cluster.is_mixed:
                self.within_tests += join_within_self(
                    view_of(cluster), now, results, backend
                )

        # Pairwise joins for clusters sharing a grid cell.  A pair may share
        # several cells; the seen-set makes it join exactly once.
        seen_pairs = self._seen_pairs
        seen_pairs.clear()
        between_cache = self._between_cache
        use_filter = self.config.use_between_filter
        grid = self.world.grid
        for cell, members in grid.occupied_cells():
            if len(members) < 2:
                continue
            cids = grid.sorted_members(cell)
            for i, cid_l in enumerate(cids):
                left = storage.get(cid_l)
                for cid_r in cids[i + 1 :]:
                    pair = (cid_l, cid_r)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    right = storage.get(cid_r)
                    # Join only pairs that can mix types (line 18).
                    if not (
                        (left.objects and right.queries)
                        or (left.queries and right.objects)
                    ):
                        continue
                    if use_filter:
                        # between_tests counts the *logical* filter
                        # applications (the paper's cost metric); the memo
                        # only skips recomputing the geometry for pairs
                        # whose clusters are both unchanged.
                        self.between_tests += 1
                        cached = between_cache.get(pair)
                        if (
                            cached is not None
                            and cached[0] == left.version
                            and cached[1] == right.version
                        ):
                            self.between_cache_hits += 1
                            verdict = cached[2]
                        else:
                            self.between_cache_misses += 1
                            verdict = join_between(left, right)
                            between_cache[pair] = (
                                left.version,
                                right.version,
                                verdict,
                            )
                        if not verdict:
                            continue
                        self.between_hits += 1
                    self.within_tests += join_within_pair(
                        view_of(left), view_of(right), now, results, backend
                    )

    # -- macro-batched sweep (config.batched_join) --------------------------------

    def _joining_phase_batched(self, now: float, results: List[QueryMatch]) -> None:
        """The macro-batched sweep: same visit order, whole-tick batches.

        Observationally identical to :meth:`_joining_phase`'s per-pair
        loop — the candidate pairs, the logical counter increments
        (``between_tests``/``within_tests``/cache hits and misses) and the
        QueryMatch multiset all match — but the work is restructured into
        three whole-tick batch operations: vectorised pair enumeration
        over the grid cells (:class:`BatchJoinState`), one
        ``pairs_between`` kernel call over every uncached candidate pair,
        and fused ``join_segments`` runs over consecutive shed-free
        surviving pairs.  Shed clusters flush the pending segment run and
        take the per-pair path, so emission stays grouped in the canonical
        per-unit order.
        """
        storage = self.world.storage
        backend = self.kernels
        state = self._batch_state
        if state is None:
            state = self._batch_state = BatchJoinState(
                resolve_sweep_numpy(backend.name)
            )
        clusters = storage.clusters()
        state.soa.sync(clusters)

        pending: List[Tuple[ClusterJoinView, ClusterJoinView]] = []
        pending_append = pending.append
        # The view cache probe is inlined (vs _view_of) in both driver
        # loops: at tens of thousands of probes per tick the method-call
        # frame is measurable.  Hit/miss tallies accumulate in locals and
        # fold into the counters once per phase.
        view_cache = self._view_cache
        view_get = view_cache.get
        view_hits = 0
        view_misses = 0

        def flush() -> None:
            if pending:
                self.join_segments += len(pending)
                self.within_tests += backend.join_segments(pending, now, results)
                pending.clear()

        # Self join-within (Algorithm 1, line 15): a shed-free mixed
        # cluster queues an exact×exact segment; shed members force the
        # per-case kernel sequencing, so those clusters flush and run the
        # per-pair path in place.
        for cluster in clusters:
            if not (cluster.objects and cluster.queries):  # is_mixed
                continue
            cid = cluster.cid
            view = view_get(cid)
            if view is not None and view.version == cluster.version:
                view_hits += 1
            else:
                view_misses += 1
                view = ClusterJoinView(cluster)
                view_cache[cid] = view
            if cluster.shed_count:
                flush()
                self.within_tests += join_within_self(view, now, results, backend)
            else:
                # Shed-free and mixed: both member columns are non-empty.
                pending_append((view, view))

        use_filter = self.config.use_between_filter
        (survivor_l, survivor_r), mixed, cache_hits, cache_misses = state.sweep(
            self.world.grid, use_filter, self._between_cache, backend
        )
        self.join_pairs_batched += mixed
        if use_filter:
            self.between_tests += mixed
            self.between_cache_hits += cache_hits
            self.between_cache_misses += cache_misses
            self.between_hits += len(survivor_l)
        get = storage.get
        np_mod = state.np
        if (
            np_mod is not None
            and not self._ever_shed
            and not isinstance(survivor_l, list)
        ):
            # Vectorised segment assembly (numpy sweep, never-shed run).
            # Views resolve once per unique survivor cid; the per-pair
            # driver would probe the cache once per *occurrence*, and
            # every repeat occurrence would hit (the version cannot move
            # mid-phase), so the repeats fold into one synthetic tally.
            n_pairs = int(survivor_l.size)
            uniq = np_mod.unique(np_mod.concatenate((survivor_l, survivor_r)))
            for cid in uniq.tolist():
                cl = get(cid)
                view = view_get(cid)
                if view is not None and view.version == cl.version:
                    view_hits += 1
                else:
                    view_misses += 1
                    view_cache[cid] = ClusterJoinView(cl)
            view_hits += 2 * n_pairs - int(uniq.size)
            # Never-shed makes the registry's member-table truthiness
            # columns exact-column truthiness, so direction validity
            # (objects on one side, queries on the other) is two masked
            # gathers.  Interleaved even/odd slots keep the canonical
            # emission order: per pair L→R then R→L, pairs in first-seen
            # sweep order.
            has_obj, has_qry = state.soa.arrays(np_mod)[5:]
            il = survivor_l - state.soa.base
            ir = survivor_r - state.soa.base
            slot_o = np_mod.empty(2 * n_pairs, dtype=np_mod.int64)
            slot_q = np_mod.empty(2 * n_pairs, dtype=np_mod.int64)
            valid = np_mod.empty(2 * n_pairs, dtype=bool)
            slot_o[0::2] = survivor_l
            slot_q[0::2] = survivor_r
            valid[0::2] = has_obj[il] & has_qry[ir]
            slot_o[1::2] = survivor_r
            slot_q[1::2] = survivor_l
            valid[1::2] = has_obj[ir] & has_qry[il]
            o_cids = slot_o[valid]
            q_cids = slot_q[valid]
            # Never-shed also means the self loop above never flushed:
            # ``pending`` holds exactly the self segments, in cluster
            # order, ahead of the pair segments — the canonical per-unit
            # order.  All referenced views are fresh in the cache (self
            # loop + uniq loop), so the segment table indexes it directly.
            nseg = len(pending) + int(o_cids.size)
            if nseg:
                scids = np_mod.asarray(
                    [seg[0].cid for seg in pending], dtype=np_mod.int64
                )
                all_cids = np_mod.unique(np_mod.concatenate((scids, uniq)))
                view_table = [view_cache[cid] for cid in all_cids.tolist()]
                self_pos = np_mod.searchsorted(all_cids, scids)
                o_pos = np_mod.concatenate(
                    (self_pos, np_mod.searchsorted(all_cids, o_cids))
                )
                q_pos = np_mod.concatenate(
                    (self_pos, np_mod.searchsorted(all_cids, q_cids))
                )
                pending.clear()
                self.join_segments += nseg
                self.within_tests += backend.join_segments_indexed(
                    view_table, o_pos, q_pos, now, results
                )
            self.view_cache_hits += view_hits
            self.view_cache_misses += view_misses
            return
        # Per-tick cid resolution: a survivor cluster recurs across many
        # pairs, so the (view, shed, column-presence) lookup resolves once
        # per cid and later occurrences are one dict probe.  A repeat
        # occurrence tallies a view-cache hit — after the first probe the
        # view is cached and the version cannot move mid-phase, so the
        # per-pair driver's per-occurrence probe would hit too.
        resolved: Dict[int, Tuple[ClusterJoinView, bool, bool, bool]] = {}
        res_get = resolved.get
        for cid_l, cid_r in zip(survivor_l, survivor_r):
            info = res_get(cid_l)
            if info is None:
                cl = get(cid_l)
                left = view_get(cid_l)
                if left is not None and left.version == cl.version:
                    view_hits += 1
                else:
                    view_misses += 1
                    left = ClusterJoinView(cl)
                    view_cache[cid_l] = left
                info = resolved[cid_l] = (
                    left,
                    bool(cl.shed_count),
                    bool(left.obj_ids),
                    bool(left.query_ids),
                )
            else:
                view_hits += 1
            left, shed_l, obj_l, qry_l = info
            info = res_get(cid_r)
            if info is None:
                cr = get(cid_r)
                right = view_get(cid_r)
                if right is not None and right.version == cr.version:
                    view_hits += 1
                else:
                    view_misses += 1
                    right = ClusterJoinView(cr)
                    view_cache[cid_r] = right
                info = resolved[cid_r] = (
                    right,
                    bool(cr.shed_count),
                    bool(right.obj_ids),
                    bool(right.query_ids),
                )
            else:
                view_hits += 1
            right, shed_r, obj_r, qry_r = info
            if shed_l or shed_r:
                flush()
                self.within_tests += join_within_pair(
                    left, right, now, results, backend
                )
            else:
                if obj_l and qry_r:
                    pending_append((left, right))
                if obj_r and qry_l:
                    pending_append((right, left))
        flush()
        self.view_cache_hits += view_hits
        self.view_cache_misses += view_misses

    # -- incremental sweep (config.incremental) -----------------------------------

    def _refresh_sweep_marks(
        self,
    ) -> Tuple[Dict[int, Tuple[int, float, float]], Set[int]]:
        """Snapshot every cluster's structural mark; classify clean vs dirty.

        A cluster is *clean* when its mark — ``(struct_version, disp_x,
        disp_y)`` — is unchanged since the previous sweep and it has no
        shed members (shed answers depend on nucleus geometry the marks do
        not cover).  Replacing the mark table wholesale also prunes marks
        of dissolved clusters for free.
        """
        prev = self._sweep_marks
        marks: Dict[int, Tuple[int, float, float]] = {}
        clean: Set[int] = set()
        for cluster in self.world.storage:
            cid = cluster.cid
            mark = (cluster.struct_version, cluster.disp_x, cluster.disp_y)
            marks[cid] = mark
            if cluster.shed_count == 0 and prev.get(cid) == mark:
                clean.add(cid)
        self._sweep_marks = marks
        self.cluster_clean_hits += len(clean)
        self.cluster_clean_misses += len(marks) - len(clean)
        return marks, clean

    def _compute_pair_fresh(
        self,
        pair: Tuple[int, int],
        left: MovingCluster,
        right: MovingCluster,
        now: float,
        results: List[QueryMatch],
        marks: Dict[int, Tuple[int, float, float]],
    ) -> None:
        """Compute one pair with the kernels and memoize the answer.

        Mirrors the full sweep's per-pair logic (between filter + cache,
        then join-within), then records the verdict, the logical test count
        and the matched ``(qid, oid)`` pairs under the clusters' current
        structural marks.  Shed clusters are never memoized: their answers
        depend on nucleus geometry the marks do not cover.
        """
        self.replay_misses += 1
        verdict = True
        if self.config.use_between_filter:
            self.between_tests += 1
            between_cache = self._between_cache
            cached = between_cache.get(pair)
            if (
                cached is not None
                and cached[0] == left.version
                and cached[1] == right.version
            ):
                self.between_cache_hits += 1
                verdict = cached[2]
            else:
                self.between_cache_misses += 1
                verdict = join_between(left, right)
                between_cache[pair] = (left.version, right.version, verdict)
            if verdict:
                self.between_hits += 1
        start = len(results)
        tests = 0
        if verdict:
            tests = join_within_pair(
                self._view_of(left), self._view_of(right), now, results, self.kernels
            )
            self.within_tests += tests
        if left.shed_count == 0 and right.shed_count == 0:
            self._pair_memo[pair] = (
                marks[pair[0]],
                marks[pair[1]],
                verdict,
                tests,
                tuple(m.pair for m in results[start:]),
            )
        else:
            self._pair_memo.pop(pair, None)

    def _joining_phase_incremental(
        self, now: float, results: List[QueryMatch]
    ) -> None:
        """The delta-driven sweep: same visit order, replayed answers.

        Self joins and the cell sweep run in exactly the full sweep's
        order, so fresh computations interleave with replays exactly where
        the full recompute would have produced the same matches.  Cells
        whose membership is untouched (grid dirty set) and whose residents
        are all clean replay their memoized pair list wholesale without
        enumerating cluster combinations.

        Pair replay requires both clusters structurally unchanged since
        the memo *and* their displacement deltas to cancel exactly — then
        every member position the kernels would see is bitwise identical
        to the memoized run (memos are never recorded for shed clusters,
        and a shed transition bumps ``struct_version``, so shed geometry
        can never be replayed).  The memoized between verdict stays sound
        even though maintenance may since have recentred or re-tightened
        the clusters: the verdict was lossless with respect to the member
        positions, and those are unchanged.  The replay counters are
        kept in locals through the sweep (hot path) and flushed at the
        end.
        """
        storage = self.world.storage
        marks, clean = self._refresh_sweep_marks()
        self_memo = self._self_memo
        use_filter = self.config.use_between_filter
        replay_hits = 0
        replayed_tests = 0
        replayed_between = 0
        replayed_between_hits = 0

        for cluster in storage.clusters():
            if not cluster.is_mixed:
                continue
            cid = cluster.cid
            memo = self_memo.get(cid)
            if (
                memo is not None
                and memo[0] == cluster.struct_version
                and cluster.shed_count == 0
            ):
                # A cluster co-moves with itself: rigid translation cannot
                # change its self-join answer, so struct-clean suffices.
                replay_hits += 1
                replayed_tests += memo[1]
                if memo[2]:
                    results.extend(
                        [QueryMatch(qid, oid, now) for qid, oid in memo[2]]
                    )
                continue
            self.replay_misses += 1
            start = len(results)
            tests = join_within_self(
                self._view_of(cluster), now, results, self.kernels
            )
            self.within_tests += tests
            if cluster.shed_count == 0:
                self_memo[cid] = (
                    cluster.struct_version,
                    tests,
                    tuple(m.pair for m in results[start:]),
                )
            else:
                self_memo.pop(cid, None)

        seen_pairs = self._seen_pairs
        seen_pairs.clear()
        grid = self.world.grid
        dirty_cells = grid.dirty_cells()
        cell_pairs = self._cell_pairs
        pair_memo = self._pair_memo
        compute_fresh = self._compute_pair_fresh
        clean_superset = clean.issuperset
        for cell, members in grid.occupied_cells():
            if len(members) < 2:
                continue
            cids = grid.sorted_members(cell)
            if cell not in dirty_cells:
                cached = cell_pairs.get(cell)
                if cached is not None and clean_superset(cids):
                    # Membership untouched and every resident clean: the
                    # cached pair list is exactly what enumeration would
                    # find, and every memo on it is valid.
                    self.cell_replay_hits += 1
                    for pair in cached:
                        if pair in seen_pairs:
                            continue
                        seen_pairs.add(pair)
                        memo = pair_memo.get(pair)
                        if memo is not None:
                            lm = marks.get(pair[0])
                            rm = marks.get(pair[1])
                            ml = memo[0]
                            mr = memo[1]
                            if (
                                lm is not None
                                and rm is not None
                                and lm[0] == ml[0]
                                and rm[0] == mr[0]
                                and lm[1] - ml[1] == rm[1] - mr[1]
                                and lm[2] - ml[2] == rm[2] - mr[2]
                            ):
                                replay_hits += 1
                                replayed_tests += memo[3]
                                if use_filter:
                                    replayed_between += 1
                                    if memo[2]:
                                        replayed_between_hits += 1
                                if memo[4]:
                                    results.extend(
                                        [
                                            QueryMatch(qid, oid, now)
                                            for qid, oid in memo[4]
                                        ]
                                    )
                                continue
                        compute_fresh(
                            pair,
                            storage.get(pair[0]),
                            storage.get(pair[1]),
                            now,
                            results,
                            marks,
                        )
                    continue
            self.cell_replay_misses += 1
            # Full enumeration; rebuild this cell's mixed-pair list.  Pairs
            # already handled in an earlier cell are *not* listed here —
            # the sweep's deterministic cell order makes the earlier cell
            # replay them first next time too.
            mixed_pairs: List[Tuple[int, int]] = []
            for i, cid_l in enumerate(cids):
                left = storage.get(cid_l)
                for cid_r in cids[i + 1 :]:
                    pair = (cid_l, cid_r)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    right = storage.get(cid_r)
                    if not (
                        (left.objects and right.queries)
                        or (left.queries and right.objects)
                    ):
                        continue
                    mixed_pairs.append(pair)
                    memo = pair_memo.get(pair)
                    if memo is not None:
                        lm = marks.get(cid_l)
                        rm = marks.get(cid_r)
                        ml = memo[0]
                        mr = memo[1]
                        if (
                            lm is not None
                            and rm is not None
                            and lm[0] == ml[0]
                            and rm[0] == mr[0]
                            and lm[1] - ml[1] == rm[1] - mr[1]
                            and lm[2] - ml[2] == rm[2] - mr[2]
                        ):
                            replay_hits += 1
                            replayed_tests += memo[3]
                            if use_filter:
                                replayed_between += 1
                                if memo[2]:
                                    replayed_between_hits += 1
                            if memo[4]:
                                results.extend(
                                    [
                                        QueryMatch(qid, oid, now)
                                        for qid, oid in memo[4]
                                    ]
                                )
                            continue
                    compute_fresh(pair, left, right, now, results, marks)
            cell_pairs[cell] = tuple(mixed_pairs)
        grid.clear_dirty()
        self.replay_hits += replay_hits
        self.within_tests += replayed_tests
        self.between_tests += replayed_between
        self.between_hits += replayed_between_hits

    def _post_join_maintenance(self, now: float) -> None:
        """Dissolve arrivals, advance survivors, refresh the grid."""
        cfg = self.config
        if cfg.stale_after is not None:
            cutoff = now - cfg.stale_after
            self.evicted_stale += self.objects_table.evict_stale(cutoff)
            self.evicted_stale += self.queries_table.evict_stale(cutoff)
        engine = self.maintenance_engine
        if engine is not None:
            # Columnar path: same per-cluster semantics, restructured into
            # whole-world vectorized passes (see repro.columnar.engine).
            engine.run(self, now)
            return
        for cluster in list(self.world.storage):
            if cfg.expire_clusters and (
                cluster.has_expired(now) or cluster.will_pass_destination(cfg.delta)
            ):
                if cfg.split_at_destination:
                    # Regroup any members whose reported next destination
                    # already diverged (stragglers under partial update
                    # fractions); the common case — members peeling off one
                    # by one as they cross — is handled at eviction time by
                    # the clusterer's successor links.
                    split_cluster(self.world, cluster, now)
                else:
                    self.world.dissolve(cluster)
                continue
            # Clusters untouched since their last update (shed members,
            # partial update fractions) still move by their velocity.
            cluster.advance_to(now)
            if cfg.recompute_radius:
                # Per-interval compaction: bake the transformation vector,
                # re-centre on the true member mean (per-tuple refreshes do
                # not touch the centroid), and tighten the radius.
                cluster.flush_transform()
                cluster.recentre()
                cluster.recompute_radius()
            cluster.update_expiry(now)
            self.world.grid.refresh(cluster)
        self._prune_caches()

    def _prune_caches(self) -> None:
        """Drop cache entries for clusters that no longer exist.

        cids are allocated monotonically and never reused, so dead entries
        can never produce stale hits — pruning is purely to bound memory
        across long runs with cluster churn.
        """
        storage = self.world.storage
        view_cache = self._view_cache
        if len(view_cache) > len(storage):
            dead = [cid for cid in view_cache if cid not in storage]
            for cid in dead:
                del view_cache[cid]
        self_memo = self._self_memo
        if len(self_memo) > len(storage):
            dead = [cid for cid in self_memo if cid not in storage]
            for cid in dead:
                del self_memo[cid]
        # Pair-keyed caches have no cheap live-size reference, so the full
        # scan only fires past a watermark that doubles beyond the live
        # size after each prune: stable runs never scan, and memory stays
        # within 2x of the live pair population.
        self._between_watermark = self._prune_pair_cache(
            self._between_cache, self._between_watermark
        )
        self._pair_memo_watermark = self._prune_pair_cache(
            self._pair_memo, self._pair_memo_watermark
        )
        cell_pairs = self._cell_pairs
        grid = self.world.grid
        if len(cell_pairs) > 2 * grid.occupied_cell_count + 64:
            vacant = [cell for cell in cell_pairs if not grid.members(cell)]
            for cell in vacant:
                del cell_pairs[cell]
        state = self._batch_state
        if state is not None:
            state.prune(storage)

    def _prune_pair_cache(
        self, cache: Dict[Tuple[int, int], Any], watermark: int
    ) -> int:
        """Drop dead-cid entries from a pair-keyed cache past ``watermark``.

        Returns the next watermark: twice the surviving size (floor 64),
        so prune cost is amortised against actual growth.
        """
        if len(cache) <= watermark:
            return watermark
        storage = self.world.storage
        dead_pairs = [
            pair
            for pair in cache
            if pair[0] not in storage or pair[1] not in storage
        ]
        for pair in dead_pairs:
            del cache[pair]
        return max(64, 2 * len(cache))

    # -- introspection ---------------------------------------------------------------

    @property
    def cluster_count(self) -> int:
        return self.world.cluster_count

    @property
    def split_joins(self) -> int:
        """Node crossings resolved through successor links (splitting on)."""
        return self.clusterer.split_joins

    def join_counters(self) -> Dict[str, Any]:
        """Kernel/cache instrumentation folded into run statistics."""
        kernel = self.ingest_kernel
        counters: Dict[str, Any] = {
            "kernel_backend": self.kernels.name,
            "incremental": self.config.incremental,
            "batched_ingest": self.config.batched_ingest,
            "batched_join": self.config.batched_join_active,
            "columnar": self.config.columnar,
            "join_pairs_batched": self.join_pairs_batched,
            "join_segments": self.join_segments,
            "evicted_stale": self.evicted_stale,
            "store_compactions": (
                self.maintenance_engine.compactions
                if self.maintenance_engine is not None
                else 0
            ),
            "store_compaction_seconds": (
                self.maintenance_engine.compaction_seconds
                if self.maintenance_engine is not None
                else 0.0
            ),
            # Zeros when batching is off, so merged/reported stat shapes
            # do not depend on the flag.
            "fast_path_batched": 0,
            "bulk_absorbs": 0,
            "grid_refresh_deduped": 0,
            "batch_fallbacks": 0,
            "grid_refresh_skips": self.world.grid.refresh_skips,
        }
        if kernel is not None:
            counters["ingest_backend"] = kernel.name
            counters.update(kernel.counters())
        if self.maintenance_engine is not None:
            counters["columnar_backend"] = self.maintenance_engine.resolved_name
        counters.update(self._join_cache_counters())
        return counters

    def _join_cache_counters(self) -> Dict[str, Any]:
        return {
            "view_cache_hits": self.view_cache_hits,
            "view_cache_misses": self.view_cache_misses,
            "between_cache_hits": self.between_cache_hits,
            "between_cache_misses": self.between_cache_misses,
            "replay_hits": self.replay_hits,
            "replay_misses": self.replay_misses,
            "cell_replay_hits": self.cell_replay_hits,
            "cell_replay_misses": self.cell_replay_misses,
            "cluster_clean_hits": self.cluster_clean_hits,
            "cluster_clean_misses": self.cluster_clean_misses,
        }

    def state_roots(self) -> List[object]:
        """The five in-memory structures of §4.1 (for memory accounting)."""
        return [
            self.objects_table,
            self.queries_table,
            self.world.home,
            self.world.storage,
            self.world.grid,
        ]

    def reset(self) -> None:
        """Drop all clusters and tables, keeping configuration."""
        self._init_state()

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without caches or the backend instance.

        Views hold backend scratch data (ndarray mirrors, sort
        permutations) that must not cross process boundaries; the backend
        itself is re-resolved from config on the other side, so a shard
        shipped to a worker without NumPy degrades gracefully.
        """
        state = self.__dict__.copy()
        for transient in (
            "kernels",
            "ingest_kernel",
            "_view_cache",
            "_between_cache",
            "_seen_pairs",
            "_pair_memo",
            "_self_memo",
            "_sweep_marks",
            "_cell_pairs",
            "_batch_state",
        ):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.kernels = resolve_backend(self.config.kernel_backend)
        self.ingest_kernel = (
            make_ingest_kernel(self.config.kernel_backend)
            if self.config.batched_ingest
            else None
        )
        self._view_cache = {}
        self._between_cache = {}
        self._seen_pairs = set()
        # Empty memos and an empty mark table make the first post-unpickle
        # sweep a plain full recompute; replay resumes from there.
        self._pair_memo = {}
        self._self_memo = {}
        self._sweep_marks = {}
        self._cell_pairs = {}
        # Rebuilt lazily so the numpy-vs-stdlib sweep path is resolved in
        # the receiving process, not the one that pickled us.
        self._batch_state = None

    def __repr__(self) -> str:
        return (
            f"Scuba({self.cluster_count} clusters, "
            f"{len(self.objects_table)} objects, "
            f"{len(self.queries_table)} queries, "
            f"shedding={self.config.shedding!r})"
        )
