"""The SCUBA continuous operator (paper §4.2, Algorithm 1).

Execution cycles through three phases:

1. **Cluster pre-join maintenance** — runs continuously between
   evaluations: every incoming location update is clustered incrementally
   (:meth:`Scuba.on_update`), and the configured load-shedding policy may
   immediately discard the member's relative position.
2. **Cluster-based joining** — fires every Δ time units
   (:meth:`Scuba.evaluate`): a sweep over the occupied ClusterGrid cells
   joins co-located cluster pairs with the lossless join-between filter,
   descending into join-within only for surviving pairs; mixed clusters
   additionally self-join.
3. **Cluster post-join maintenance** — still inside :meth:`evaluate`:
   clusters that have reached (or will pass) their destination connection
   node are dissolved, survivors are advanced along their velocity vectors
   to their expected position at the next evaluation and re-registered in
   the grid.

Instrumentation counters (`between_tests`, `within_tests`, ...) are part of
the public surface: the paper's figures report exactly these costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import hypot
from typing import Dict, List, Optional, Set, Tuple

from ..clustering import (
    ClusteringSpec,
    ClusterWorld,
    IncrementalClusterer,
    MovingCluster,
    split_cluster,
)
from ..generator import EntityKind, Update
from ..geometry import Rect
from ..network import DEFAULT_BOUNDS
from ..shedding import NoShedding, SheddingPolicy
from ..streams import ContinuousJoinOperator, QueryMatch, Timer
from .joins import ClusterJoinView, join_between, join_within_pair, join_within_self
from .tables import ObjectsTable, QueriesTable

__all__ = ["ScubaConfig", "Scuba"]


@dataclass
class ScubaConfig:
    """Tuning knobs of the SCUBA operator.

    Defaults reproduce the paper's experimental settings (§6.1): a 100×100
    ClusterGrid, ``Θ_D = 100`` spatial units, ``Θ_S = 10`` units/time-unit,
    Δ = 2 time units, no load shedding.
    """

    bounds: Rect = field(default_factory=lambda: DEFAULT_BOUNDS)
    grid_size: int = 100
    theta_d: float = 100.0
    theta_s: float = 10.0
    #: Δ — the evaluation period, used by post-join maintenance to advance
    #: clusters to their expected next-evaluation position.
    delta: float = 2.0
    #: Load-shedding policy (η knob of §5/Fig. 13).
    shedding: SheddingPolicy = field(default_factory=NoShedding)
    #: Require identical destination connection node for cluster admission.
    #: Disabled only by the direction-predicate ablation.
    require_same_destination: bool = True
    #: Tighten cluster radii during post-join maintenance.  The paper's
    #: pseudocode only ever grows radii; recomputation keeps long-lived
    #: clusters compact.  Disabled by the deterioration ablation.
    recompute_radius: bool = True
    #: Dissolve clusters at their destination (paper behaviour).  Disabled
    #: by the deterioration ablation.
    expire_clusters: bool = True
    #: Apply the join-between pre-filter.  Disabled by the two-step-join
    #: ablation, which joins-within every co-located cluster pair.
    use_between_filter: bool = True
    #: Split clusters at their destination node instead of dissolving them
    #: outright — the paper's §3.1 future-work option.  Members that have
    #: already reported their next destination are regrouped into
    #: successor clusters without re-clustering churn.
    split_at_destination: bool = False

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")

    def clustering_spec(self) -> ClusteringSpec:
        return ClusteringSpec(
            theta_d=self.theta_d,
            theta_s=self.theta_s,
            require_same_destination=self.require_same_destination,
            enable_splitting=self.split_at_destination,
        )


class Scuba(ContinuousJoinOperator):
    """Shared cluster-based execution of continuous spatio-temporal queries."""

    def __init__(self, config: Optional[ScubaConfig] = None) -> None:
        self.config = config if config is not None else ScubaConfig()
        self.world = ClusterWorld(self.config.bounds, self.config.grid_size)
        self.clusterer = IncrementalClusterer(
            self.world, self.config.clustering_spec()
        )
        self.objects_table = ObjectsTable()
        self.queries_table = QueriesTable()
        self._shed_is_noop = isinstance(self.config.shedding, NoShedding)
        # Phase timings of the most recent evaluate().
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0
        # Cumulative instrumentation.
        self.between_tests = 0
        self.between_hits = 0
        self.within_tests = 0
        self.evaluations = 0

    # -- phase 1: pre-join maintenance ------------------------------------------

    def on_update(self, update: Update) -> None:
        """Cluster one incoming update (and maybe shed its position)."""
        if update.kind is EntityKind.OBJECT:
            self.objects_table.record(update.entity_id, update.attrs, update.t)
        else:
            self.queries_table.record(update.entity_id, update.attrs, update.t)
        cluster = self.clusterer.ingest(update)
        if not self._shed_is_noop:
            dist = hypot(update.loc.x - cluster.cx, update.loc.y - cluster.cy)
            self.config.shedding.apply(cluster, update, dist)

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Forget one entity: evict it from its cluster and its table.

        Used by sharded execution when an entity's reported position leaves
        this operator's halo region.  Eviction reuses the clusterer's
        membership pathway, so cluster invariants (home/grid consistency,
        dissolution of emptied clusters) hold exactly as for re-clustering.
        """
        cid = self.world.home.cluster_of(entity_id, kind)
        if cid is not None:
            self.world.evict(self.world.storage.get(cid), entity_id, kind)
        table = (
            self.objects_table if kind is EntityKind.OBJECT else self.queries_table
        )
        table.evict(entity_id)

    # -- phases 2 + 3: joining and post-join maintenance --------------------------

    def evaluate(self, now: float) -> List[QueryMatch]:
        """One Δ-triggered evaluation; returns the current query answers."""
        self.evaluations += 1
        results: List[QueryMatch] = []
        join_timer = Timer()
        with join_timer:
            self._joining_phase(now, results)
        self.last_join_seconds = join_timer.seconds

        maintenance_timer = Timer()
        with maintenance_timer:
            self._post_join_maintenance(now)
        self.last_maintenance_seconds = maintenance_timer.seconds
        return results

    def _joining_phase(self, now: float, results: List[QueryMatch]) -> None:
        """Algorithm 1, lines 8-21: the cell sweep."""
        storage = self.world.storage
        views: Dict[int, ClusterJoinView] = {}

        def view_of(cluster: MovingCluster) -> ClusterJoinView:
            view = views.get(cluster.cid)
            if view is None:
                view = ClusterJoinView(cluster)
                views[cluster.cid] = view
            return view

        # Self join-within for every mixed cluster (Algorithm 1, line 15).
        for cluster in storage.clusters():
            if cluster.is_mixed:
                self.within_tests += join_within_self(view_of(cluster), now, results)

        # Pairwise joins for clusters sharing a grid cell.  A pair may share
        # several cells; the seen-set makes it join exactly once.
        seen_pairs: Set[Tuple[int, int]] = set()
        use_filter = self.config.use_between_filter
        for _cell, members in self.world.grid.occupied_cells():
            if len(members) < 2:
                continue
            cids = sorted(members)
            for i, cid_l in enumerate(cids):
                left = storage.get(cid_l)
                for cid_r in cids[i + 1 :]:
                    pair = (cid_l, cid_r)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    right = storage.get(cid_r)
                    # Join only pairs that can mix types (line 18).
                    if not (
                        (left.objects and right.queries)
                        or (left.queries and right.objects)
                    ):
                        continue
                    if use_filter:
                        self.between_tests += 1
                        if not join_between(left, right):
                            continue
                        self.between_hits += 1
                    self.within_tests += join_within_pair(
                        view_of(left), view_of(right), now, results
                    )

    def _post_join_maintenance(self, now: float) -> None:
        """Dissolve arrivals, advance survivors, refresh the grid."""
        cfg = self.config
        for cluster in list(self.world.storage):
            if cfg.expire_clusters and (
                cluster.has_expired(now) or cluster.will_pass_destination(cfg.delta)
            ):
                if cfg.split_at_destination:
                    # Regroup any members whose reported next destination
                    # already diverged (stragglers under partial update
                    # fractions); the common case — members peeling off one
                    # by one as they cross — is handled at eviction time by
                    # the clusterer's successor links.
                    split_cluster(self.world, cluster, now)
                else:
                    self.world.dissolve(cluster)
                continue
            # Clusters untouched since their last update (shed members,
            # partial update fractions) still move by their velocity.
            cluster.advance_to(now)
            if cfg.recompute_radius:
                # Per-interval compaction: bake the transformation vector,
                # re-centre on the true member mean (per-tuple refreshes do
                # not touch the centroid), and tighten the radius.
                cluster.flush_transform()
                cluster.recentre()
                cluster.recompute_radius()
            cluster.update_expiry(now)
            self.world.grid.refresh(cluster)

    # -- introspection ---------------------------------------------------------------

    @property
    def cluster_count(self) -> int:
        return self.world.cluster_count

    @property
    def split_joins(self) -> int:
        """Node crossings resolved through successor links (splitting on)."""
        return self.clusterer.split_joins

    def state_roots(self) -> List[object]:
        """The five in-memory structures of §4.1 (for memory accounting)."""
        return [
            self.objects_table,
            self.queries_table,
            self.world.home,
            self.world.storage,
            self.world.grid,
        ]

    def reset(self) -> None:
        """Drop all clusters and tables, keeping configuration."""
        self.__init__(self.config)

    def __repr__(self) -> str:
        return (
            f"Scuba({self.cluster_count} clusters, "
            f"{len(self.objects_table)} objects, "
            f"{len(self.queries_table)} queries, "
            f"shedding={self.config.shedding!r})"
        )
