"""Shared *incremental* grid evaluation — a SINA-flavoured third baseline.

The paper positions SCUBA against the shared-execution school of SINA
[24] and SEA-CNN [39], whose other key idea is **incremental evaluation**:
instead of recomputing every query's answer each Δ, maintain the answers
and update them from *positive* and *negative* deltas as objects and
queries move.  The regular grid operator re-joins everything; this
operator only touches what changed:

* an object update re-tests the object against the queries of its old and
  new cells (answers it left, answers it entered);
* a query update re-scans only that query's old/new cell footprint;
* evaluation then simply *reads off* the maintained answer sets.

It produces exactly the same answers as the other operators (asserted in
the equivalence tests) and gives the evaluation a second traditional
contender whose costs concentrate in ingest rather than in the join phase
— the regime the paper's §7 relates SCUBA to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..generator import EntityKind, LocationUpdate, QueryUpdate, Update
from ..geometry import Point, Rect
from ..index import SpatialGrid
from ..network import DEFAULT_BOUNDS
from ..streams import QueryMatch, StagedJoinOperator

__all__ = ["IncrementalGridConfig", "IncrementalGridJoin"]


@dataclass
class IncrementalGridConfig:
    """Grid parameters (same defaults as the regular baseline)."""

    bounds: Rect = field(default_factory=lambda: DEFAULT_BOUNDS)
    grid_size: int = 100

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")


class _Object:
    __slots__ = ("x", "y", "cell")

    def __init__(self, x: float, y: float, cell: int) -> None:
        self.x = x
        self.y = y
        self.cell = cell


class _Query:
    __slots__ = ("x", "y", "hw", "hh", "cells", "answer")

    def __init__(
        self, x: float, y: float, hw: float, hh: float, cells: Tuple[int, ...]
    ) -> None:
        self.x = x
        self.y = y
        self.hw = hw
        self.hh = hh
        self.cells = cells
        #: Maintained answer: oids currently inside the window.
        self.answer: Set[int] = set()

    def covers(self, ox: float, oy: float) -> bool:
        return abs(ox - self.x) <= self.hw and abs(oy - self.y) <= self.hh


class IncrementalGridJoin(StagedJoinOperator):
    """Answer-maintaining grid join (positive/negative delta processing)."""

    def __init__(self, config: Optional[IncrementalGridConfig] = None) -> None:
        self.config = config if config is not None else IncrementalGridConfig()
        self.object_grid = SpatialGrid(self.config.bounds, self.config.grid_size)
        self.query_grid = SpatialGrid(self.config.bounds, self.config.grid_size)
        self.objects: Dict[int, _Object] = {}
        self.queries: Dict[int, _Query] = {}
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0
        #: Individual window tests performed during delta maintenance.
        self.delta_tests = 0
        self.evaluations = 0

    # -- ingest: all the work happens here ---------------------------------------

    def on_update(self, update: Update) -> None:
        if update.kind is EntityKind.OBJECT:
            self._object_update(update)
        else:
            self._query_update(update)

    def _object_update(self, update) -> None:
        oid = update.oid
        x, y = update.loc.x, update.loc.y
        cell = self.object_grid.cell_of(x, y)
        entry = self.objects.get(oid)
        if entry is None:
            entry = _Object(x, y, cell)
            self.objects[oid] = entry
            self.object_grid.insert(oid, (cell,))
            affected = self.query_grid.members(cell)
        else:
            old_cell = entry.cell
            entry.x = x
            entry.y = y
            if cell != old_cell:
                self.object_grid.relocate(oid, (old_cell,), (cell,))
                entry.cell = cell
                # Queries in either cell may gain or lose this object.
                affected = self.query_grid.members(old_cell) | self.query_grid.members(
                    cell
                )
            else:
                affected = self.query_grid.members(cell)
            # Answers held by queries not in the affected cells can only
            # involve the old position's cells — handled above since an
            # in-window object always shares a cell with its query.
        for qid in affected:
            query = self.queries[qid]
            self.delta_tests += 1
            if query.covers(x, y):
                query.answer.add(oid)
            else:
                query.answer.discard(oid)

    def _query_update(self, update) -> None:
        qid = update.qid
        cells = tuple(self.query_grid.cells_for_rect(update.region()))
        query = self.queries.get(qid)
        if query is None:
            query = _Query(
                update.loc.x,
                update.loc.y,
                update.range_width / 2.0,
                update.range_height / 2.0,
                cells,
            )
            self.queries[qid] = query
            self.query_grid.insert(qid, cells)
        else:
            if cells != query.cells:
                self.query_grid.relocate(qid, query.cells, cells)
                query.cells = cells
            query.x = update.loc.x
            query.y = update.loc.y
            query.hw = update.range_width / 2.0
            query.hh = update.range_height / 2.0
        # Rebuild this one query's answer from its (new) footprint.
        answer: Set[int] = set()
        object_grid = self.object_grid
        objects = self.objects
        for cell in cells:
            for oid in object_grid.members(cell):
                entry = objects[oid]
                self.delta_tests += 1
                if query.covers(entry.x, entry.y):
                    answer.add(oid)
        query.answer = answer

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Drop one entity and its answer contributions (halo hand-off).

        Retracting an object also removes it from the maintained answer of
        every query hashed into its cell — the only queries whose answers
        can contain it, since an in-window object always shares a cell
        with its query.
        """
        if kind is EntityKind.OBJECT:
            entry = self.objects.pop(entity_id, None)
            if entry is None:
                return
            self.object_grid.remove(entity_id, (entry.cell,))
            for qid in self.query_grid.members(entry.cell):
                self.queries[qid].answer.discard(entity_id)
        else:
            query = self.queries.pop(entity_id, None)
            if query is not None:
                self.query_grid.remove(entity_id, query.cells)

    def export_entity_updates(
        self, keys: Sequence[Tuple[int, EntityKind]]
    ) -> Dict[str, Any]:
        """Serialize entity state as replayable updates (shard migration).

        Positions and windows fully determine the maintained answers, so
        the synthesized updates carry neutral kinematics (zero speed, no
        connection node) at t=0 — the destination's delta processing
        rebuilds the answer sets from them.  Entities this shard no
        longer holds are skipped.
        """
        updates: List[Update] = []
        for entity_id, kind in keys:
            if kind is EntityKind.OBJECT:
                entry = self.objects.get(entity_id)
                if entry is None:
                    continue
                loc = Point(entry.x, entry.y)
                updates.append(
                    LocationUpdate(entity_id, loc, 0.0, 0.0, -1, loc, None)
                )
            else:
                query = self.queries.get(entity_id)
                if query is None:
                    continue
                loc = Point(query.x, query.y)
                updates.append(
                    QueryUpdate(
                        entity_id,
                        loc,
                        0.0,
                        0.0,
                        -1,
                        loc,
                        2.0 * query.hw,
                        2.0 * query.hh,
                        None,
                    )
                )
        return {"updates": updates, "clusters": len(updates)}

    # -- evaluation: read off the maintained answers --------------------------------

    def join_phase(self, now: float) -> List[QueryMatch]:
        """Materialise the maintained answer sets (no joining needed)."""
        self.evaluations += 1
        results: List[QueryMatch] = []
        for qid, query in self.queries.items():
            for oid in query.answer:
                results.append(QueryMatch(qid, oid, now))
        return results

    # -- introspection -----------------------------------------------------------

    def state_roots(self) -> List[object]:
        return [self.objects, self.queries, self.object_grid, self.query_grid]

    def reset(self) -> None:
        self.__init__(self.config)

    def __repr__(self) -> str:
        return (
            f"IncrementalGridJoin({len(self.objects)} objects, "
            f"{len(self.queries)} queries)"
        )
