"""The regular grid-based operator — the paper's comparison baseline (§6).

"We compare SCUBA with a traditional grid-based spatio-temporal range
algorithm, where objects and queries are hashed based on their locations
into an index, say a grid.  Then a cell-by-cell join between moving objects
and queries is performed.  Grid-based execution approach is a common choice
for spatio-temporal query execution [SINA, SEA-CNN, ...]."

Every update is materialised individually: objects are hashed into the
single cell containing their point, queries into every cell their range
window overlaps.  The cell-by-cell join then tests each (query, object)
pair sharing a cell.  Because an object occupies exactly one cell, no pair
is ever tested twice, so no dedup pass is needed.

This is a *shared-execution* baseline (one scan evaluates all queries) —
the strongest of the paper's traditional contenders; what it lacks relative
to SCUBA is the cluster abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..generator import EntityKind, LocationUpdate, QueryUpdate, Update
from ..geometry import Point, Rect
from ..index import SpatialGrid
from ..kernels import BACKEND_CHOICES, PointBatch, resolve_backend
from ..network import DEFAULT_BOUNDS
from ..streams import QueryMatch, StagedJoinOperator

__all__ = ["RegularConfig", "RegularGridJoin"]


@dataclass
class RegularConfig:
    """Grid parameters of the baseline (paper default: 100×100)."""

    bounds: Rect = field(default_factory=lambda: DEFAULT_BOUNDS)
    grid_size: int = 100
    #: Join-kernel backend, same choices as :class:`~repro.core.ScubaConfig`.
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {self.grid_size}")
        if self.kernel_backend not in BACKEND_CHOICES:
            raise ValueError(
                f"kernel_backend must be one of {BACKEND_CHOICES}, "
                f"got {self.kernel_backend!r}"
            )


class _ObjectEntry:
    """Latest known state of one object in the baseline's index."""

    __slots__ = ("x", "y", "cell")

    def __init__(self, x: float, y: float, cell: int) -> None:
        self.x = x
        self.y = y
        self.cell = cell


class _QueryEntry:
    """Latest known state of one query in the baseline's index."""

    __slots__ = ("x", "y", "hw", "hh", "cells")

    def __init__(
        self, x: float, y: float, hw: float, hh: float, cells: Tuple[int, ...]
    ) -> None:
        self.x = x
        self.y = y
        self.hw = hw
        self.hh = hh
        self.cells = cells


class RegularGridJoin(StagedJoinOperator):
    """Individual-update, cell-by-cell spatio-temporal range join."""

    def __init__(self, config: Optional[RegularConfig] = None) -> None:
        self.config = config if config is not None else RegularConfig()
        self._init_state()

    def _init_state(self) -> None:
        """(Re)build all mutable state from ``self.config`` (see Scuba)."""
        self.object_grid = SpatialGrid(self.config.bounds, self.config.grid_size)
        self.query_grid = SpatialGrid(self.config.bounds, self.config.grid_size)
        self.objects: Dict[int, _ObjectEntry] = {}
        self.queries: Dict[int, _QueryEntry] = {}
        self.kernels = resolve_backend(self.config.kernel_backend)
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0
        #: Cumulative count of individual (query, object) pair tests.
        self.pair_tests = 0
        self.evaluations = 0

    # -- ingest -----------------------------------------------------------------

    def on_update(self, update: Update) -> None:
        """Re-hash the entity under its new position."""
        if update.kind is EntityKind.OBJECT:
            entry = self.objects.get(update.oid)
            cell = self.object_grid.cell_of(update.loc.x, update.loc.y)
            if entry is None:
                self.objects[update.oid] = _ObjectEntry(
                    update.loc.x, update.loc.y, cell
                )
                self.object_grid.insert(update.oid, (cell,))
            else:
                if cell != entry.cell:
                    self.object_grid.relocate(update.oid, (entry.cell,), (cell,))
                    entry.cell = cell
                entry.x = update.loc.x
                entry.y = update.loc.y
        else:
            qentry = self.queries.get(update.qid)
            cells = tuple(self.query_grid.cells_for_rect(update.region()))
            if qentry is None:
                self.queries[update.qid] = _QueryEntry(
                    update.loc.x,
                    update.loc.y,
                    update.range_width / 2.0,
                    update.range_height / 2.0,
                    cells,
                )
                self.query_grid.insert(update.qid, cells)
            else:
                if cells != qentry.cells:
                    self.query_grid.relocate(update.qid, qentry.cells, cells)
                    qentry.cells = cells
                qentry.x = update.loc.x
                qentry.y = update.loc.y
                qentry.hw = update.range_width / 2.0
                qentry.hh = update.range_height / 2.0

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Drop one entity from the index (sharded halo hand-off)."""
        if kind is EntityKind.OBJECT:
            entry = self.objects.pop(entity_id, None)
            if entry is not None:
                self.object_grid.remove(entity_id, (entry.cell,))
        else:
            qentry = self.queries.pop(entity_id, None)
            if qentry is not None:
                self.query_grid.remove(entity_id, qentry.cells)

    def export_entity_updates(
        self, keys: Sequence[Tuple[int, EntityKind]]
    ) -> Dict[str, Any]:
        """Serialize entity state as replayable updates (shard migration).

        The grid index holds only positions and windows, so the
        synthesized updates carry neutral kinematics (zero speed, no
        connection node) at t=0 — re-hashing them in the destination
        reconstructs the join-relevant state exactly.  Entities this
        shard no longer holds are skipped.
        """
        updates: List[Update] = []
        for entity_id, kind in keys:
            if kind is EntityKind.OBJECT:
                entry = self.objects.get(entity_id)
                if entry is None:
                    continue
                loc = Point(entry.x, entry.y)
                updates.append(
                    LocationUpdate(entity_id, loc, 0.0, 0.0, -1, loc, None)
                )
            else:
                qentry = self.queries.get(entity_id)
                if qentry is None:
                    continue
                loc = Point(qentry.x, qentry.y)
                updates.append(
                    QueryUpdate(
                        entity_id,
                        loc,
                        0.0,
                        0.0,
                        -1,
                        loc,
                        2.0 * qentry.hw,
                        2.0 * qentry.hh,
                        None,
                    )
                )
        return {"updates": updates, "clusters": len(updates)}

    # -- evaluation ---------------------------------------------------------------

    def join_phase(self, now: float) -> List[QueryMatch]:
        """Cell-by-cell join of all hashed queries against hashed objects."""
        self.evaluations += 1
        results: List[QueryMatch] = []
        objects = self.objects
        object_grid = self.object_grid
        query_grid = self.query_grid
        kernels = self.kernels
        tests = 0
        for cell, qids in query_grid.occupied_cells():
            oids = object_grid.sorted_members(cell)
            if not oids:
                continue
            # One SoA batch per occupied cell, shared by every query
            # hashed there — the point-in-rect kernel amortises any
            # derived structure (e.g. the x-sort) across those queries.
            batch = PointBatch(
                oids,
                [objects[oid].x for oid in oids],
                [objects[oid].y for oid in oids],
            )
            for qid in query_grid.sorted_members(cell):
                q = self.queries[qid]
                tests += kernels.points_in_rect(
                    batch, qid, q.x, q.y, q.hw, q.hh, now, results
                )
        self.pair_tests += tests
        return results

    # -- introspection -----------------------------------------------------------

    def join_counters(self) -> Dict[str, Any]:
        return {"kernel_backend": self.kernels.name}

    def state_roots(self) -> List[object]:
        return [self.objects, self.queries, self.object_grid, self.query_grid]

    def reset(self) -> None:
        self._init_state()

    # Shard factories pickle configured operators; the backend instance is
    # dropped (its ``__reduce__`` would also work, but re-resolving keeps a
    # remote process without NumPy working when config says "auto").

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("kernels", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.kernels = resolve_backend(self.config.kernel_backend)

    def __repr__(self) -> str:
        return (
            f"RegularGridJoin({len(self.objects)} objects, "
            f"{len(self.queries)} queries, "
            f"{self.config.grid_size}x{self.config.grid_size} grid)"
        )
