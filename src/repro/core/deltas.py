"""Incremental result production.

The paper's future work (§8): "enhance SCUBA to produce results
incrementally".  A continuous range query's answer changes slowly between
evaluations — most matches persist — so downstream consumers (dashboards,
alerting) prefer a **delta stream**: which (query, object) pairs *entered*
the answer this interval and which *left*, rather than the full answer
re-sent every Δ.

:class:`DeltaProducer` wraps any continuous operator's output: feed it the
full match list per evaluation and it emits a :class:`ResultDelta` with
positive and negative tuples, maintaining the current answer set
internally.  :class:`DeltaSink` adapts the engine's sink interface so the
whole pipeline can run delta-mode without touching the operator.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..streams import QueryMatch, ResultSink

__all__ = ["ResultDelta", "DeltaProducer", "DeltaSink"]


class ResultDelta:
    """The change of the answer set at one evaluation.

    ``added`` are matches appearing for the first time (or re-appearing);
    ``removed`` are (qid, oid) pairs from the previous answer that no
    longer hold.  ``unchanged_count`` sizes the suppressed re-sends, i.e.
    the bandwidth the delta representation saves.
    """

    __slots__ = ("t", "added", "removed", "unchanged_count")

    def __init__(
        self,
        t: float,
        added: List[QueryMatch],
        removed: List[Tuple[int, int]],
        unchanged_count: int,
    ) -> None:
        self.t = t
        self.added = added
        self.removed = removed
        self.unchanged_count = unchanged_count

    @property
    def change_count(self) -> int:
        return len(self.added) + len(self.removed)

    def __repr__(self) -> str:
        return (
            f"ResultDelta(t={self.t:g}, +{len(self.added)}, "
            f"-{len(self.removed)}, ={self.unchanged_count})"
        )


class DeltaProducer:
    """Stateful differ over consecutive full answers."""

    def __init__(self) -> None:
        self._current: Set[Tuple[int, int]] = set()

    @property
    def current_answer(self) -> Set[Tuple[int, int]]:
        """The (qid, oid) pairs in force after the last evaluation."""
        return set(self._current)

    def ingest(self, matches: Iterable[QueryMatch], t: float) -> ResultDelta:
        """Diff a full answer against the previous one."""
        new_pairs: Set[Tuple[int, int]] = set()
        added: List[QueryMatch] = []
        for match in matches:
            pair = (match.qid, match.oid)
            if pair in new_pairs:
                continue  # duplicate in the same evaluation
            new_pairs.add(pair)
            if pair not in self._current:
                added.append(match)
        removed = sorted(self._current - new_pairs)
        unchanged = len(new_pairs) - len(added)
        self._current = new_pairs
        return ResultDelta(t, added, removed, unchanged)

    def reset(self) -> None:
        self._current.clear()


class DeltaSink(ResultSink):
    """A sink that retains deltas instead of full answers."""

    def __init__(self) -> None:
        self._producer = DeltaProducer()
        self.deltas: List[ResultDelta] = []

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        self.deltas.append(self._producer.ingest(matches, t))

    @property
    def current_answer(self) -> Set[Tuple[int, int]]:
        return self._producer.current_answer

    def total_changes(self) -> int:
        return sum(d.change_count for d in self.deltas)

    def total_suppressed(self) -> int:
        """Matches NOT re-sent thanks to delta mode."""
        return sum(d.unchanged_count for d in self.deltas)
