"""Join-between and join-within moving clusters (paper §4, Algorithms 2-3).

**Join-between** is the cheap pre-filter: two clusters can contribute
matches only if their circular footprints come close enough.  We inflate
the test by the widest member query window (``max_query_half_diag``) so the
filter is *lossless*: a pruned pair provably cannot produce a match.  (The
paper's Algorithm 2 literally tests containment, ``dist² < (R_L − R_R)²`` —
an evident typo, since the prose, Fig. 4 and the worked example all use
overlap semantics; see :mod:`repro.geometry.circle`.)

**Join-within** is the fine-grained object × query join over the members
of one cluster or of a surviving cluster pair.  Under load shedding some
members have no stored position; they are approximated by their cluster's
nucleus.  The four predicate cases:

===================  ======================================================
object / query       test
===================  ======================================================
exact × exact        point inside the query window
shed × exact         query window intersects the object cluster's nucleus
exact × shed         object within nucleus-radius of the window placed at
                     the query cluster's centroid
shed × shed          the two nuclei within query-window reach of each other
===================  ======================================================

All shed members of a cluster share one nucleus, so they are tested *as a
group* — one geometric test matches (or rejects) the whole block.  That is
precisely why shedding trades accuracy for join time (Fig. 13a): fewer
individual position tests survive.

Pairs are emitted cross-cluster only (L-objects × R-queries plus
R-objects × L-queries); a mixed cluster's internal matches come from its
own self join-within, exactly as in the worked example of Fig. 7 where
``Join-Within(M1 ∪ M2)`` reports only the cross pair ``(Q2, O3)`` and
``Join-Within(M1)`` separately reports ``(Q3, O5)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..clustering import MovingCluster
from ..geometry import circles_overlap
from ..streams import QueryMatch

__all__ = ["join_between", "ClusterJoinView", "join_within_pair", "join_within_self"]


def join_between(left: MovingCluster, right: MovingCluster) -> bool:
    """Lossless cluster-level overlap pre-filter (Algorithm 2, corrected).

    The reach adds both radii plus the larger query-window half-diagonal of
    the two clusters: any (object, query) match requires the object within
    ``half_diag`` of the query point, the object within ``left.radius`` of
    its centroid, and the query within ``right.radius`` of its centroid.
    """
    reach_bonus = max(left.max_query_half_diag, right.max_query_half_diag)
    return circles_overlap(
        left.cx,
        left.cy,
        left.radius + reach_bonus,
        right.cx,
        right.cy,
        right.radius,
    )


class ClusterJoinView:
    """Join-ready snapshot of one cluster's members.

    Built once per cluster per evaluation (clusters often participate in
    several pairwise joins).  Exact members are flattened into tuples; shed
    members are grouped under the cluster nucleus.
    """

    __slots__ = (
        "cid",
        "cx",
        "cy",
        "approx_radius",
        "exact_objects",
        "shed_object_ids",
        "exact_queries",
        "shed_query_groups",
        "obj_min_x",
        "obj_min_y",
        "obj_max_x",
        "obj_max_y",
    )

    def __init__(self, cluster: MovingCluster) -> None:
        cluster.flush_transform()
        self.cid = cluster.cid
        self.cx = cluster.cx
        self.cy = cluster.cy
        # Shed members provably lie within the cluster; the nucleus cannot
        # usefully exceed the cluster's own radius.
        self.approx_radius = min(cluster.nucleus_radius, cluster.radius)
        self.exact_objects: List[Tuple[int, float, float]] = []
        self.shed_object_ids: List[int] = []
        # Tight bounding box of the exact object members: one rect-overlap
        # test per query prunes whole member loops for near-miss cluster
        # pairs (cluster-granularity filtering, same spirit as
        # join-between but at the query's window size).
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        for oid, member in cluster.objects.items():
            if member.position_shed:
                self.shed_object_ids.append(oid)
            else:
                # flush_transform above made abs_x/abs_y current.
                x = member.abs_x
                y = member.abs_y
                self.exact_objects.append((oid, x, y))
                if x < min_x:
                    min_x = x
                if x > max_x:
                    max_x = x
                if y < min_y:
                    min_y = y
                if y > max_y:
                    max_y = y
        self.obj_min_x = min_x
        self.obj_min_y = min_y
        self.obj_max_x = max_x
        self.obj_max_y = max_y
        self.exact_queries: List[Tuple[int, float, float, float, float]] = []
        self.shed_query_groups: Dict[Tuple[float, float], List[int]] = {}
        for qid, member in cluster.queries.items():
            hw = member.range_width / 2.0
            hh = member.range_height / 2.0
            if member.position_shed:
                self.shed_query_groups.setdefault((hw, hh), []).append(qid)
            else:
                self.exact_queries.append((qid, member.abs_x, member.abs_y, hw, hh))

    @property
    def has_objects(self) -> bool:
        return bool(self.exact_objects or self.shed_object_ids)

    @property
    def has_queries(self) -> bool:
        return bool(self.exact_queries or self.shed_query_groups)


def _rect_point_gap_sq(
    cx: float, cy: float, hw: float, hh: float, px: float, py: float
) -> float:
    """Squared distance from point ``(px, py)`` to rect ``(cx±hw, cy±hh)``."""
    dx = abs(px - cx) - hw
    dy = abs(py - cy) - hh
    if dx < 0.0:
        dx = 0.0
    if dy < 0.0:
        dy = 0.0
    return dx * dx + dy * dy


def _join_objects_to_queries(
    objects: ClusterJoinView,
    queries: ClusterJoinView,
    now: float,
    out: List[QueryMatch],
) -> int:
    """Match ``objects``-side members against ``queries``-side members.

    Returns the number of individual geometric tests performed (the cost
    metric the shedding experiment reports alongside wall-clock time).
    """
    tests = 0
    exact_objects = objects.exact_objects
    o_min_x, o_max_x = objects.obj_min_x, objects.obj_max_x
    o_min_y, o_max_y = objects.obj_min_y, objects.obj_max_y

    # Exact queries vs. this object view.
    for qid, qx, qy, hw, hh in queries.exact_queries:
        # Window vs. object bounding box: skips the member loop for the
        # common near-miss case of barely-overlapping clusters.
        if (
            exact_objects
            and qx - hw <= o_max_x
            and qx + hw >= o_min_x
            and qy - hh <= o_max_y
            and qy + hh >= o_min_y
        ):
            for oid, ox, oy in exact_objects:
                tests += 1
                if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                    out.append(QueryMatch(qid, oid, now))
        if objects.shed_object_ids:
            tests += 1
            gap = _rect_point_gap_sq(qx, qy, hw, hh, objects.cx, objects.cy)
            if gap <= objects.approx_radius * objects.approx_radius:
                for oid in objects.shed_object_ids:
                    out.append(QueryMatch(qid, oid, now))

    # Shed query groups (window at the query cluster's centroid, slack =
    # that cluster's nucleus radius).
    for (hw, hh), qids in queries.shed_query_groups.items():
        q_slack = queries.approx_radius
        reach_x = hw + q_slack
        reach_y = hh + q_slack
        if (
            exact_objects
            and queries.cx - reach_x <= o_max_x
            and queries.cx + reach_x >= o_min_x
            and queries.cy - reach_y <= o_max_y
            and queries.cy + reach_y >= o_min_y
        ):
            for oid, ox, oy in exact_objects:
                tests += 1
                gap = _rect_point_gap_sq(queries.cx, queries.cy, hw, hh, ox, oy)
                if gap <= q_slack * q_slack:
                    for qid in qids:
                        out.append(QueryMatch(qid, oid, now))
        if objects.shed_object_ids:
            tests += 1
            reach = q_slack + objects.approx_radius
            gap = _rect_point_gap_sq(
                queries.cx, queries.cy, hw, hh, objects.cx, objects.cy
            )
            if gap <= reach * reach:
                for qid in qids:
                    for oid in objects.shed_object_ids:
                        out.append(QueryMatch(qid, oid, now))
    return tests


def join_within_pair(
    left: ClusterJoinView,
    right: ClusterJoinView,
    now: float,
    out: List[QueryMatch],
) -> int:
    """Join-within for two distinct clusters (Algorithm 3, cross pairs)."""
    tests = 0
    if left.has_objects and right.has_queries:
        tests += _join_objects_to_queries(left, right, now, out)
    if right.has_objects and left.has_queries:
        tests += _join_objects_to_queries(right, left, now, out)
    return tests


def join_within_self(view: ClusterJoinView, now: float, out: List[QueryMatch]) -> int:
    """Join-within of a single mixed cluster (Algorithm 1, line 15)."""
    return _join_objects_to_queries(view, view, now, out)
