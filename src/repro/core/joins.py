"""Join-between and join-within moving clusters (paper §4, Algorithms 2-3).

**Join-between** is the cheap pre-filter: two clusters can contribute
matches only if their circular footprints come close enough.  We inflate
the test by the widest member query window (``max_query_half_diag``) so the
filter is *lossless*: a pruned pair provably cannot produce a match.  (The
paper's Algorithm 2 literally tests containment, ``dist² < (R_L − R_R)²`` —
an evident typo, since the prose, Fig. 4 and the worked example all use
overlap semantics; see :mod:`repro.geometry.circle`.)

**Join-within** is the fine-grained object × query join over the members
of one cluster or of a surviving cluster pair.  Under load shedding some
members have no stored position; they are approximated by their cluster's
nucleus.  The four predicate cases:

===================  ======================================================
object / query       test
===================  ======================================================
exact × exact        point inside the query window
shed × exact         query window intersects the object cluster's nucleus
exact × shed         object within nucleus-radius of the window placed at
                     the query cluster's centroid
shed × shed          the two nuclei within query-window reach of each other
===================  ======================================================

The member-level tests themselves live in :mod:`repro.kernels`: each case
is a batched kernel over the structure-of-arrays columns of
:class:`ClusterJoinView`, implemented by interchangeable backends (scalar
reference, batched pure Python, NumPy).  This module is the driver: it
builds the views and sequences the kernels, identically for every backend.

All shed members of a cluster share one nucleus, so they are tested *as a
group* — one geometric test matches (or rejects) the whole block.  That is
precisely why shedding trades accuracy for join time (Fig. 13a): fewer
individual position tests survive.

Pairs are emitted cross-cluster only (L-objects × R-queries plus
R-objects × L-queries); a mixed cluster's internal matches come from its
own self join-within, exactly as in the worked example of Fig. 7 where
``Join-Within(M1 ∪ M2)`` reports only the cross pair ``(Q2, O3)`` and
``Join-Within(M1)`` separately reports ``(Q3, O5)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..clustering import MovingCluster
from ..geometry import circles_overlap
from ..kernels import JoinKernelBackend, resolve_backend
from ..streams import QueryMatch

__all__ = ["join_between", "ClusterJoinView", "join_within_pair", "join_within_self"]


def join_between(left: MovingCluster, right: MovingCluster) -> bool:
    """Lossless cluster-level overlap pre-filter (Algorithm 2, corrected).

    The reach adds both radii plus the larger query-window half-diagonal of
    the two clusters: any (object, query) match requires the object within
    ``half_diag`` of the query point, the object within ``left.radius`` of
    its centroid, and the query within ``right.radius`` of its centroid.
    """
    reach_bonus = max(left.max_query_half_diag, right.max_query_half_diag)
    return circles_overlap(
        left.cx,
        left.cy,
        left.radius + reach_bonus,
        right.cx,
        right.cy,
        right.radius,
    )


class ClusterJoinView:
    """Join-ready structure-of-arrays snapshot of one cluster's members.

    Exact members are flattened into parallel id/x/y (and window half
    extent) columns — the layout the batched kernels consume; shed members
    are grouped under the cluster nucleus.  ``version`` records the
    cluster's :attr:`~repro.clustering.MovingCluster.version` at build
    time: the snapshot is valid exactly while the cluster's counter has
    not moved, which is what lets :class:`~repro.core.scuba.Scuba` reuse
    views across cluster pairs *and* across Δ-cycles for clusters that did
    not change.  ``scratch`` holds backend-derived data (sorted
    permutations, ndarray mirrors) with the same lifetime as the view.
    """

    __slots__ = (
        "cid",
        "version",
        "cx",
        "cy",
        "approx_radius",
        "obj_ids",
        "obj_xs",
        "obj_ys",
        "shed_object_ids",
        "query_ids",
        "query_xs",
        "query_ys",
        "query_hws",
        "query_hhs",
        "shed_query_groups",
        "obj_min_x",
        "obj_min_y",
        "obj_max_x",
        "obj_max_y",
        "scratch",
    )

    def __init__(self, cluster: MovingCluster) -> None:
        cluster.flush_transform()
        self.cid = cluster.cid
        self.version = cluster.version
        self.cx = cluster.cx
        self.cy = cluster.cy
        # Shed members provably lie within the cluster; the nucleus cannot
        # usefully exceed the cluster's own radius.
        self.approx_radius = min(cluster.nucleus_radius, cluster.radius)
        columns = getattr(cluster, "join_view_columns", None)
        data = columns() if columns is not None else None
        if data is not None:
            # Columnar cluster with no shed members: the store's flushed
            # columns *are* the view (zero-copy ndarray slices; ids stay
            # Python lists so truthiness and iteration behave as before).
            (
                self.obj_ids,
                self.obj_xs,
                self.obj_ys,
                self.obj_min_x,
                self.obj_min_y,
                self.obj_max_x,
                self.obj_max_y,
                self.query_ids,
                self.query_xs,
                self.query_ys,
                self.query_hws,
                self.query_hhs,
            ) = data
            self.shed_object_ids = []
            self.shed_query_groups = {}
            self.scratch = {}
            return
        if not cluster.shed_count:
            # Shed-free cluster (the steady-state common case): no
            # per-member position_shed branch, so the columns fall out of
            # C-speed comprehensions and the bbox out of builtin min/max.
            objs = cluster.objects
            self.obj_ids = list(objs)
            xs = [m.abs_x for m in objs.values()]
            ys = [m.abs_y for m in objs.values()]
            self.obj_xs = xs
            self.obj_ys = ys
            self.shed_object_ids = []
            if xs:
                self.obj_min_x = min(xs)
                self.obj_max_x = max(xs)
                self.obj_min_y = min(ys)
                self.obj_max_y = max(ys)
            else:
                self.obj_min_x = self.obj_min_y = math.inf
                self.obj_max_x = self.obj_max_y = -math.inf
            qs = cluster.queries
            self.query_ids = list(qs)
            self.query_xs = [m.abs_x for m in qs.values()]
            self.query_ys = [m.abs_y for m in qs.values()]
            self.query_hws = [m.range_width / 2.0 for m in qs.values()]
            self.query_hhs = [m.range_height / 2.0 for m in qs.values()]
            self.shed_query_groups = {}
            self.scratch = {}
            return
        self.obj_ids: List[int] = []
        self.obj_xs: List[float] = []
        self.obj_ys: List[float] = []
        self.shed_object_ids: List[int] = []
        # Tight bounding box of the exact object members: one rect-overlap
        # test per query prunes whole member batches for near-miss cluster
        # pairs (cluster-granularity filtering, same spirit as
        # join-between but at the query's window size).
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        for oid, member in cluster.objects.items():
            if member.position_shed:
                self.shed_object_ids.append(oid)
            else:
                # flush_transform above made abs_x/abs_y current.
                x = member.abs_x
                y = member.abs_y
                self.obj_ids.append(oid)
                self.obj_xs.append(x)
                self.obj_ys.append(y)
                if x < min_x:
                    min_x = x
                if x > max_x:
                    max_x = x
                if y < min_y:
                    min_y = y
                if y > max_y:
                    max_y = y
        self.obj_min_x = min_x
        self.obj_min_y = min_y
        self.obj_max_x = max_x
        self.obj_max_y = max_y
        self.query_ids: List[int] = []
        self.query_xs: List[float] = []
        self.query_ys: List[float] = []
        self.query_hws: List[float] = []
        self.query_hhs: List[float] = []
        self.shed_query_groups: Dict[Tuple[float, float], List[int]] = {}
        for qid, member in cluster.queries.items():
            hw = member.range_width / 2.0
            hh = member.range_height / 2.0
            if member.position_shed:
                self.shed_query_groups.setdefault((hw, hh), []).append(qid)
            else:
                self.query_ids.append(qid)
                self.query_xs.append(member.abs_x)
                self.query_ys.append(member.abs_y)
                self.query_hws.append(hw)
                self.query_hhs.append(hh)
        self.scratch: Dict[str, object] = {}

    @property
    def exact_objects(self) -> List[Tuple[int, float, float]]:
        """Row view of the exact-object columns (compatibility accessor)."""
        return list(zip(self.obj_ids, self.obj_xs, self.obj_ys))

    @property
    def exact_queries(self) -> List[Tuple[int, float, float, float, float]]:
        """Row view of the exact-query columns (compatibility accessor)."""
        return list(
            zip(
                self.query_ids,
                self.query_xs,
                self.query_ys,
                self.query_hws,
                self.query_hhs,
            )
        )

    @property
    def shed_free(self) -> bool:
        """No shed members: every predicate case but exact×exact is empty.

        The macro-batched sweep queues shed-free views as segments for one
        fused ``join_segments`` call; any shed member forces the per-pair
        kernel sequencing (the shed cases are per-group scalar tests).
        """
        return not (self.shed_object_ids or self.shed_query_groups)

    @property
    def has_objects(self) -> bool:
        return bool(self.obj_ids or self.shed_object_ids)

    @property
    def has_queries(self) -> bool:
        return bool(self.query_ids or self.shed_query_groups)


def _join_objects_to_queries(
    objects: ClusterJoinView,
    queries: ClusterJoinView,
    now: float,
    out: List[QueryMatch],
    backend: JoinKernelBackend,
) -> int:
    """Match ``objects``-side members against ``queries``-side members.

    Sequences the four kernel cases; returns the number of logical
    member-level tests (the cost metric the shedding experiment reports
    alongside wall-clock time, identical across backends).
    """
    tests = 0
    have_exact_objects = bool(objects.obj_ids)
    have_shed_objects = bool(objects.shed_object_ids)
    if queries.query_ids:
        if have_exact_objects:
            tests += backend.exact_exact(objects, queries, now, out)
        if have_shed_objects:
            tests += backend.shed_exact(objects, queries, now, out)
    if queries.shed_query_groups:
        if have_exact_objects:
            tests += backend.exact_shed(objects, queries, now, out)
        if have_shed_objects:
            tests += backend.shed_shed(objects, queries, now, out)
    return tests


def join_within_pair(
    left: ClusterJoinView,
    right: ClusterJoinView,
    now: float,
    out: List[QueryMatch],
    backend: Optional[JoinKernelBackend] = None,
) -> int:
    """Join-within for two distinct clusters (Algorithm 3, cross pairs)."""
    if backend is None:
        backend = resolve_backend()
    tests = 0
    if left.has_objects and right.has_queries:
        tests += _join_objects_to_queries(left, right, now, out, backend)
    if right.has_objects and left.has_queries:
        tests += _join_objects_to_queries(right, left, now, out, backend)
    return tests


def join_within_self(
    view: ClusterJoinView,
    now: float,
    out: List[QueryMatch],
    backend: Optional[JoinKernelBackend] = None,
) -> int:
    """Join-within of a single mixed cluster (Algorithm 1, line 15)."""
    if backend is None:
        backend = resolve_backend()
    return _join_objects_to_queries(view, view, now, out, backend)
