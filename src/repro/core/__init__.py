"""SCUBA core: the cluster-based join operator and its baselines.

Exports the SCUBA operator (paper §4), the regular grid-based operator it
is evaluated against (§6), the naive nested-loop oracle used for ground
truth, the join primitives, and the ObjectsTable/QueriesTable registries.
"""

from .deltas import DeltaProducer, DeltaSink, ResultDelta
from .incremental_grid import IncrementalGridConfig, IncrementalGridJoin
from .joins import ClusterJoinView, join_between, join_within_pair, join_within_self
from .naive import NaiveJoin
from .regular import RegularConfig, RegularGridJoin
from .scuba import Scuba, ScubaConfig
from .tables import EntityAttributeTable, ObjectsTable, QueriesTable

__all__ = [
    "ClusterJoinView",
    "DeltaProducer",
    "DeltaSink",
    "EntityAttributeTable",
    "IncrementalGridConfig",
    "IncrementalGridJoin",
    "NaiveJoin",
    "ObjectsTable",
    "QueriesTable",
    "RegularConfig",
    "RegularGridJoin",
    "ResultDelta",
    "Scuba",
    "ScubaConfig",
    "join_between",
    "join_within_pair",
    "join_within_self",
]
