"""Macro-batched cell sweep: whole-tick candidate-pair join-between.

The per-pair sweep of :meth:`repro.core.scuba.Scuba._joining_phase` spends
its time in per-pair Python bookkeeping: a ``seen_pairs`` set probe, two
attribute walks for the type-mix check, a scalar :func:`circles_overlap`
and a dict probe per candidate pair.  This module hoists all of that into
a handful of whole-tick batch operations (DESIGN.md §15):

* :class:`ClusterSoA` — a cluster-level structure-of-arrays registry
  (centroid, radius, widest query half-diagonal, has-objects/has-queries
  flags), synced incrementally by version stamp once per sweep, so the
  filter inputs need no per-pair attribute walks;
* packed-key candidate enumeration — every multi-member grid cell
  contributes its ``(cid_l << 32) | cid_r`` pair keys (cids are
  monotonically allocated ``int`` well below 2³², and sorted cell tuples
  guarantee ``cid_l < cid_r``), deduplicated in **first-seen sweep
  order** with one ``np.unique`` — exactly the order the per-pair
  driver's seen-set establishes;
* one vectorized join-between over all candidate pairs via the kernel
  backend's :meth:`~repro.kernels.base.JoinKernelBackend.pairs_between`;
* :class:`PairVerdictCache` — the version-keyed between-verdict cache as
  sorted parallel arrays, probed with one ``searchsorted`` gather and
  folded in-place, hit/miss counts identical to the scalar driver's dict
  tick for tick.

Without numpy (or under the ``scalar``/``python`` kernel backends) the
same structure runs on stdlib lists: packed-int seen set, registry list
gathers, the operator's existing dict between-cache, and a batched
``pairs_between`` call over the cache misses.  Both paths return the
surviving pairs in the canonical sweep order with exactly the counter
deltas the per-pair driver would have produced.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

try:  # Optional dependency (the ``perf`` extra); stdlib fallback below.
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _numpy = None

__all__ = [
    "ClusterSoA",
    "PairVerdictCache",
    "BatchJoinState",
    "resolve_sweep_numpy",
]

#: Low 32 bits of a packed pair key (the right cid).
_CID_MASK = 0xFFFFFFFF


def resolve_sweep_numpy(kernel_name: str):
    """The numpy module for the vectorized sweep, or None for stdlib.

    Vectorization follows the *resolved* kernel backend: the sweep runs
    its array path exactly when the member kernels do (``numpy``), so a
    forced ``scalar``/``python`` backend pins the pure-Python sweep — the
    same rule the columnar engine applies, and what the no-numpy CI leg
    relies on.
    """
    return _numpy if kernel_name == "numpy" else None


class ClusterSoA:
    """Cluster-level registry columns, version-synced once per sweep.

    Rows are addressed by ``cid - base`` (cids are monotonic and never
    reused, so a row belongs to one cluster forever); dissolved clusters
    simply leave stale rows behind that no live candidate pair can ever
    reference.  A row is rewritten only when the cluster's ``version``
    moved — every join-relevant mutation (membership, shed transitions,
    centroid/radius changes, rigid advance) bumps it, which is the same
    invariant the view and between caches already lean on.
    """

    __slots__ = (
        "base",
        "version",
        "cx",
        "cy",
        "radius",
        "mqhd",
        "has_obj",
        "has_qry",
        "_arrays",
    )

    def __init__(self) -> None:
        self.base: Optional[int] = None
        self.version: List[int] = []
        self.cx: List[float] = []
        self.cy: List[float] = []
        self.radius: List[float] = []
        self.mqhd: List[float] = []
        self.has_obj: List[int] = []
        self.has_qry: List[int] = []
        self._arrays: Optional[Tuple[Any, ...]] = None

    def __len__(self) -> int:
        return len(self.version)

    def sync(self, clusters) -> None:
        """Refresh the columns of every changed cluster (cid order)."""
        if not clusters:
            return
        base = self.base
        if base is None:
            base = self.base = clusters[0].cid
        version = self.version
        cx = self.cx
        cy = self.cy
        radius = self.radius
        mqhd = self.mqhd
        has_obj = self.has_obj
        has_qry = self.has_qry
        size = len(version)
        dirty = False
        for cluster in clusters:
            idx = cluster.cid - base
            if idx >= size:
                grow = idx + 1 - size
                version.extend([-1] * grow)
                cx.extend([0.0] * grow)
                cy.extend([0.0] * grow)
                radius.extend([0.0] * grow)
                mqhd.extend([0.0] * grow)
                has_obj.extend([0] * grow)
                has_qry.extend([0] * grow)
                size = idx + 1
            if version[idx] != cluster.version:
                version[idx] = cluster.version
                cx[idx] = cluster.cx
                cy[idx] = cluster.cy
                radius[idx] = cluster.radius
                mqhd[idx] = cluster.max_query_half_diag
                # Truthiness of the member tables, shed members included —
                # the per-pair driver's type-mix check reads the same.
                has_obj[idx] = 1 if cluster.objects else 0
                has_qry[idx] = 1 if cluster.queries else 0
                dirty = True
        if dirty:
            self._arrays = None

    def arrays(self, np):
        """Cached ndarray mirrors of the columns (rebuilt after changes)."""
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self.version, dtype=np.int64),
                np.asarray(self.cx, dtype=np.float64),
                np.asarray(self.cy, dtype=np.float64),
                np.asarray(self.radius, dtype=np.float64),
                np.asarray(self.mqhd, dtype=np.float64),
                np.asarray(self.has_obj, dtype=bool),
                np.asarray(self.has_qry, dtype=bool),
            )
            self._arrays = arrays
        return arrays


def _in_sorted(np, values, sorted_ref):
    """Boolean membership of ``values`` in the sorted array ``sorted_ref``."""
    out = np.zeros(values.shape, dtype=bool)
    if sorted_ref.size:
        pos = np.searchsorted(sorted_ref, values)
        inb = pos < sorted_ref.size
        out[inb] = sorted_ref[pos[inb]] == values[inb]
    return out


class PairVerdictCache:
    """The between-verdict cache as sorted parallel arrays.

    Mirrors the scalar driver's dict cache exactly: keyed on the packed
    pair key, an entry holds both cluster versions plus the verdict, a
    probe hits iff the entry exists with both versions unchanged, and
    every probed pair's entry is (re)written.  Because cids are never
    reused a stale entry can only miss, and because identical versions
    imply identical filter inputs the cached verdict is always bit-equal
    to a recompute — so hit/miss counts and served verdicts match the
    dict, tick for tick.
    """

    __slots__ = ("keys", "lv", "rv", "verdict")

    def __init__(self, np) -> None:
        self.keys = np.empty(0, dtype=np.int64)
        self.lv = np.empty(0, dtype=np.int64)
        self.rv = np.empty(0, dtype=np.int64)
        self.verdict = np.empty(0, dtype=bool)

    def __len__(self) -> int:
        return int(self.keys.size)

    def probe_update(self, np, keys, lver, rver, fresh) -> Tuple[int, Any]:
        """Gather cached verdicts for ``keys`` and fold the batch back in.

        ``keys`` must be unique; ``fresh`` holds the recomputed verdicts.
        Returns ``(hits, verdicts)`` with verdicts in the input order —
        the cached value where the entry was version-valid (the gather),
        ``fresh`` otherwise.  Entries are updated in place where present
        and merge-inserted (one vectorized ``np.insert``) where new.
        """
        order = np.argsort(keys)
        ks = keys[order]
        lv_s = lver[order]
        rv_s = rver[order]
        fresh_s = fresh[order]
        pos = np.searchsorted(self.keys, ks)
        if self.keys.size:
            inb = pos < self.keys.size
            found = np.zeros(ks.size, dtype=bool)
            found[inb] = self.keys[pos[inb]] == ks[inb]
        else:
            found = np.zeros(ks.size, dtype=bool)
        fidx = pos[found]
        valid = found.copy()
        valid[found] = (self.lv[fidx] == lv_s[found]) & (
            self.rv[fidx] == rv_s[found]
        )
        out_s = fresh_s.copy()
        out_s[valid] = self.verdict[pos[valid]]
        hits = int(np.count_nonzero(valid))
        # Fold in: overwrite present rows (version restamp), merge-insert
        # the rest — exactly the dict's post-probe state.
        self.lv[fidx] = lv_s[found]
        self.rv[fidx] = rv_s[found]
        self.verdict[fidx] = fresh_s[found]
        missing = ~found
        if missing.any():
            ins = pos[missing]
            self.keys = np.insert(self.keys, ins, ks[missing])
            self.lv = np.insert(self.lv, ins, lv_s[missing])
            self.rv = np.insert(self.rv, ins, rv_s[missing])
            self.verdict = np.insert(self.verdict, ins, fresh_s[missing])
        out = np.empty_like(out_s)
        out[order] = out_s
        return hits, out

    def prune(self, np, live_sorted) -> None:
        """Drop entries whose left or right cluster no longer exists."""
        keys = self.keys
        if keys.size == 0:
            return
        keep = _in_sorted(np, keys >> 32, live_sorted) & _in_sorted(
            np, keys & _CID_MASK, live_sorted
        )
        if not keep.all():
            self.keys = keys[keep]
            self.lv = self.lv[keep]
            self.rv = self.rv[keep]
            self.verdict = self.verdict[keep]


class BatchJoinState:
    """Per-operator state of the macro-batched sweep.

    Holds the cluster registry, the array between-cache (numpy path
    only) and the cached ``triu_indices`` pair templates.  Dropped on
    pickling by the owning operator and rebuilt lazily, so a shard
    shipped to a numpy-less worker re-resolves the stdlib path cleanly.
    """

    __slots__ = ("np", "soa", "cache", "watermark", "_triu")

    def __init__(self, np=None) -> None:
        self.np = np
        self.soa = ClusterSoA()
        self.cache = PairVerdictCache(np) if np is not None else None
        # Same amortisation contract as the dict caches: full prune scans
        # fire only past a watermark doubled beyond the surviving size.
        self.watermark = 64
        self._triu: Dict[int, Tuple[Any, Any]] = {}

    def sweep(
        self, grid, use_filter: bool, dict_cache, backend
    ) -> Tuple[Tuple[List[int], List[int]], int, int, int]:
        """Enumerate, dedup and filter this tick's candidate pairs.

        Returns ``((lcids, rcids), mixed_pairs, cache_hits,
        cache_misses)``: the surviving pairs as parallel cid columns in
        canonical first-seen sweep order (int64 ndarrays on the numpy
        path — ready for the driver's vectorised segment builder — and
        plain lists on the stdlib path), the count of unique type-mixed
        pairs (the logical between-test count), and the between-cache
        counter deltas (both zero when ``use_filter`` is off — the
        filter never runs).
        """
        if self.np is not None:
            return self._sweep_numpy(grid, use_filter, backend)
        return self._sweep_stdlib(grid, use_filter, dict_cache, backend)

    # -- numpy path ---------------------------------------------------------

    def _sweep_numpy(self, grid, use_filter: bool, backend):
        np = self.np
        # Flatten every multi-member cell into one cid array plus member
        # counts (two C-speed calls per cell — the only Python-level loop
        # of the sweep), then group equal-sized cells with argsort and
        # scatter each group's pair keys from one fancy-indexing
        # expression over a cached triu template.  Cells feed in raw
        # bucket order; one vectorised row sort re-establishes the
        # canonical ascending-cid member order, so the emitted pair
        # sequence is identical to the per-pair driver's nested loop
        # over ``sorted_members`` without paying that per-cell sort.
        flat: list = []
        lens: List[int] = []
        extend = flat.extend
        append = lens.append
        for bucket in grid.sweep_buckets():
            extend(bucket)
            append(len(bucket))
        if not lens:
            return ([], []), 0, 0, 0
        counts = np.asarray(lens, dtype=np.int64)
        flat_arr = np.asarray(flat, dtype=np.int64)
        starts = np.cumsum(counts) - counts
        npairs = (counts * (counts - 1)) >> 1
        pair_starts = np.cumsum(npairs) - npairs
        total = int(pair_starts[-1] + npairs[-1])
        ordered = np.empty(total, dtype=np.int64)
        order = np.argsort(counts, kind="stable")
        uniq_k, first = np.unique(counts[order], return_index=True)
        ncells = counts.size
        for g, k in enumerate(uniq_k):
            k = int(k)
            lo = int(first[g])
            hi = int(first[g + 1]) if g + 1 < uniq_k.size else ncells
            cells_k = order[lo:hi]
            iu = self._triu.get(k)
            if iu is None:
                iu = self._triu[k] = np.triu_indices(k, k=1)
            mat = flat_arr[
                starts[cells_k][:, None] + np.arange(k, dtype=np.int64)
            ]
            mat.sort(axis=1)
            keys = (mat[:, iu[0]] << 32) | mat[:, iu[1]]
            p = keys.shape[1]
            seq = (
                pair_starts[cells_k][:, None]
                + np.arange(p, dtype=np.int64)[None, :]
            )
            ordered[seq.reshape(-1)] = keys.reshape(-1)
        uk, first = np.unique(ordered, return_index=True)
        if uk.size != ordered.size:
            # First-seen order — the canonical order the per-pair driver's
            # seen-set establishes.
            uk = uk[np.argsort(first, kind="stable")]
        else:
            uk = ordered
        soa = self.soa
        version, cx, cy, radius, mqhd, has_obj, has_qry = soa.arrays(np)
        il = (uk >> 32) - soa.base
        ir = (uk & _CID_MASK) - soa.base
        mix = (has_obj[il] & has_qry[ir]) | (has_qry[il] & has_obj[ir])
        if not mix.all():
            uk = uk[mix]
            il = il[mix]
            ir = ir[mix]
        mixed = int(uk.size)
        if not mixed:
            return ([], []), 0, 0, 0
        hits = 0
        misses = 0
        if use_filter:
            fresh = backend.pairs_between(
                cx[il],
                cy[il],
                radius[il],
                mqhd[il],
                cx[ir],
                cy[ir],
                radius[ir],
                mqhd[ir],
            )
            hits, verdicts = self.cache.probe_update(
                np, uk, version[il], version[ir], fresh
            )
            misses = mixed - hits
            if not verdicts.all():
                uk = uk[verdicts]
        # ndarray survivor columns: the driver's vectorised segment
        # builder consumes them directly; the python fallback zips them
        # (np.int64 cids hash like ints, so every dict probe still works).
        return (uk >> 32, uk & _CID_MASK), mixed, hits, misses

    # -- stdlib fallback ----------------------------------------------------

    def _sweep_stdlib(self, grid, use_filter: bool, cache, backend):
        soa = self.soa
        base = soa.base
        if base is None:
            return ([], []), 0, 0, 0
        version = soa.version
        cx = soa.cx
        cy = soa.cy
        radius = soa.radius
        mqhd = soa.mqhd
        has_obj = soa.has_obj
        has_qry = soa.has_qry
        seen: set = set()
        seen_add = seen.add
        mixed_l: List[int] = []
        mixed_r: List[int] = []
        hits = 0
        # Pass 1: enumerate + dedup + type-mix + cache probe; misses pile
        # their filter inputs into columns for one batched pairs_between.
        verdicts: List[Any] = []
        verdict_append = verdicts.append
        miss_at: List[int] = []
        miss_at_append = miss_at.append
        m_lx: List[float] = []
        m_ly: List[float] = []
        m_lr: List[float] = []
        m_lq: List[float] = []
        m_rx: List[float] = []
        m_ry: List[float] = []
        m_rr: List[float] = []
        m_rq: List[float] = []
        for cids in grid.sweep_cells():
            k = len(cids)
            for i in range(k - 1):
                cid_l = cids[i]
                li = cid_l - base
                key_l = cid_l << 32
                for j in range(i + 1, k):
                    cid_r = cids[j]
                    key = key_l | cid_r
                    if key in seen:
                        continue
                    seen_add(key)
                    ri = cid_r - base
                    if not (
                        (has_obj[li] and has_qry[ri])
                        or (has_qry[li] and has_obj[ri])
                    ):
                        continue
                    mixed_l.append(cid_l)
                    mixed_r.append(cid_r)
                    if not use_filter:
                        continue
                    lv = version[li]
                    rv = version[ri]
                    cached = cache.get((cid_l, cid_r))
                    if (
                        cached is not None
                        and cached[0] == lv
                        and cached[1] == rv
                    ):
                        hits += 1
                        verdict_append(cached[2])
                    else:
                        miss_at_append(len(verdicts))
                        verdict_append(None)
                        m_lx.append(cx[li])
                        m_ly.append(cy[li])
                        m_lr.append(radius[li])
                        m_lq.append(mqhd[li])
                        m_rx.append(cx[ri])
                        m_ry.append(cy[ri])
                        m_rr.append(radius[ri])
                        m_rq.append(mqhd[ri])
        if not use_filter:
            return (mixed_l, mixed_r), len(mixed_l), 0, 0
        # Pass 2: one batched filter over the misses, cache fold-in.
        if miss_at:
            fresh = backend.pairs_between(
                m_lx, m_ly, m_lr, m_lq, m_rx, m_ry, m_rr, m_rq
            )
            for slot, verdict in zip(miss_at, fresh):
                cid_l = mixed_l[slot]
                cid_r = mixed_r[slot]
                verdicts[slot] = verdict
                cache[(cid_l, cid_r)] = (
                    version[cid_l - base],
                    version[cid_r - base],
                    verdict,
                )
        lcids: List[int] = []
        rcids: List[int] = []
        for i, verdict in enumerate(verdicts):
            if verdict:
                lcids.append(mixed_l[i])
                rcids.append(mixed_r[i])
        return (lcids, rcids), len(mixed_l), hits, len(miss_at)

    # -- maintenance --------------------------------------------------------

    def prune(self, storage) -> None:
        """Bound the array cache and the registry across cluster churn.

        Same amortisation as the dict caches: the cache scan fires only
        past the watermark (doubled beyond the surviving size after each
        prune); the registry is rebuilt from scratch — re-based at the
        current lowest live cid — once stale rows dominate it.
        """
        cache = self.cache
        if cache is not None and len(cache) > self.watermark:
            np = self.np
            live = np.asarray(
                [cluster.cid for cluster in storage.clusters()],
                dtype=np.int64,
            )
            cache.prune(np, live)
            self.watermark = max(64, 2 * len(cache))
        if len(self.soa) > 2 * len(storage) + 64:
            self.soa = ClusterSoA()
            self.soa.sync(storage.clusters())


def _warm_numpy(np) -> None:
    """Pre-pay NumPy's first-call setup for the sweep's routine repertoire.

    Sort/set-op machinery, ufunc loop resolution and fancy-indexing paths
    all carry one-time per-process dispatch costs (milliseconds in total)
    that would otherwise land inside the first measured joining phase of
    every process — visible as a cold-start spike at small scales where a
    whole tick is sub-millisecond.  Touching each routine once on toy
    arrays moves that cost to import time, next to numpy's own.
    """
    a = np.arange(8, dtype=np.int64)
    f = a.astype(np.float64)
    np.unique((a << 32) | a, return_index=True)
    # The plain variant takes a separate hash-table path that lazily
    # imports ``numpy.ma`` on first use — by far the largest single
    # cold-start item (~20 ms).
    np.unique(a)
    np.argsort(a, kind="stable")
    np.searchsorted(a, a, "right")
    np.insert(a, 1, np.int64(5))
    np.flatnonzero(a > 3)
    np.repeat(a, np.full(8, 2, dtype=np.int64))
    np.concatenate((np.cumsum(a), a))
    np.fromiter((int(i) for i in range(4)), dtype=np.int64, count=4)
    np.asarray([1.0, 2.0], dtype=np.float64)
    mat = a.reshape(4, 2).copy()
    mat.sort(axis=1)
    slots = np.empty(8, dtype=np.int64)
    slots[0::2] = a[:4]
    slots[1::2] = a[:4]
    mask = np.zeros(8, dtype=bool)
    mask[0::2] = a[:4] > 1
    slots[mask]
    f[a - 6]
    alive = (np.abs(f - 1.0) <= 2.0) & (f - 1.0 >= -2.0)
    int((a * a).sum())
    (f[:, None] <= f[None, :]) & (f[:, None] >= f[None, :])
    np.minimum(f, 4.0)
    np.maximum(f, 4.0)
    del alive


if _numpy is not None:
    _warm_numpy(_numpy)
