"""ObjectsTable and QueriesTable (paper §4.1).

The remaining two of SCUBA's five in-memory structures: registries of the
*non-spatial* attributes of moving objects (``o.attrs`` — "child", "red
car", ...) and of queries (``q.attrs`` — predicates beyond the range
window).  Spatial state lives in the moving clusters; these tables exist so
that attribute predicates and final answers can be resolved without
touching cluster internals.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

__all__ = ["EntityAttributeTable", "ObjectsTable", "QueriesTable"]


class EntityAttributeTable:
    """id → attribute-mapping registry with last-seen bookkeeping."""

    def __init__(self) -> None:
        self._attrs: Dict[int, Mapping[str, Any]] = {}
        self._last_seen: Dict[int, float] = {}

    def record(self, entity_id: int, attrs: Optional[Mapping[str, Any]], t: float) -> None:
        """Upsert an entity's attributes from an update at time ``t``."""
        if attrs:
            self._attrs[entity_id] = attrs
        elif entity_id not in self._attrs:
            self._attrs[entity_id] = {}
        self._last_seen[entity_id] = t

    def attrs(self, entity_id: int) -> Mapping[str, Any]:
        return self._attrs[entity_id]

    def last_seen(self, entity_id: int) -> Optional[float]:
        return self._last_seen.get(entity_id)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Tuple[int, Mapping[str, Any]]]:
        return iter(self._attrs.items())

    def evict(self, entity_id: int) -> bool:
        """Drop one entity's row (sharded hand-off); True if it existed."""
        existed = self._attrs.pop(entity_id, None) is not None
        self._last_seen.pop(entity_id, None)
        return existed

    def evict_stale(self, cutoff: float) -> int:
        """Drop entities not heard from since ``cutoff``; returns count.

        Streams have no explicit end-of-entity signal; garbage-collecting
        silent entities bounds table growth in long runs.  The common
        serve-loop case — nothing stale — is a single allocation-free
        scan; only when something actually is stale do we rebuild the
        dicts (allocation bounded by the survivors, never a full
        stale-id list).
        """
        last_seen = self._last_seen
        for t in last_seen.values():
            if t < cutoff:
                break
        else:
            return 0
        attrs = self._attrs
        survivors = {eid: t for eid, t in last_seen.items() if t >= cutoff}
        evicted = len(last_seen) - len(survivors)
        self._attrs = {eid: attrs[eid] for eid in survivors}
        self._last_seen = survivors
        return evicted


class ObjectsTable(EntityAttributeTable):
    """Attributes of moving objects (``(o.oid, o.attrs)`` rows)."""


class QueriesTable(EntityAttributeTable):
    """Attributes of continuous queries (``(q.qid, q.attrs)`` rows)."""
