"""Naive nested-loop join — the correctness oracle.

Not part of the paper's comparison (it would be hopeless at scale); it
exists so tests and accuracy measurements have an indisputable ground
truth: every (query, object) pair is tested directly against the latest
reported positions, with no index, no clusters and no approximation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..generator import EntityKind, Update
from ..streams import QueryMatch, StagedJoinOperator

__all__ = ["NaiveJoin"]


class NaiveJoin(StagedJoinOperator):
    """O(objects × queries) reference implementation of the range join."""

    def __init__(self) -> None:
        self.objects: Dict[int, Tuple[float, float]] = {}
        self.queries: Dict[int, Tuple[float, float, float, float]] = {}
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0

    def on_update(self, update: Update) -> None:
        if update.kind is EntityKind.OBJECT:
            self.objects[update.oid] = (update.loc.x, update.loc.y)
        else:
            self.queries[update.qid] = (
                update.loc.x,
                update.loc.y,
                update.range_width / 2.0,
                update.range_height / 2.0,
            )

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Drop one entity (sharded halo hand-off)."""
        table = self.objects if kind is EntityKind.OBJECT else self.queries
        table.pop(entity_id, None)

    def join_phase(self, now: float) -> List[QueryMatch]:
        results: List[QueryMatch] = []
        for qid, (qx, qy, hw, hh) in self.queries.items():
            for oid, (ox, oy) in self.objects.items():
                if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                    results.append(QueryMatch(qid, oid, now))
        return results

    def state_roots(self) -> List[object]:
        return [self.objects, self.queries]

    def reset(self) -> None:
        self.__init__()
