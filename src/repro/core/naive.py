"""Naive nested-loop join — the correctness oracle.

Not part of the paper's comparison (it would be hopeless at scale); it
exists so tests and accuracy measurements have an indisputable ground
truth: every (query, object) pair is tested directly against the latest
reported positions, with no index, no clusters and no approximation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..generator import EntityKind, LocationUpdate, QueryUpdate, Update
from ..geometry import Point
from ..streams import QueryMatch, StagedJoinOperator

__all__ = ["NaiveJoin"]


class NaiveJoin(StagedJoinOperator):
    """O(objects × queries) reference implementation of the range join."""

    def __init__(self) -> None:
        self.objects: Dict[int, Tuple[float, float]] = {}
        self.queries: Dict[int, Tuple[float, float, float, float]] = {}
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0

    def on_update(self, update: Update) -> None:
        if update.kind is EntityKind.OBJECT:
            self.objects[update.oid] = (update.loc.x, update.loc.y)
        else:
            self.queries[update.qid] = (
                update.loc.x,
                update.loc.y,
                update.range_width / 2.0,
                update.range_height / 2.0,
            )

    def retract(self, entity_id: int, kind: EntityKind) -> None:
        """Drop one entity (sharded halo hand-off)."""
        table = self.objects if kind is EntityKind.OBJECT else self.queries
        table.pop(entity_id, None)

    def export_entity_updates(
        self, keys: Sequence[Tuple[int, EntityKind]]
    ) -> Dict[str, Any]:
        """Serialize entity state as replayable updates (shard migration).

        The naive join keeps only positions and windows, so the
        synthesized updates carry neutral kinematics (zero speed, no
        connection node) stamped at t=0 — replaying them reconstructs the
        join-relevant state exactly.  Entities this shard no longer holds
        are skipped.
        """
        updates: List[Update] = []
        for entity_id, kind in keys:
            if kind is EntityKind.OBJECT:
                pos = self.objects.get(entity_id)
                if pos is None:
                    continue
                x, y = pos
                updates.append(
                    LocationUpdate(
                        entity_id, Point(x, y), 0.0, 0.0, -1, Point(x, y), None
                    )
                )
            else:
                entry = self.queries.get(entity_id)
                if entry is None:
                    continue
                x, y, hw, hh = entry
                updates.append(
                    QueryUpdate(
                        entity_id,
                        Point(x, y),
                        0.0,
                        0.0,
                        -1,
                        Point(x, y),
                        2.0 * hw,
                        2.0 * hh,
                        None,
                    )
                )
        return {"updates": updates, "clusters": len(updates)}

    def join_phase(self, now: float) -> List[QueryMatch]:
        results: List[QueryMatch] = []
        for qid, (qx, qy, hw, hh) in self.queries.items():
            for oid, (ox, oy) in self.objects.items():
                if abs(ox - qx) <= hw and abs(oy - qy) <= hh:
                    results.append(QueryMatch(qid, oid, now))
        return results

    def state_roots(self) -> List[object]:
        return [self.objects, self.queries]

    def reset(self) -> None:
        self.__init__()
