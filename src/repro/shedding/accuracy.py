"""Result-accuracy measurement under load shedding (paper §6.6).

The paper scores a shedding configuration by comparing its output against
the η = 0 % (no shedding) answer and counting **false positives** (pairs
reported that the exact evaluation does not report) and **false negatives**
(exact pairs that the shedding run misses).  We reproduce that score and
additionally expose precision/recall/F1, which make the trade-off easier to
read in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

from ..streams import QueryMatch, match_set

__all__ = ["AccuracyReport", "compare_results"]


@dataclass(frozen=True)
class AccuracyReport:
    """Confusion counts of an approximate result set vs. a reference."""

    reference_count: int
    produced_count: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        if self.produced_count == 0:
            return 1.0 if self.reference_count == 0 else 0.0
        return self.true_positives / self.produced_count

    @property
    def recall(self) -> float:
        if self.reference_count == 0:
            return 1.0
        return self.true_positives / self.reference_count

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    @property
    def accuracy(self) -> float:
        """The paper's headline metric: errors relative to the exact answer.

        Both error kinds count against the score, floored at zero:
        ``1 − (FP + FN) / |reference|``.  A perfect run scores 1.0.
        """
        if self.reference_count == 0:
            return 1.0 if self.false_positives == 0 else 0.0
        return max(
            0.0,
            1.0 - (self.false_positives + self.false_negatives) / self.reference_count,
        )

    def __str__(self) -> str:
        return (
            f"accuracy {self.accuracy:.1%} "
            f"(P {self.precision:.1%} / R {self.recall:.1%}, "
            f"FP {self.false_positives}, FN {self.false_negatives})"
        )


def compare_results(
    reference: Iterable[QueryMatch], produced: Iterable[QueryMatch]
) -> AccuracyReport:
    """Score ``produced`` against the exact ``reference`` answer.

    Matches are compared as (qid, oid) pairs — evaluation timestamps are
    metadata, not identity.
    """
    ref: Set[Tuple[int, int]] = match_set(reference)
    got: Set[Tuple[int, int]] = match_set(produced)
    tp = len(ref & got)
    return AccuracyReport(
        reference_count=len(ref),
        produced_count=len(got),
        true_positives=tp,
        false_positives=len(got - ref),
        false_negatives=len(ref - got),
    )
