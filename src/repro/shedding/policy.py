"""Moving-cluster-driven load-shedding policies (paper §5).

When the engine cannot keep up, SCUBA discards the *least important* data
first: relative positions of cluster members closest to the centroid, whose
locations the cluster approximates best.  Those members are abstracted into
the cluster's **nucleus** — a circular region of radius ``Θ_N`` (with
``0 ≤ Θ_N ≤ Θ_D``) around the centroid.  The three regimes of Fig. 8:

* **no shedding** — every member keeps its relative position;
* **partial shedding** — members whose distance to the centroid is within
  the nucleus radius lose their positions; members farther out keep theirs;
* **full shedding** — every position is dropped; the cluster alone
  represents its members.

The knob exposed to experiments is η (``eta``), the nucleus-to-cluster size
percentage on the x-axis of Fig. 13: ``Θ_N = η × Θ_D``.
"""

from __future__ import annotations

from ..clustering import MovingCluster
from ..generator import Update

__all__ = [
    "SheddingPolicy",
    "NoShedding",
    "PartialShedding",
    "FullShedding",
    "RandomShedding",
    "policy_for_eta",
]


class SheddingPolicy:
    """Decides which member positions to discard at ingest time.

    ``nucleus_radius_for(cluster)`` fixes the cluster's nucleus size;
    ``should_shed`` is consulted right after a member's update is absorbed,
    with ``dist`` the member's distance from the (post-absorb) centroid.
    """

    #: Human-readable name used in experiment reports.
    name = "abstract"

    def nucleus_radius_for(self, cluster: MovingCluster) -> float:
        raise NotImplementedError

    def should_shed(self, cluster: MovingCluster, dist: float) -> bool:
        raise NotImplementedError

    def apply(self, cluster: MovingCluster, update: Update, dist: float) -> None:
        """Shed the just-absorbed member's position if the policy says so."""
        nucleus = self.nucleus_radius_for(cluster)
        if nucleus != cluster.nucleus_radius:
            cluster.nucleus_radius = nucleus
            cluster.version += 1
        if self.should_shed(cluster, dist):
            member = cluster.get_member(update.entity_id, update.kind)
            assert member is not None
            if not member.position_shed:
                member.position_shed = True
                cluster.shed_count += 1
                cluster.version += 1
                # Losing a member's position changes what join-within can
                # produce: a structural change, not a rigid translation.
                cluster.struct_version += 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoShedding(SheddingPolicy):
    """Keep every relative position (Fig. 8a).  η = 0 %."""

    name = "none"

    def nucleus_radius_for(self, cluster: MovingCluster) -> float:
        return 0.0

    def should_shed(self, cluster: MovingCluster, dist: float) -> bool:
        return False


class PartialShedding(SheddingPolicy):
    """Discard positions inside the nucleus (Fig. 8c).

    ``eta`` is the nucleus size as a fraction of the distance threshold
    ``Θ_D`` (the maximum cluster radius): ``Θ_N = eta × Θ_D``.
    """

    name = "partial"

    def __init__(self, eta: float, theta_d: float) -> None:
        if not 0.0 <= eta <= 1.0:
            raise ValueError(f"eta must be in [0, 1], got {eta}")
        if theta_d < 0:
            raise ValueError(f"theta_d must be non-negative, got {theta_d}")
        self.eta = eta
        self.theta_n = eta * theta_d

    def nucleus_radius_for(self, cluster: MovingCluster) -> float:
        return self.theta_n

    def should_shed(self, cluster: MovingCluster, dist: float) -> bool:
        return dist <= self.theta_n

    def __repr__(self) -> str:
        return f"PartialShedding(eta={self.eta}, theta_n={self.theta_n:g})"


class FullShedding(SheddingPolicy):
    """Discard every position (Fig. 8b).  η = 100 %.

    The nucleus degenerates to the whole cluster: join predicates fall back
    to pure cluster-level approximation, so intersecting clusters match all
    their members pairwise — the paper's stated full-shedding semantics.
    """

    name = "full"

    def __init__(self, theta_d: float) -> None:
        self.theta_n = theta_d

    def nucleus_radius_for(self, cluster: MovingCluster) -> float:
        return self.theta_n

    def should_shed(self, cluster: MovingCluster, dist: float) -> bool:
        return True


class RandomShedding(SheddingPolicy):
    """Shed a random fraction of member positions — the strawman of §6.6.

    The paper argues semantic (nucleus-based) shedding beats dropping "the
    same number of tuples — but just not the same tuples" at random,
    because random drops discard members far from the centroid whose
    positions the cluster approximates poorly.  This policy sheds each
    incoming position with probability ``drop_fraction`` so the ablation
    benchmark can measure that accuracy gap at equal shed volume.

    Shed members are still approximated by a nucleus of radius ``Θ_D``
    (the only sound bound — a randomly shed member can be anywhere in the
    cluster), which is precisely why accuracy suffers.
    """

    name = "random"

    def __init__(self, drop_fraction: float, theta_d: float, seed: int = 0) -> None:
        if not 0.0 <= drop_fraction <= 1.0:
            raise ValueError(f"drop_fraction must be in [0, 1], got {drop_fraction}")
        import random

        self.drop_fraction = drop_fraction
        self.theta_d = theta_d
        self._rng = random.Random(seed)

    def nucleus_radius_for(self, cluster: MovingCluster) -> float:
        return self.theta_d

    def should_shed(self, cluster: MovingCluster, dist: float) -> bool:
        return self._rng.random() < self.drop_fraction

    def __repr__(self) -> str:
        return f"RandomShedding(drop_fraction={self.drop_fraction})"


def policy_for_eta(eta: float, theta_d: float) -> SheddingPolicy:
    """The policy matching an η percentage point of Fig. 13.

    η = 0 → no shedding; η = 1 → full shedding; otherwise partial with
    ``Θ_N = η × Θ_D``.
    """
    if eta <= 0.0:
        return NoShedding()
    if eta >= 1.0:
        return FullShedding(theta_d)
    return PartialShedding(eta, theta_d)
