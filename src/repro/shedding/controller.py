"""Adaptive shedding control.

The paper describes load shedding as a *reaction* to resource pressure:
"If the system is about to run out of memory, SCUBA begins load shedding of
cluster member positions and uses a nucleus to approximate their positions.
If memory requirements are still high, then SCUBA load sheds positions of
all cluster members" (§5).  The evaluation only measures fixed η settings,
but the control loop itself is part of the design — this module supplies
it, and an ablation benchmark exercises it.

:class:`AdaptiveShedder` watches the number of retained member positions (a
direct proxy for the state the paper sheds) and escalates η by one step
whenever the count exceeds the budget, de-escalating when pressure drops
below half the budget.  η moves along a fixed ladder ending in full
shedding, mirroring the paper's two-stage "nucleus first, everything if
that's not enough" story.
"""

from __future__ import annotations

from typing import List, Sequence

from ..clustering import ClusterStorage
from .policy import SheddingPolicy, policy_for_eta

__all__ = ["AdaptiveShedder", "retained_position_count"]

#: Default escalation ladder for η (fractions of Θ_D).
DEFAULT_LADDER: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)


def retained_position_count(storage: ClusterStorage) -> int:
    """Member positions currently held (the state shedding can reclaim)."""
    return sum(cluster.n - cluster.shed_count for cluster in storage)


class AdaptiveShedder:
    """Feedback controller stepping η up and down a ladder."""

    def __init__(
        self,
        theta_d: float,
        max_positions: int,
        ladder: Sequence[float] = DEFAULT_LADDER,
    ) -> None:
        if max_positions < 1:
            raise ValueError(f"max_positions must be >= 1, got {max_positions}")
        if not ladder or sorted(ladder) != list(ladder):
            raise ValueError("ladder must be a non-empty ascending sequence")
        self.theta_d = theta_d
        self.max_positions = max_positions
        self.ladder: List[float] = list(ladder)
        self._level = 0
        self.policy: SheddingPolicy = policy_for_eta(self.ladder[0], theta_d)
        #: (time, eta) escalation history, for experiment reporting.
        self.history: List[tuple] = []

    @property
    def eta(self) -> float:
        return self.ladder[self._level]

    def observe(self, storage: ClusterStorage, now: float) -> SheddingPolicy:
        """Inspect current pressure; returns the policy to use next interval."""
        retained = retained_position_count(storage)
        old_level = self._level
        if retained > self.max_positions and self._level < len(self.ladder) - 1:
            self._level += 1
        elif (
            retained < self.max_positions // 2
            and self._level > self.level_floor
        ):
            self._level -= 1
        if self._level != old_level:
            self.policy = policy_for_eta(self.ladder[self._level], self.theta_d)
            self.history.append((now, self.eta))
        return self.policy

    # -- external escalation ------------------------------------------------
    #
    # The memory-pressure feedback above reacts to *retained positions*; a
    # long-lived service has a second pressure source — ingest outrunning
    # evaluation — and signals it through these methods.  The level floor
    # keeps observe() from immediately undoing a forced escalation while the
    # external pressure persists.

    #: Lowest rung observe() may de-escalate to (raised by escalate()).
    level_floor: int = 0

    def _move_to(self, level: int, now: float) -> bool:
        if level == self._level:
            return False
        self._level = level
        self.policy = policy_for_eta(self.ladder[level], self.theta_d)
        self.history.append((now, self.eta))
        return True

    def escalate(self, now: float) -> bool:
        """Force η one rung up the ladder (external overload signal).

        Pins the level floor at the new rung so the retained-position
        feedback cannot immediately step back down; :meth:`relax` lowers
        the floor again.  Returns True when η actually changed.
        """
        if self._level >= len(self.ladder) - 1:
            return False
        moved = self._move_to(self._level + 1, now)
        self.level_floor = max(self.level_floor, self._level)
        return moved

    def relax(self, now: float) -> bool:
        """Release one rung of forced escalation (overload subsided).

        Lowers the floor and steps η down one rung when the controller is
        sitting on the floor.  Returns True when η actually changed.
        """
        if self.level_floor > 0:
            self.level_floor -= 1
        if self._level > self.level_floor:
            return self._move_to(self._level - 1, now)
        return False

    def __repr__(self) -> str:
        return (
            f"AdaptiveShedder(eta={self.eta}, budget={self.max_positions}, "
            f"{len(self.history)} transitions)"
        )
