"""Moving-cluster-driven load shedding (paper §5) and accuracy scoring."""

from .accuracy import AccuracyReport, compare_results
from .controller import AdaptiveShedder, retained_position_count
from .policy import (
    FullShedding,
    NoShedding,
    PartialShedding,
    RandomShedding,
    SheddingPolicy,
    policy_for_eta,
)

__all__ = [
    "AccuracyReport",
    "AdaptiveShedder",
    "FullShedding",
    "NoShedding",
    "PartialShedding",
    "RandomShedding",
    "SheddingPolicy",
    "compare_results",
    "policy_for_eta",
    "retained_position_count",
]
