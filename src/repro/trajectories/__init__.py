"""Trajectory storage: exact polylines vs. cluster-summarised paths.

The cluster store applies the paper's "clusters as summaries" idea to
historical data: position samples scale with the number of clusters, and
per-entity state shrinks to membership intervals.
"""

from .cluster_store import ClusterTrajectoryStore
from .store import TrajectoryStore

__all__ = ["ClusterTrajectoryStore", "TrajectoryStore"]
