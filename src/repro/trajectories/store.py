"""Exact trajectory storage.

The paper lists trajectory queries among the query types SCUBA's framework
serves (§1).  The baseline substrate is the obvious one: record every
entity's sampled positions and answer historical predicates by scanning
the polylines.  :class:`TrajectoryStore` implements it with a bounded
retention window so long runs don't grow without limit —
:class:`~repro.trajectories.cluster_store.ClusterTrajectoryStore` is the
cluster-summarised alternative this one is compared against.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Set, Tuple

from ..geometry import Rect

__all__ = ["TrajectoryStore"]


class TrajectoryStore:
    """Per-entity sampled trajectories with windowed retention."""

    def __init__(self, max_age: float = float("inf")) -> None:
        if max_age <= 0:
            raise ValueError(f"max_age must be positive, got {max_age}")
        self.max_age = max_age
        # entity -> parallel lists (times ascending, positions).
        self._times: Dict[int, List[float]] = {}
        self._points: Dict[int, List[Tuple[float, float]]] = {}
        self._latest_t = 0.0

    # -- recording ---------------------------------------------------------------

    def record(self, entity_id: int, t: float, x: float, y: float) -> None:
        """Append one position sample (samples must arrive in time order)."""
        times = self._times.setdefault(entity_id, [])
        if times and t < times[-1]:
            raise ValueError(
                f"out-of-order sample for entity {entity_id}: {t} < {times[-1]}"
            )
        times.append(t)
        self._points.setdefault(entity_id, []).append((x, y))
        if t > self._latest_t:
            self._latest_t = t

    def prune(self) -> int:
        """Drop samples older than the retention window; returns count."""
        cutoff = self._latest_t - self.max_age
        dropped = 0
        for entity_id in list(self._times):
            times = self._times[entity_id]
            keep_from = bisect.bisect_left(times, cutoff)
            if keep_from:
                dropped += keep_from
                self._times[entity_id] = times[keep_from:]
                self._points[entity_id] = self._points[entity_id][keep_from:]
            if not self._times[entity_id]:
                del self._times[entity_id]
                del self._points[entity_id]
        return dropped

    # -- queries -------------------------------------------------------------------

    def passed_through(self, region: Rect, t0: float, t1: float) -> Set[int]:
        """Entities with a sample inside ``region`` during ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"empty time window: [{t0}, {t1}]")
        hits: Set[int] = set()
        for entity_id, times in self._times.items():
            lo = bisect.bisect_left(times, t0)
            hi = bisect.bisect_right(times, t1)
            points = self._points[entity_id]
            for i in range(lo, hi):
                x, y = points[i]
                if region.contains_xy(x, y):
                    hits.add(entity_id)
                    break
        return hits

    def trajectory(self, entity_id: int) -> List[Tuple[float, float, float]]:
        """The retained (t, x, y) samples of one entity."""
        times = self._times.get(entity_id, [])
        points = self._points.get(entity_id, [])
        return [(t, p[0], p[1]) for t, p in zip(times, points)]

    # -- accounting ----------------------------------------------------------------

    @property
    def entity_count(self) -> int:
        return len(self._times)

    @property
    def sample_count(self) -> int:
        """Total retained position samples — the store's memory driver."""
        return sum(len(times) for times in self._times.values())

    def __repr__(self) -> str:
        return (
            f"TrajectoryStore({self.entity_count} entities, "
            f"{self.sample_count} samples)"
        )
