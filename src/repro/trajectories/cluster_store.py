"""Cluster-summarised trajectory storage.

Moving clusters are summaries of their members (paper §1/§5) — and that
applies over *time* too: instead of recording every entity's polyline, the
cluster store records

* one **centroid/radius sample per cluster** per recording tick, and
* per-entity **membership intervals** (``entity e belonged to cluster c
  from t_in to t_out``), which only cost writes when membership changes.

A historical "who passed through region R during [t0, t1]?" is answered by
finding cluster samples whose disc intersects R in the window and
collecting the entities whose membership interval covers the matching
sample times.  The answer is *approximate* the same way load shedding is:
a member is assumed anywhere within its cluster's disc, so answers are a
superset of the exact store's at the same sampling times — errors are
false positives, never misses.

The pay-off mirrors the paper's memory argument: position samples scale
with the number of *clusters*, not entities.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

from ..clustering import ClusterWorld
from ..generator import EntityKind
from ..geometry import Circle, Point, Rect

__all__ = ["ClusterTrajectoryStore"]


class _Membership:
    """One entity's stay inside one cluster."""

    __slots__ = ("cid", "t_in", "t_out")

    def __init__(self, cid: int, t_in: float) -> None:
        self.cid = cid
        self.t_in = t_in
        self.t_out: Optional[float] = None  # None = still a member

    def covers(self, t0: float, t1: float) -> bool:
        """True when the stay overlaps the closed window [t0, t1]."""
        end = self.t_out if self.t_out is not None else float("inf")
        return self.t_in <= t1 and end >= t0


class ClusterTrajectoryStore:
    """Records cluster paths + membership intervals from a ClusterWorld."""

    def __init__(self) -> None:
        # cid -> parallel lists (times ascending, (x, y, radius)).
        self._times: Dict[int, List[float]] = {}
        self._samples: Dict[int, List[Tuple[float, float, float]]] = {}
        # (entity_id, is_object) -> list of stays, newest last.
        self._memberships: Dict[Tuple[int, bool], List[_Membership]] = {}

    # -- recording ---------------------------------------------------------------

    def record(self, world: ClusterWorld, t: float) -> None:
        """Snapshot the world's clusters and membership at time ``t``.

        Call once per recording tick (typically per evaluation interval).
        Membership intervals are maintained by diffing against the last
        snapshot, so steady membership costs no writes.
        """
        for cluster in world.storage:
            times = self._times.setdefault(cluster.cid, [])
            if times and t < times[-1]:
                raise ValueError(f"out-of-order snapshot at t={t}")
            times.append(t)
            self._samples.setdefault(cluster.cid, []).append(
                (cluster.cx, cluster.cy, cluster.radius)
            )
        # Membership diff against ClusterHome.
        current: Dict[Tuple[int, bool], int] = {}
        for cluster in world.storage:
            for member in cluster.members():
                key = (member.entity_id, member.kind is EntityKind.OBJECT)
                current[key] = cluster.cid
        for key, cid in current.items():
            stays = self._memberships.setdefault(key, [])
            if stays and stays[-1].t_out is None:
                if stays[-1].cid == cid:
                    continue  # unchanged membership: no write
                stays[-1].t_out = t
            stays.append(_Membership(cid, t))
        for key, stays in self._memberships.items():
            if key not in current and stays and stays[-1].t_out is None:
                stays[-1].t_out = t

    # -- queries -------------------------------------------------------------------

    def passed_through(self, region: Rect, t0: float, t1: float) -> Set[Tuple[int, bool]]:
        """Entities possibly inside ``region`` during ``[t0, t1]``.

        Keys are ``(entity_id, is_object)``; the answer is a superset of
        the exact store's at matching sample times.
        """
        if t1 < t0:
            raise ValueError(f"empty time window: [{t0}, {t1}]")
        # Clusters with an intersecting sample, with the matching times.
        hit_windows: Dict[int, Tuple[float, float]] = {}
        for cid, times in self._times.items():
            lo = bisect.bisect_left(times, t0)
            hi = bisect.bisect_right(times, t1)
            samples = self._samples[cid]
            for i in range(lo, hi):
                x, y, radius = samples[i]
                if region.intersects_circle(Circle(Point(x, y), radius)):
                    first = times[i]
                    # Extend to the last intersecting sample in the window.
                    last = first
                    for j in range(hi - 1, i - 1, -1):
                        xj, yj, rj = samples[j]
                        if region.intersects_circle(Circle(Point(xj, yj), rj)):
                            last = times[j]
                            break
                    hit_windows[cid] = (first, last)
                    break
        if not hit_windows:
            return set()
        hits: Set[Tuple[int, bool]] = set()
        for key, stays in self._memberships.items():
            for stay in stays:
                window = hit_windows.get(stay.cid)
                if window and stay.covers(window[0], window[1]):
                    hits.add(key)
                    break
        return hits

    def cluster_path(self, cid: int) -> List[Tuple[float, float, float, float]]:
        """The retained (t, x, y, radius) samples of one cluster."""
        times = self._times.get(cid, [])
        samples = self._samples.get(cid, [])
        return [(t, s[0], s[1], s[2]) for t, s in zip(times, samples)]

    # -- accounting ----------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Retained cluster position samples (vs. entity samples exactly)."""
        return sum(len(times) for times in self._times.values())

    @property
    def membership_interval_count(self) -> int:
        return sum(len(stays) for stays in self._memberships.values())

    def __repr__(self) -> str:
        return (
            f"ClusterTrajectoryStore({len(self._times)} clusters, "
            f"{self.sample_count} samples, "
            f"{self.membership_interval_count} stays)"
        )
