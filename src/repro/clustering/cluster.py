"""Moving clusters (paper §3).

A :class:`MovingCluster` abstracts a set of moving objects *and* moving
queries that travel closely together: it carries the paper's full state
tuple ``(m.cid, m.loc_t, m.n, m.oids, m.qids, m.avespeed, m.cnloc, m.r,
m.exptime)``.

Member positions are stored **relative to the cluster's motion** (§3.1).
The paper keeps polar coordinates with a *transformation vector* recording
centroid shifts between periodic executions, fixed up lazily when a
join-within actually needs member positions.  We implement the same lazy
scheme with an exactness twist that matters in floating point:

* each member stores the **absolute coordinates of its last report** plus a
  snapshot of the cluster's cumulative **rigid-translation vector** at that
  moment;
* post-join relocation (the whole cluster advancing along its velocity
  vector) only bumps the translation vector — members ride along for free
  and are reconstructed as ``reported + (translation now − translation at
  report)``;
* centroid *re-definitions* (absorbing a member pulls the centroid toward
  it) do not move any member, so they touch nothing;
* :meth:`flush_transform` rebases all members onto the current translation
  — the paper's lazy transformation-vector application.

Because a member that reported since the last relocation has a zero pending
translation, its reconstructed position is **bit-identical** to what it
reported — SCUBA's join-within then agrees exactly with an individual
evaluation, boundary cases included.

The polar view of a member's centroid-relative position is available via
:meth:`member_polar` for API faithfulness.

Load shedding (§5) is expressed here as members whose position is dropped
(``position_shed``): the cluster (or its nucleus) is then the sole
approximation of their whereabouts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

from ..generator import EntityKind, Update
from ..geometry import Circle, Point, PolarCoord, to_polar
from ..network import NodeId

__all__ = ["ClusterMember", "MovingCluster"]


class ClusterMember:
    """Per-member state kept inside a moving cluster."""

    __slots__ = (
        "entity_id",
        "kind",
        "abs_x",
        "abs_y",
        "tr_x",
        "tr_y",
        "speed",
        "range_width",
        "range_height",
        "half_diag",
        "last_t",
        "position_shed",
        "cn_node",
        "cn_x",
        "cn_y",
    )

    def __init__(
        self,
        entity_id: int,
        kind: EntityKind,
        abs_x: float,
        abs_y: float,
        tr_x: float,
        tr_y: float,
        speed: float,
        last_t: float,
        range_width: float = 0.0,
        range_height: float = 0.0,
        cn_node: NodeId = -1,
        cn_x: float = 0.0,
        cn_y: float = 0.0,
    ) -> None:
        self.entity_id = entity_id
        self.kind = kind
        # Absolute position at last report ...
        self.abs_x = abs_x
        self.abs_y = abs_y
        # ... and the cluster's rigid-translation vector at that moment
        # (see MovingCluster docstring).
        self.tr_x = tr_x
        self.tr_y = tr_y
        self.speed = speed
        self.range_width = range_width
        self.range_height = range_height
        self.half_diag = 0.5 * math.hypot(range_width, range_height)
        self.last_t = last_t
        #: True once load shedding discarded this member's position.
        self.position_shed = False
        # The member's own current destination, as last reported.  Usually
        # equals the cluster's cnloc (the admission predicate requires it);
        # it diverges briefly after the member crosses the node, which is
        # exactly the signal cluster *splitting* keys on.
        self.cn_node = cn_node
        self.cn_x = cn_x
        self.cn_y = cn_y

    def __repr__(self) -> str:
        shed = ", shed" if self.position_shed else ""
        return (
            f"ClusterMember({self.kind.value} {self.entity_id}, "
            f"abs=({self.abs_x:g}, {self.abs_y:g}){shed})"
        )


class MovingCluster:
    """A group of moving objects and queries sharing motion properties."""

    __slots__ = (
        "cid",
        "version",
        "struct_version",
        "disp_x",
        "disp_y",
        "cx",
        "cy",
        "radius",
        "avespeed",
        "cn_node",
        "cn_loc",
        "exptime",
        "created_at",
        "objects",
        "queries",
        "trans_x",
        "trans_y",
        "_speed_sum",
        "max_query_half_diag",
        "nucleus_radius",
        "shed_count",
        "grid_cells",
        "last_moved",
        "successors",
    )

    def __init__(
        self,
        cid: int,
        centroid: Point,
        cn_node: NodeId,
        cn_loc: Point,
        now: float,
    ) -> None:
        self.cid = cid
        #: Monotonic change counter: bumped by every mutation that can
        #: alter join behaviour (membership, member positions, centroid,
        #: radius, shed state).  Consumers snapshot it to know whether
        #: derived state — a ClusterJoinView, a memoized join-between
        #: verdict — is still valid.  Rigid-translation *flushes* do not
        #: bump it: they rebase member storage without changing any
        #: reconstructed position.
        self.version = 0
        #: Monotonic *structural* change counter: bumped only by mutations
        #: that change member geometry relative to the cluster — membership
        #: churn (absorb/remove), shed-state transitions, and split
        #: hand-offs.  Rigid translation (advance/flush) and derived-shape
        #: refreshes (recentre, recompute_radius) do NOT bump it: they
        #: cannot change which member pairs match.  The incremental join
        #: sweep keys its match memos on this counter.
        self.struct_version = 0
        #: Cumulative rigid displacement applied by :meth:`advance` over the
        #: cluster's lifetime.  Unlike ``trans_x``/``trans_y`` it is never
        #: reset by :meth:`flush_transform`, so two snapshots of it tell the
        #: incremental sweep exactly how far the cluster translated between
        #: two evaluations.
        self.disp_x = 0.0
        self.disp_y = 0.0
        self.cx = centroid.x
        self.cy = centroid.y
        self.radius = 0.0
        self.avespeed = 0.0
        self.cn_node = cn_node
        self.cn_loc = cn_loc
        self.exptime = math.inf
        self.created_at = now
        self.objects: Dict[int, ClusterMember] = {}
        self.queries: Dict[int, ClusterMember] = {}
        # Cumulative rigid-translation vector (the transformation vector):
        # total centroid displacement due to advance() since the last flush.
        self.trans_x = 0.0
        self.trans_y = 0.0
        self._speed_sum = 0.0
        # Largest query-window half diagonal among members; the join-between
        # filter inflates the cluster circle by this to stay lossless.
        self.max_query_half_diag = 0.0
        #: Radius of the load-shedding nucleus (0 = no nucleus).
        self.nucleus_radius = 0.0
        #: Number of members whose positions have been load shed.
        self.shed_count = 0
        #: Grid cells this cluster is currently registered in (maintained by
        #: the ClusterGrid; stored here to avoid a second lookup table).
        self.grid_cells: Tuple[int, ...] = ()
        #: Simulation time up to which the cluster has been advanced along
        #: its velocity vector (see :meth:`advance_to`).
        self.last_moved = now
        #: Successor-cluster links for splitting (new destination node →
        #: cluster id).  Lazily allocated; None when splitting is off or no
        #: member has peeled off yet.
        self.successors: Optional[Dict[NodeId, int]] = None

    # -- basic accessors -------------------------------------------------------

    @property
    def centroid(self) -> Point:
        return Point(self.cx, self.cy)

    @property
    def n(self) -> int:
        """Total member count (paper's ``m.n``)."""
        return len(self.objects) + len(self.queries)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    @property
    def query_count(self) -> int:
        return len(self.queries)

    @property
    def is_empty(self) -> bool:
        return not self.objects and not self.queries

    @property
    def is_mixed(self) -> bool:
        """True when the cluster holds both objects and queries.

        Only mixed clusters can produce results from a self join-within
        (paper Algorithm 1, line 14).
        """
        return bool(self.objects) and bool(self.queries)

    def circle(self) -> Circle:
        """The cluster's circular footprint."""
        return Circle(self.centroid, self.radius)

    def filter_circle(self) -> Circle:
        """Footprint inflated by the widest member query window.

        Using this circle in join-between guarantees the pre-filter never
        prunes a cluster pair that could produce a match: a query member
        sitting exactly on the cluster boundary still reaches
        ``max_query_half_diag`` beyond it.
        """
        return Circle(self.centroid, self.radius + self.max_query_half_diag)

    def members(self) -> Iterator[ClusterMember]:
        """All members, objects first (deterministic order)."""
        yield from self.objects.values()
        yield from self.queries.values()

    def get_member(self, entity_id: int, kind: EntityKind) -> Optional[ClusterMember]:
        table = self.objects if kind is EntityKind.OBJECT else self.queries
        return table.get(entity_id)

    # -- member positions -------------------------------------------------------

    def member_location(self, member: ClusterMember) -> Optional[Point]:
        """Best-known absolute position of ``member``.

        The last reported position carried along by any rigid translation
        applied since.  ``None`` when the member's position was load shed —
        callers must then fall back to the nucleus/cluster approximation.
        """
        if member.position_shed:
            return None
        return Point(
            member.abs_x + (self.trans_x - member.tr_x),
            member.abs_y + (self.trans_y - member.tr_y),
        )

    def member_polar(self, member: ClusterMember) -> Optional[PolarCoord]:
        """The member's centroid-relative position in the paper's polar form."""
        loc = self.member_location(member)
        if loc is None:
            return None
        return to_polar(loc, self.centroid)

    def flush_transform(self) -> None:
        """Apply the pending transformation vector to all members.

        After this, every member's stored position is current (zero pending
        translation).  Run lazily before a join-within touches member
        positions (§3.1: "we refrain from constantly updating the relative
        positions ... as this info is not needed, unless a join-within is
        to be performed").
        """
        tx, ty = self.trans_x, self.trans_y
        if tx == 0.0 and ty == 0.0:
            for member in self.members():
                member.tr_x = 0.0
                member.tr_y = 0.0
            return
        if not self.shed_count:
            # Shed-free (the steady-state common case): no per-member
            # position_shed branch and no members() generator chaining.
            for table in (self.objects, self.queries):
                for member in table.values():
                    member.abs_x += tx - member.tr_x
                    member.abs_y += ty - member.tr_y
                    member.tr_x = 0.0
                    member.tr_y = 0.0
            self.trans_x = 0.0
            self.trans_y = 0.0
            return
        for member in self.members():
            if not member.position_shed:
                member.abs_x += tx - member.tr_x
                member.abs_y += ty - member.tr_y
            member.tr_x = 0.0
            member.tr_y = 0.0
        self.trans_x = 0.0
        self.trans_y = 0.0

    # -- membership maintenance ---------------------------------------------------

    def absorb(self, update: Update) -> None:
        """Add a new member or refresh an existing one (paper §3.2 Step 4).

        The centroid is adjusted toward the reported position, the average
        speed recomputed, and the radius enlarged when the member lies
        outside the current footprint.
        """
        kind = update.kind
        is_object = kind is EntityKind.OBJECT
        table = self.objects if is_object else self.queries
        member = table.get(update.entity_id)
        loc = update.loc
        x, y = loc.x, loc.y
        if member is not None:
            if (
                not member.position_shed
                and update.speed == member.speed
                and update.cn_node == member.cn_node
                and x == member.abs_x + (self.trans_x - member.tr_x)
                and y == member.abs_y + (self.trans_y - member.tr_y)
            ):
                # Heartbeat: the member re-reported exactly where the
                # cluster already places it, at the same speed, bound for
                # the same node.  Nothing join-relevant changed, so no
                # version bumps — parked traffic stays cacheable (and,
                # under incremental mode, replayable) while reporting.
                member.last_t = update.t
                return
            self.version += 1
            self.struct_version += 1
            # Refresh — the per-tuple steady state, kept deliberately lean.
            # The paper "refrains from constantly updating" cluster-relative
            # state: a re-reporting member just overwrites its position and
            # speed.  The centroid is NOT re-balanced here (the cluster
            # tracks its members through advance(); maintenance recentres
            # once per interval), so no covering-radius inflation is needed
            # — only the absorbed member itself can extend the footprint.
            if member.position_shed:
                member.position_shed = False
                self.shed_count -= 1
            self._speed_sum += update.speed - member.speed
            self.avespeed = self._speed_sum / (
                len(self.objects) + len(self.queries)
            )
            member.speed = update.speed
            member.abs_x = x
            member.abs_y = y
            member.tr_x = self.trans_x
            member.tr_y = self.trans_y
            member.last_t = update.t
            if member.cn_node != update.cn_node:
                member.cn_node = update.cn_node
                member.cn_x = update.cn_loc.x
                member.cn_y = update.cn_loc.y
            if len(self.objects) + len(self.queries) == 1:
                # A single-member cluster simply follows its entity: the
                # member *is* the centroid, and the footprint is a point.
                self.cx = x
                self.cy = y
                self.radius = 0.0
                self._update_expiry(update.t)
                return
            dx = x - self.cx
            dy = y - self.cy
            dist_sq = dx * dx + dy * dy
            if dist_sq > self.radius * self.radius:
                self.radius = math.sqrt(dist_sq)
            return
        self.version += 1
        self.struct_version += 1
        # Absorption of a new member (paper §3.2 Step 4): the centroid is
        # adjusted toward the member by 1/n of the gap.  That adjustment
        # moves every *other* member relatively outward by the shift
        # length, so the radius absorbs it too (recompute_radius later
        # re-tightens) — otherwise a drifted member could escape the
        # footprint and join-between would prune a true match.
        count = len(self.objects) + len(self.queries) + 1
        shift_x = (x - self.cx) / count
        shift_y = (y - self.cy) / count
        self.cx += shift_x
        self.cy += shift_y
        member = ClusterMember(
            entity_id=update.entity_id,
            kind=kind,
            abs_x=x,
            abs_y=y,
            tr_x=self.trans_x,
            tr_y=self.trans_y,
            speed=update.speed,
            last_t=update.t,
            range_width=0.0 if is_object else update.range_width,
            range_height=0.0 if is_object else update.range_height,
            cn_node=update.cn_node,
            cn_x=update.cn_loc.x,
            cn_y=update.cn_loc.y,
        )
        table[update.entity_id] = member
        self._speed_sum += update.speed
        self.avespeed = self._speed_sum / count
        if not is_object and member.half_diag > self.max_query_half_diag:
            self.max_query_half_diag = member.half_diag
        covering = self.radius
        if count > 1:
            covering += math.hypot(shift_x, shift_y)
        dist = math.hypot(x - self.cx, y - self.cy)
        self.radius = covering if covering > dist else dist
        self._update_expiry(update.t)

    def remove(self, entity_id: int, kind: EntityKind) -> ClusterMember:
        """Remove a member (it re-clustered elsewhere or its stream ended)."""
        table = self.objects if kind is EntityKind.OBJECT else self.queries
        member = table.pop(entity_id)
        self.version += 1
        self.struct_version += 1
        self._speed_sum -= member.speed
        if member.position_shed:
            self.shed_count -= 1
        remaining = self.n
        if remaining:
            loc = self.member_location(member)
            if loc is not None:
                # Centroid was the mean including this member; re-balance.
                shift_x = (self.cx - loc.x) / remaining
                shift_y = (self.cy - loc.y) / remaining
                self.cx += shift_x
                self.cy += shift_y
                # Remaining members drifted outward by the shift length;
                # cover them (recompute_radius re-tightens later).
                self.radius += math.hypot(shift_x, shift_y)
            self.avespeed = self._speed_sum / remaining
            if kind is EntityKind.QUERY:
                self._recompute_query_reach()
        else:
            self.avespeed = 0.0
            self._speed_sum = 0.0
            self.max_query_half_diag = 0.0
        return member

    def adopt(self, member: ClusterMember) -> None:
        """Take a member wholesale during a split — no re-absorption.

        The caller (``split_cluster``) owns the derived-state rebuild via
        ``_finalise``; this only files the member and folds it into the
        running sums.  The adopting cluster starts with a zero translation
        vector and the member was flushed by the split, so its snapshot is
        reset to zero.
        """
        table = self.objects if member.kind is EntityKind.OBJECT else self.queries
        table[member.entity_id] = member
        member.tr_x = 0.0
        member.tr_y = 0.0
        if member.position_shed:
            self.shed_count += 1
        self._speed_sum += member.speed
        if member.kind is EntityKind.QUERY and member.half_diag > self.max_query_half_diag:
            self.max_query_half_diag = member.half_diag

    def discard(self, entity_id: int, kind: EntityKind) -> None:
        """Drop a member with *no* derived-state rebalance (split hand-off).

        Unlike :meth:`remove`, the member was already adopted elsewhere and
        this cluster is about to dissolve — nothing to keep consistent.
        """
        table = self.objects if kind is EntityKind.OBJECT else self.queries
        table.pop(entity_id, None)

    def _recompute_query_reach(self) -> None:
        self.max_query_half_diag = max(
            (q.half_diag for q in self.queries.values()), default=0.0
        )

    def recentre(self) -> None:
        """Move the centroid to the mean of current member positions.

        Per-tuple refreshes deliberately leave the centroid alone (see
        :meth:`absorb`), so between evaluations it drifts from the true
        member mean.  Post-join maintenance calls this once per interval —
        O(members), amortised over the whole interval's tuples.  Shed
        members have no position and are ignored; a fully-shed cluster
        keeps its velocity-advanced centroid, which is then its members'
        only approximation.
        """
        sum_x = 0.0
        sum_y = 0.0
        known = 0
        for member in self.members():
            if member.position_shed:
                continue
            sum_x += member.abs_x + (self.trans_x - member.tr_x)
            sum_y += member.abs_y + (self.trans_y - member.tr_y)
            known += 1
        if known:
            cx = sum_x / known
            cy = sum_y / known
            if cx != self.cx or cy != self.cy:
                self.version += 1
                self.cx = cx
                self.cy = cy

    def update_expiry(self, now: float) -> None:
        """Public per-interval expiry refresh (see :meth:`_update_expiry`)."""
        self._update_expiry(now)

    def recompute_radius(self) -> None:
        """Shrink the radius to the tightest bound on current members.

        The paper only ever grows the radius (Step 4); unchecked growth is
        the cluster "deterioration" it counters with expiry.  Maintenance
        calls this after joins so long-lived clusters stay compact.  Shed
        members have no position, so the nucleus radius is kept as their
        lower bound.
        """
        radius = min(self.nucleus_radius, self.radius) if self.shed_count else 0.0
        for member in self.members():
            loc = self.member_location(member)
            if loc is None:
                continue
            dist = math.hypot(loc.x - self.cx, loc.y - self.cy)
            if dist > radius:
                radius = dist
        if radius != self.radius:
            self.version += 1
            self.radius = radius

    # -- motion -----------------------------------------------------------------

    def velocity(self) -> Point:
        """Velocity vector: ``avespeed`` toward the destination node."""
        dx = self.cn_loc.x - self.cx
        dy = self.cn_loc.y - self.cy
        dist = math.hypot(dx, dy)
        if dist == 0.0 or self.avespeed == 0.0:
            return Point(0.0, 0.0)
        scale = self.avespeed / dist
        return Point(dx * scale, dy * scale)

    def advance(self, dt: float) -> None:
        """Translate the whole cluster ``dt`` time units along its velocity.

        Rigid translation: the displacement is added to the transformation
        vector, so members ride along without being touched.  Movement
        never overshoots the destination node — a cluster that would pass
        it is dissolved by maintenance instead (§4.2).
        """
        dx = self.cn_loc.x - self.cx
        dy = self.cn_loc.y - self.cy
        dist = math.hypot(dx, dy)
        step = self.avespeed * dt
        if dist == 0.0 or step <= 0.0:
            return
        frac = min(step / dist, 1.0)
        self.version += 1
        self.cx += dx * frac
        self.cy += dy * frac
        self.trans_x += dx * frac
        self.trans_y += dy * frac
        self.disp_x += dx * frac
        self.disp_y += dy * frac

    def advance_to(self, t: float) -> None:
        """Lazily advance the cluster along its velocity vector to time ``t``.

        Called on first touch each tick (and by maintenance for untouched
        clusters), so a cluster's centroid tracks its moving members at the
        cost of one :meth:`advance` per cluster per time unit — amortised
        over all of its members' updates, unlike per-update centroid
        re-balancing.
        """
        if t > self.last_moved:
            self.advance(t - self.last_moved)
            self.last_moved = t

    def distance_to_destination(self) -> float:
        return math.hypot(self.cn_loc.x - self.cx, self.cn_loc.y - self.cy)

    def _update_expiry(self, now: float) -> None:
        """Expiration = ETA at the destination connection node (§3.1)."""
        if self.avespeed > 0.0:
            self.exptime = now + self.distance_to_destination() / self.avespeed
        else:
            self.exptime = math.inf

    def has_expired(self, now: float) -> bool:
        return now >= self.exptime

    def will_pass_destination(self, dt: float) -> bool:
        """True when advancing ``dt`` would carry the cluster past cnloc."""
        return self.avespeed * dt >= self.distance_to_destination()

    def __repr__(self) -> str:
        return (
            f"MovingCluster(cid={self.cid}, centroid=({self.cx:.1f}, "
            f"{self.cy:.1f}), r={self.radius:.1f}, n={self.n} "
            f"[{len(self.objects)}o/{len(self.queries)}q], "
            f"v={self.avespeed:.1f}->cn{self.cn_node})"
        )
