"""Incremental (Leader-Follower) moving-cluster formation — paper §3.2.

Every incoming location update is assigned to a moving cluster immediately,
in one pass, using only the clusters already formed — no buffering of the
data set, no re-clustering when the evaluation interval expires.  The
algorithm is the paper's five-step adaptation of Leader-Follower
clustering:

1. probe the ClusterGrid around the update's position for candidate
   clusters;
2. no candidates → the entity forms its own single-member cluster;
3. otherwise test each candidate's three admission conditions — same
   destination connection node, centroid distance within ``Θ_D``, speed
   within ``Θ_S`` of the cluster average;
4. a qualifying cluster absorbs the entity (we pick the *nearest*
   qualifying cluster, a deterministic tie-break the paper leaves open);
5. no qualifying cluster → the entity forms its own cluster.

An entity that was already clustered is first re-validated against its
current cluster: if it still qualifies, the cluster simply refreshes its
state; if not (it diverged, or the cluster's destination changed), it is
evicted and re-clustered from step 1 — "objects and queries can enter or
leave a moving cluster at any time" (§3.1).
"""

from __future__ import annotations

import math
from typing import Optional

from ..generator import Update
from .cluster import MovingCluster
from .registry import ClusterWorld
from .thresholds import ClusteringSpec

__all__ = ["IncrementalClusterer"]


class IncrementalClusterer:
    """One-pass run-time clustering of moving objects and queries."""

    def __init__(self, world: ClusterWorld, spec: ClusteringSpec) -> None:
        self.world = world
        self.spec = spec
        #: Updates processed since construction (for throughput reporting).
        self.processed = 0
        #: How many updates re-used their previous cluster without probing.
        self.fast_path_hits = 0
        #: How many node-crossing updates joined a successor cluster via a
        #: split link, skipping the grid probe (splitting enabled only).
        self.split_joins = 0

    # -- public API -------------------------------------------------------------

    def ingest(self, update: Update) -> MovingCluster:
        """Assign ``update`` to a moving cluster; returns that cluster."""
        self.processed += 1
        world = self.world
        current_cid = world.home.cluster_of(update.entity_id, update.kind)
        previous: Optional[MovingCluster] = None
        crossed_node = False
        if current_cid is not None:
            current = world.storage.get(current_cid)
            # Track the moving members: advance the cluster to the update's
            # time before re-validating against its centroid.
            current.advance_to(update.t)
            if self._qualifies(update, current, ignore_self=True):
                # Fast path: the entity stays in its cluster.  Its home
                # entry is already correct, so absorb + grid refresh is all
                # that is needed — this is the per-update steady state.
                self.fast_path_hits += 1
                current.absorb(update)
                world.grid.refresh(current)
                return current
            crossed_node = update.cn_node != current.cn_node
            if crossed_node and self.spec.enable_splitting:
                successor = self._follow_successor(update, current)
                if successor is not None:
                    world.evict(current, update.entity_id, update.kind)
                    world.absorb(successor, update)
                    self.split_joins += 1
                    return successor
            world.evict(current, update.entity_id, update.kind)
            previous = current

        chosen = self._find_cluster(update)
        if chosen is None:
            chosen = world.create_cluster(
                centroid=update.loc,
                cn_node=update.cn_node,
                cn_loc=update.cn_loc,
                now=update.t,
            )
        world.absorb(chosen, update)
        if crossed_node and self.spec.enable_splitting and previous is not None:
            # Record the split: platoon mates crossing toward the same next
            # hop will join `chosen` directly.
            if previous.successors is None:
                previous.successors = {}
            previous.successors[update.cn_node] = chosen.cid
        return chosen

    # -- admission ---------------------------------------------------------------

    def _qualifies(
        self, update: Update, cluster: MovingCluster, ignore_self: bool = False
    ) -> bool:
        """The three conditions of §3.2 Step 3.

        ``ignore_self`` marks re-validation of an entity against its *own*
        cluster: a single-member cluster trivially keeps its entity (it is
        its own average), and multi-member clusters apply the spec's
        eviction slack so boundary members don't thrash in and out.
        """
        spec = self.spec
        if spec.require_same_destination and update.cn_node != cluster.cn_node:
            return False
        slack = 1.0
        if ignore_self:
            if len(cluster.objects) + len(cluster.queries) == 1:
                # Single-member cluster: the entity is its own average, so
                # the distance/speed tests compare it against itself.
                return True
            slack = spec.eviction_slack
        loc = update.loc
        dx = loc.x - cluster.cx
        dy = loc.y - cluster.cy
        max_d = spec.theta_d * slack
        if dx * dx + dy * dy > max_d * max_d:
            return False
        return abs(update.speed - cluster.avespeed) <= spec.theta_s * slack

    def _follow_successor(
        self, update: Update, current: MovingCluster
    ) -> Optional[MovingCluster]:
        """A still-valid successor cluster for this node crossing, if any."""
        if current.successors is None:
            return None
        succ_cid = current.successors.get(update.cn_node)
        if succ_cid is None or succ_cid not in self.world.storage:
            return None
        successor = self.world.storage.get(succ_cid)
        if successor.cn_node != update.cn_node:
            return None
        successor.advance_to(update.t)
        if self._qualifies(update, successor):
            return successor
        return None

    def _find_cluster(self, update: Update) -> Optional[MovingCluster]:
        """Steps 1 and 3: grid probe, then nearest qualifying candidate.

        Candidates are scanned in one pass straight off the grid cells with
        a ``(dist, cid)`` min-key — equivalent to the sort-by-cid +
        strictly-closer scan it replaces (ascending-cid iteration with a
        strict ``<`` keeps the lowest cid among distance ties, i.e. the
        lexicographic minimum) without materialising and sorting the
        candidate set per probe.
        """
        world = self.world
        spec = self.spec
        storage = world.storage
        grid = world.grid
        loc = update.loc
        best: Optional[MovingCluster] = None
        best_key: Optional[tuple] = None
        seen: set = set()
        for cell in grid.cells_for_circle(loc.x, loc.y, spec.theta_d):
            for cid in grid.members(cell):
                if cid in seen:
                    continue
                seen.add(cid)
                cluster = storage.get(cid)
                if spec.require_same_destination and (
                    update.cn_node != cluster.cn_node
                ):
                    continue
                cluster.advance_to(update.t)
                dist = math.hypot(loc.x - cluster.cx, loc.y - cluster.cy)
                if dist > spec.theta_d:
                    continue
                if abs(update.speed - cluster.avespeed) > spec.theta_s:
                    continue
                key = (dist, cid)
                if best_key is None or key < best_key:
                    best = cluster
                    best_key = key
        return best
