"""Cluster splitting at connection nodes.

When a moving cluster reaches its destination connection node, the paper
dissolves it and lets members re-cluster from scratch: "once a cluster
reaches its m.cnloc ... its members may change their spatio-temporal
properties significantly.  *Alternate options are possible here (e.g.,
splitting a moving cluster).  We plan to explore this as a part of our
future work*" (§3.1).  This module implements that future-work option.

At dissolution time most members have already crossed the node and
reported their *next* destination (stored per member on refresh).  Instead
of discarding all grouping knowledge, :func:`split_cluster` partitions the
members by their newly reported destination and spawns one **successor
cluster** per group that is still worth clustering (≥ 2 members with known
positions), transferring members wholesale — no grid probe, no candidate
search, no re-absorption churn.  Members without a viable group fall back
to the paper's behaviour: they are released and re-cluster through the
ordinary incremental path on their next update.

The effect is measured in ``benchmarks/bench_ablation.py``: splitting
reduces slow-path ingest work right after clusters reach intersections.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..geometry import Point
from .cluster import ClusterMember, MovingCluster
from .registry import ClusterWorld

__all__ = ["split_cluster"]


def split_cluster(
    world: ClusterWorld, cluster: MovingCluster, now: float
) -> List[MovingCluster]:
    """Split ``cluster`` into successors grouped by members' next destination.

    The original cluster is always removed from the world.  Members whose
    group is viable move into a successor; the rest are released (their
    next update re-clusters them).  Returns the successor clusters.
    """
    cluster.flush_transform()

    groups: Dict[int, List[ClusterMember]] = {}
    for member in cluster.members():
        groups.setdefault(member.cn_node, []).append(member)

    successors: List[MovingCluster] = []
    transferred: List[Tuple[ClusterMember, MovingCluster]] = []
    for cn_node in sorted(groups):
        members = groups[cn_node]
        if cn_node < 0 or cn_node == cluster.cn_node:
            # Unknown destination, or still heading to the node the cluster
            # is dissolving at: no forward knowledge to exploit.
            continue
        positioned = [m for m in members if not m.position_shed]
        if len(positioned) < 2:
            continue
        mean_x = sum(m.abs_x for m in positioned) / len(positioned)
        mean_y = sum(m.abs_y for m in positioned) / len(positioned)
        successor = world.create_cluster(
            centroid=Point(mean_x, mean_y),
            cn_node=cn_node,
            cn_loc=Point(positioned[0].cn_x, positioned[0].cn_y),
            now=now,
        )
        for member in members:
            # adopt() moves the member without re-absorption (the columnar
            # cluster copies the columns; the object cluster keeps the
            # instance and zeroes its translation snapshot).
            successor.adopt(member)
            transferred.append((member, successor))
        _finalise(successor, now)
        world.grid.refresh(successor)
        successors.append(successor)

    # Detach transferred members from the original before dissolving it, so
    # dissolution only releases the members that truly fall back to
    # re-clustering.
    for member, successor in transferred:
        cluster.discard(member.entity_id, member.kind)
        world.home.assign(member.entity_id, member.kind, successor.cid)
    world.dissolve(cluster)
    # dissolve() released every remaining home entry AND cleared the
    # original's tables; re-assert the transferred members' homes (their
    # keys were not in the original's tables any more, so they survived).
    for member, successor in transferred:
        world.home.assign(member.entity_id, member.kind, successor.cid)
    return successors


def _finalise(successor: MovingCluster, now: float) -> None:
    """Recompute derived state after bulk member transfer."""
    count = successor.n
    # Bulk transfer bypassed absorb(); invalidate any derived snapshots.
    successor.version += 1
    successor.struct_version += 1
    successor.avespeed = successor._speed_sum / count if count else 0.0
    radius = 0.0
    for member in successor.members():
        if member.position_shed:
            continue
        dist = math.hypot(member.abs_x - successor.cx, member.abs_y - successor.cy)
        if dist > radius:
            radius = dist
    successor.radius = radius
    successor.update_expiry(now)
    successor.last_moved = now
