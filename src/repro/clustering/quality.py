"""Cluster-quality metrics.

The paper's §6.4 trades off clustering *quality* against clustering *time*:
better (tighter) clusters make join-between more selective.  These metrics
quantify "tighter" so the incremental-vs-k-means experiment can report the
quality side of the trade-off, and so property tests can assert that the
incremental clusterer produces sane clusterings at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from .cluster import MovingCluster

__all__ = ["ClusteringQuality", "measure_quality"]


@dataclass(frozen=True)
class ClusteringQuality:
    """Summary statistics of one clustering."""

    cluster_count: int
    member_count: int
    #: Sum of squared member distances to their cluster centroid (SSQ) —
    #: the objective k-means minimises; lower is tighter.
    ssq: float
    #: Mean cluster radius over non-empty clusters.
    mean_radius: float
    #: Largest cluster radius.
    max_radius: float
    #: Fraction of clusters holding a single member (the degenerate case
    #: §3.2 warns about: pure overhead for SCUBA).
    singleton_fraction: float
    #: Mean members per cluster.
    mean_members: float

    def __str__(self) -> str:
        return (
            f"{self.cluster_count} clusters / {self.member_count} members | "
            f"SSQ {self.ssq:.1f} | mean r {self.mean_radius:.1f} | "
            f"singletons {self.singleton_fraction:.0%}"
        )


def measure_quality(clusters: Iterable[MovingCluster]) -> ClusteringQuality:
    """Compute :class:`ClusteringQuality` over ``clusters``.

    Members whose positions were load shed contribute to counts but not to
    SSQ (their true positions are unknown by construction).
    """
    cluster_list: List[MovingCluster] = list(clusters)
    member_count = 0
    ssq = 0.0
    radii: List[float] = []
    singletons = 0
    for cluster in cluster_list:
        member_count += cluster.n
        radii.append(cluster.radius)
        if cluster.n == 1:
            singletons += 1
        for member in cluster.members():
            loc = cluster.member_location(member)
            if loc is None:
                continue
            dx = loc.x - cluster.cx
            dy = loc.y - cluster.cy
            ssq += dx * dx + dy * dy
    count = len(cluster_list)
    return ClusteringQuality(
        cluster_count=count,
        member_count=member_count,
        ssq=ssq,
        mean_radius=math.fsum(radii) / count if count else 0.0,
        max_radius=max(radii, default=0.0),
        singleton_fraction=singletons / count if count else 0.0,
        mean_members=member_count / count if count else 0.0,
    )
