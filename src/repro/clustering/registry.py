"""SCUBA's cluster bookkeeping structures (paper §4.1).

Three of the five in-memory data structures the paper lists live here,
because the incremental clusterer is their primary writer:

* **ClusterStorage** — "stores the information (e.g., centroid, radius,
  member count, etc.) about moving clusters";
* **ClusterHome** — "a hash table that keeps track of the current
  relationships between objects, queries and their corresponding clusters"
  (a moving entity belongs to exactly one cluster at a time);
* **ClusterGrid** — "a spatial grid table dividing the data space into N×N
  grid cells [holding] for each grid cell a list of cluster ids of moving
  clusters that overlap with that cell".

:class:`ClusterWorld` is a thin facade bundling the three with the
operations that must touch them together (create, register, relocate,
dissolve), so the clusterer and SCUBA's post-join maintenance cannot get
them out of sync.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..generator import EntityKind
from ..geometry import Point, Rect
from ..index import SpatialGrid
from ..network import NodeId
from .cluster import MovingCluster

__all__ = ["ClusterStorage", "ClusterHome", "ClusterGrid", "ClusterWorld"]


class ClusterStorage:
    """All live moving clusters, by cluster id."""

    def __init__(self) -> None:
        self._clusters: Dict[int, MovingCluster] = {}
        self._next_cid = 0

    def allocate_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def add(self, cluster: MovingCluster) -> None:
        if cluster.cid in self._clusters:
            raise ValueError(f"duplicate cluster id {cluster.cid}")
        self._clusters[cluster.cid] = cluster

    def get(self, cid: int) -> MovingCluster:
        return self._clusters[cid]

    def pop(self, cid: int) -> MovingCluster:
        return self._clusters.pop(cid)

    def __contains__(self, cid: int) -> bool:
        return cid in self._clusters

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[MovingCluster]:
        return iter(self._clusters.values())

    def clusters(self) -> List[MovingCluster]:
        """Live clusters in cid order (deterministic iteration for tests)."""
        return [self._clusters[cid] for cid in sorted(self._clusters)]


class ClusterHome:
    """entity → cluster membership map.

    Keys are ``(entity_id, kind)`` pairs: the paper's table stores
    ``(ID, type, CID)`` rows precisely because object ids and query ids are
    independent sequences that may collide numerically.
    """

    def __init__(self) -> None:
        # Keyed by entity_id * 2 + is_object: a single small int per row
        # keeps the hot per-update lookups off the enum hashing path and
        # the table at one machine word per key.
        self._home: Dict[int, int] = {}

    def cluster_of(self, entity_id: int, kind: EntityKind) -> Optional[int]:
        return self._home.get(entity_id * 2 + (kind is EntityKind.OBJECT))

    def cluster_of_key(self, key: int) -> Optional[int]:
        """Lookup by pre-packed key (``entity_id * 2 + is_object``).

        The batched ingest path packs keys once per tick into columnar
        arrays; this entry point skips re-deriving them per lookup.
        """
        return self._home.get(key)

    def key_map(self) -> Dict[int, int]:
        """The key → cid table itself (treat as read-only).

        The batched grouping pass binds this dict's ``.get`` once per
        tick, turning the per-update home lookup into a bare dict probe.
        """
        return self._home

    def assign(self, entity_id: int, kind: EntityKind, cid: int) -> None:
        self._home[entity_id * 2 + (kind is EntityKind.OBJECT)] = cid

    def release(self, entity_id: int, kind: EntityKind) -> None:
        self._home.pop(entity_id * 2 + (kind is EntityKind.OBJECT), None)

    def __len__(self) -> int:
        return len(self._home)


class ClusterGrid(SpatialGrid):
    """A :class:`SpatialGrid` whose members are cluster ids.

    Clusters are registered in every cell a *slack-inflated* version of
    their footprint (:meth:`MovingCluster.filter_circle`) overlaps, so that
    any two clusters whose filter circles intersect are guaranteed to share
    at least one grid cell — the property the cell-by-cell join-between
    sweep relies on.

    The slack (half a cell) means a cluster that grows or drifts slightly
    stays covered by its existing registration; :meth:`refresh` then
    becomes a single containment check on the hot ingest path instead of a
    cell recomputation per location update.  Registration is therefore a
    *superset* of the exact footprint — harmless, because every candidate
    pair still passes through the exact join-between test.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # (center_x, center_y, inflated_radius) registered per cluster id.
        self._registered: Dict[int, Tuple[float, float, float]] = {}
        # (version, cx, cy, radius) at the last refresh that verified
        # containment: while those are unchanged the containment verdict
        # cannot have changed, so refresh is a guaranteed no-op.  Parked
        # convoys from ``--stopped-fraction`` heartbeat without moving,
        # turning their per-update refresh into a dict probe plus three
        # equality compares — no sqrt, no re-registration arithmetic.
        self._verified: Dict[int, Tuple[int, float, float, float]] = {}
        #: Refresh calls answered by the version early-out (diagnostics).
        self.refresh_skips = 0
        self._slack = 0.5 * min(
            self.bounds.width / self.nx, self.bounds.height / self.ny
        )

    def register(self, cluster: MovingCluster) -> None:
        cx, cy = cluster.cx, cluster.cy
        radius = cluster.radius + cluster.max_query_half_diag + self._slack
        cells = tuple(self.cells_for_circle(cx, cy, radius))
        self.insert(cluster.cid, cells)
        cluster.grid_cells = cells
        self._registered[cluster.cid] = (cx, cy, radius)
        self._verified[cluster.cid] = (
            cluster.version, cx, cy, cluster.radius
        )

    def refresh(self, cluster: MovingCluster) -> None:
        """Re-register if the footprint escaped its slack-inflated cover."""
        cid = cluster.cid
        if self._verified.get(cid) == (
            cluster.version, cluster.cx, cluster.cy, cluster.radius
        ):
            # Verified unchanged since the last containment check: the
            # covering cells are still a superset of the footprint.
            self.refresh_skips += 1
            return
        reg = self._registered.get(cid)
        if reg is not None:
            # Still inside the registered circle? Then the registered cells
            # cover every cell the exact footprint touches.  Runs for every
            # location update — plain float math, no temporaries.
            dx = cluster.cx - reg[0]
            dy = cluster.cy - reg[1]
            needed_r = cluster.radius + cluster.max_query_half_diag
            if (dx * dx + dy * dy) ** 0.5 + needed_r <= reg[2]:
                self._verified[cid] = (
                    cluster.version, cluster.cx, cluster.cy, cluster.radius
                )
                return
            self.remove(cid, cluster.grid_cells)
        self.register(cluster)

    def refresh_all(self, clusters) -> None:
        """Batched refresh: one eligibility pass, only escapees re-check.

        The columnar maintenance engine defers survivors' grid refreshes
        to a single pass after the whole maintenance loop.  Hoisting the
        verified-snapshot probe here keeps the common all-parked tick to
        one dict probe + tuple compare per cluster with a single counter
        update at the end.
        """
        verified = self._verified
        skipped = 0
        for cluster in clusters:
            if verified.get(cluster.cid) == (
                cluster.version, cluster.cx, cluster.cy, cluster.radius
            ):
                skipped += 1
            else:
                self.refresh(cluster)
        self.refresh_skips += skipped

    def unregister(self, cluster: MovingCluster) -> None:
        self.remove(cluster.cid, cluster.grid_cells)
        cluster.grid_cells = ()
        self._registered.pop(cluster.cid, None)
        self._verified.pop(cluster.cid, None)


class ClusterWorld:
    """Facade keeping storage, home and grid mutually consistent."""

    def __init__(
        self, bounds: Rect, grid_size: int, cluster_factory=None
    ) -> None:
        self.storage = ClusterStorage()
        self.home = ClusterHome()
        self.grid = ClusterGrid(bounds, grid_size)
        #: Optional ``(cid, centroid, cn_node, cn_loc, now) -> MovingCluster``
        #: constructor override; the columnar subsystem installs one so
        #: every cluster (including split successors) is column-backed.
        self.cluster_factory = cluster_factory
        #: Optional callable invoked with the target cluster right before
        #: a membership mutation (absorb/evict).  The batched ingest
        #: kernel installs it for the duration of one tick's walk so
        #: slow-path rows that touch a cluster with uncommitted batched
        #: rows first flush those rows in arrival order — keeping the
        #: mutation sequence identical to the scalar loop.  Always
        #: ``None`` outside a batched walk (and never pickled set).
        self.pre_absorb_hook = None

    # -- lifecycle -----------------------------------------------------------

    def create_cluster(
        self, centroid: Point, cn_node: NodeId, cn_loc: Point, now: float
    ) -> MovingCluster:
        """A fresh single-member-to-be cluster centred at ``centroid``."""
        factory = self.cluster_factory
        if factory is not None:
            cluster = factory(
                self.storage.allocate_cid(), centroid, cn_node, cn_loc, now
            )
        else:
            cluster = MovingCluster(
                cid=self.storage.allocate_cid(),
                centroid=centroid,
                cn_node=cn_node,
                cn_loc=cn_loc,
                now=now,
            )
        self.storage.add(cluster)
        self.grid.register(cluster)
        return cluster

    def dissolve(self, cluster: MovingCluster) -> None:
        """Remove a cluster and every trace of its membership."""
        for member in list(cluster.members()):
            self.home.release(member.entity_id, member.kind)
        cluster.objects.clear()
        cluster.queries.clear()
        self.grid.unregister(cluster)
        self.storage.pop(cluster.cid)

    # -- membership ----------------------------------------------------------

    def absorb(self, cluster: MovingCluster, update) -> None:
        """Absorb ``update`` into ``cluster`` and keep home/grid in sync."""
        hook = self.pre_absorb_hook
        if hook is not None:
            hook(cluster)
        cluster.absorb(update)
        self.home.assign(update.entity_id, update.kind, cluster.cid)
        self.grid.refresh(cluster)

    def evict(self, cluster: MovingCluster, entity_id: int, kind: EntityKind) -> None:
        """Remove one member; dissolve the cluster if it becomes empty."""
        hook = self.pre_absorb_hook
        if hook is not None:
            hook(cluster)
        cluster.remove(entity_id, kind)
        self.home.release(entity_id, kind)
        if cluster.is_empty:
            self.grid.unregister(cluster)
            self.storage.pop(cluster.cid)
        else:
            self.grid.refresh(cluster)

    @property
    def cluster_count(self) -> int:
        return len(self.storage)

    def __repr__(self) -> str:
        return (
            f"ClusterWorld({self.cluster_count} clusters, "
            f"{len(self.home)} homed entities)"
        )
