"""Offline k-means clustering — the paper's non-incremental baseline (§6.4).

The paper asks whether the better cluster quality of offline clustering
(all points available, multiple refinement iterations) buys enough join
speed-up to pay for the clustering delay, and answers no.  To reproduce the
experiment we implement the same extension: Lloyd's k-means over the latest
position of every entity, with

* **k estimated from the number of unique destinations** among the entities
  ("we used a tracking counter for the number of unique destinations of
  objects and queries for a rough estimate of the number of clusters"), and
* a configurable **iteration count** (the paper varies 1–10).

The output is a list of ordinary :class:`MovingCluster` objects so the rest
of SCUBA (join-between/join-within, maintenance) runs unchanged on offline
clusters.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ..generator import Update
from ..geometry import Point
from .cluster import MovingCluster

__all__ = ["KMeansClusterer"]


class KMeansClusterer:
    """Lloyd's algorithm over a batch of location updates."""

    def __init__(self, iterations: int = 5) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations

    def estimate_k(self, updates: Sequence[Update]) -> int:
        """Number of unique destination connection nodes in the batch."""
        return len({u.cn_node for u in updates})

    def cluster(self, updates: Sequence[Update], next_cid: int = 0) -> List[MovingCluster]:
        """Cluster a batch of updates into moving clusters.

        ``updates`` should hold one (latest) update per entity.  Returns
        clusters with ids starting at ``next_cid``; empty input yields an
        empty list.
        """
        if not updates:
            return []
        k = min(self.estimate_k(updates), len(updates))
        centers = self._initial_centers(updates, k)
        assignment: List[int] = [0] * len(updates)
        for _ in range(self.iterations):
            changed = self._assign(updates, centers, assignment)
            centers = self._recompute_centers(updates, assignment, centers)
            if not changed:
                break
        return self._build_clusters(updates, assignment, len(centers), next_cid)

    # -- Lloyd steps -----------------------------------------------------------

    def _initial_centers(
        self, updates: Sequence[Update], k: int
    ) -> List[Tuple[float, float]]:
        """Deterministic seeding: first update seen per unique destination.

        Seeding by destination mirrors the k-estimate and spreads initial
        centers across the traffic flows rather than uniformly in space.
        """
        centers: List[Tuple[float, float]] = []
        seen_destinations = set()
        for update in updates:
            if update.cn_node not in seen_destinations:
                seen_destinations.add(update.cn_node)
                centers.append((update.loc.x, update.loc.y))
                if len(centers) == k:
                    break
        return centers

    def _assign(
        self,
        updates: Sequence[Update],
        centers: List[Tuple[float, float]],
        assignment: List[int],
    ) -> bool:
        changed = False
        for i, update in enumerate(updates):
            x, y = update.loc.x, update.loc.y
            best = 0
            best_d = math.inf
            for j, (cx, cy) in enumerate(centers):
                d = (x - cx) ** 2 + (y - cy) ** 2
                if d < best_d:
                    best_d = d
                    best = j
            if assignment[i] != best:
                assignment[i] = best
                changed = True
        return changed

    def _recompute_centers(
        self,
        updates: Sequence[Update],
        assignment: List[int],
        centers: List[Tuple[float, float]],
    ) -> List[Tuple[float, float]]:
        sums: Dict[int, Tuple[float, float, int]] = {}
        for i, update in enumerate(updates):
            j = assignment[i]
            sx, sy, n = sums.get(j, (0.0, 0.0, 0))
            sums[j] = (sx + update.loc.x, sy + update.loc.y, n + 1)
        new_centers = list(centers)
        for j, (sx, sy, n) in sums.items():
            new_centers[j] = (sx / n, sy / n)
        return new_centers

    # -- materialisation ----------------------------------------------------------

    def _build_clusters(
        self,
        updates: Sequence[Update],
        assignment: List[int],
        k: int,
        next_cid: int,
    ) -> List[MovingCluster]:
        """Materialise final assignments as :class:`MovingCluster` objects.

        Cluster metadata the assignment step ignores (destination node,
        average speed, radius) is reconstructed from the members: the
        destination is the members' majority ``cnloc``, speed and radius
        fall out of the ordinary ``absorb`` path.
        """
        groups: Dict[int, List[Update]] = {}
        for i, update in enumerate(updates):
            groups.setdefault(assignment[i], []).append(update)
        clusters: List[MovingCluster] = []
        cid = next_cid
        for j in sorted(groups):
            members = groups[j]
            majority_cn = Counter(u.cn_node for u in members).most_common(1)[0][0]
            cn_loc = next(u.cn_loc for u in members if u.cn_node == majority_cn)
            now = max(u.t for u in members)
            cluster = MovingCluster(
                cid=cid,
                centroid=Point(members[0].loc.x, members[0].loc.y),
                cn_node=majority_cn,
                cn_loc=cn_loc,
                now=now,
            )
            for update in members:
                cluster.absorb(update)
            cluster.flush_transform()
            clusters.append(cluster)
            cid += 1
        return clusters
