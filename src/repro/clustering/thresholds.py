"""Clustering thresholds (paper §3.1).

Two thresholds keep moving clusters compact and long-lived:

* the **distance threshold** ``Θ_D`` guarantees clustered entities are close
  to each other at clustering time, and
* the **speed threshold** ``Θ_S`` assures they will *stay* close for some
  time in the future.

A third predicate — identical destination connection node — supplies the
"direction of movement" condition.  It is configurable (``require_same_
destination``) solely so the ablation benchmark can demonstrate what breaks
without it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusteringSpec"]


@dataclass(frozen=True)
class ClusteringSpec:
    """Admission rules for moving clusters.

    Defaults are the paper's experimental settings (§6.1): ``Θ_D = 100``
    spatial units and ``Θ_S = 10`` spatial units per time unit.
    """

    #: Θ_D — maximum distance from the cluster centroid at admission.
    theta_d: float = 100.0
    #: Θ_S — maximum |entity speed − cluster average speed| at admission.
    theta_s: float = 10.0
    #: Whether members must share the cluster's destination connection node.
    require_same_destination: bool = True
    #: Hysteresis for membership re-validation: an existing member is only
    #: evicted once it drifts past ``eviction_slack × Θ_D`` (and the speed
    #: band widens the same way).  Admission always uses the strict
    #: thresholds.  Without slack, members sitting at the Θ_D boundary
    #: oscillate between eviction and re-admission every update, churning
    #: the ingest path for no quality gain.  Set to 1.0 for the paper's
    #: literal (slack-free) behaviour.
    eviction_slack: float = 1.25
    #: Cluster *splitting* (paper §3.1 future work): when a member crosses
    #: its connection node and leaves its cluster, remember which cluster
    #: it moved to, keyed by the new destination.  Members of the same
    #: platoon peeling off toward the same next hop then join that
    #: successor directly — no grid probe, no candidate search.
    enable_splitting: bool = False

    def __post_init__(self) -> None:
        if self.theta_d < 0:
            raise ValueError(f"theta_d must be non-negative, got {self.theta_d}")
        if self.theta_s < 0:
            raise ValueError(f"theta_s must be non-negative, got {self.theta_s}")
        if self.eviction_slack < 1.0:
            raise ValueError(
                f"eviction_slack must be >= 1.0, got {self.eviction_slack}"
            )

    def admits(
        self,
        distance_to_centroid: float,
        speed_delta: float,
        same_destination: bool,
    ) -> bool:
        """The three admission conditions of paper §3.2 Step 3."""
        if self.require_same_destination and not same_destination:
            return False
        return distance_to_centroid <= self.theta_d and abs(speed_delta) <= self.theta_s
