"""Moving-cluster framework (paper §3).

Moving clusters, the incremental Leader-Follower clusterer that forms them
at run time, the offline k-means baseline of §6.4, the bookkeeping tables
(ClusterStorage / ClusterHome / ClusterGrid), and quality metrics.
"""

from .cluster import ClusterMember, MovingCluster
from .incremental import IncrementalClusterer
from .kmeans import KMeansClusterer
from .quality import ClusteringQuality, measure_quality
from .registry import ClusterGrid, ClusterHome, ClusterStorage, ClusterWorld
from .splitting import split_cluster
from .thresholds import ClusteringSpec

__all__ = [
    "ClusterGrid",
    "ClusterHome",
    "ClusterMember",
    "ClusterStorage",
    "ClusterWorld",
    "ClusteringQuality",
    "ClusteringSpec",
    "IncrementalClusterer",
    "KMeansClusterer",
    "MovingCluster",
    "measure_quality",
    "split_cluster",
]
