"""Line segments: the geometry of road-network edges.

Objects in the paper's motion model (§2) move *piecewise linearly* along
roads.  Each road edge is a straight segment between two connection nodes;
an object's position is always a point on some segment, parameterised by the
distance travelled from the segment's start.
"""

from __future__ import annotations

from .point import Point

__all__ = ["Segment"]


class Segment:
    """A directed straight segment from ``start`` to ``end``."""

    __slots__ = ("start", "end", "_length")

    def __init__(self, start: Point, end: Point) -> None:
        self.start = start
        self.end = end
        self._length = start.distance_to(end)

    @property
    def length(self) -> float:
        """Euclidean length (cached at construction)."""
        return self._length

    def __repr__(self) -> str:
        return f"Segment({self.start!r} -> {self.end!r})"

    def point_at(self, offset: float) -> Point:
        """Point at ``offset`` spatial units from ``start`` along the segment.

        ``offset`` is clamped to ``[0, length]`` so callers that overshoot a
        connection node by a fraction of a unit (floating-point drift when an
        object arrives) still get a position on the road.
        """
        if self._length == 0.0:
            return self.start
        t = min(max(offset / self._length, 0.0), 1.0)
        return Point(
            self.start.x + (self.end.x - self.start.x) * t,
            self.start.y + (self.end.y - self.start.y) * t,
        )

    def point_at_fraction(self, t: float) -> Point:
        """Point at parameter ``t`` in ``[0, 1]`` along the segment."""
        if not 0.0 <= t <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {t}")
        return Point(
            self.start.x + (self.end.x - self.start.x) * t,
            self.start.y + (self.end.y - self.start.y) * t,
        )

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.end, self.start)

    def distance_to_point(self, p: Point) -> float:
        """Shortest distance from ``p`` to any point on the segment."""
        if self._length == 0.0:
            return self.start.distance_to(p)
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        t = ((p.x - self.start.x) * dx + (p.y - self.start.y) * dy) / (
            self._length * self._length
        )
        t = min(max(t, 0.0), 1.0)
        return Point(self.start.x + dx * t, self.start.y + dy * t).distance_to(p)
