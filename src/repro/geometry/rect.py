"""Axis-aligned rectangles.

Rectangles appear in two roles:

* the **spatial region of a range query** — a window of configurable width
  and height centred on the (moving) query point, exactly the "size of the
  range query" attribute the paper stores in ``q.attrs``; and
* the **world bounds** that the :class:`~repro.core.grid.SpatialGrid`
  partitions into N×N cells.
"""

from __future__ import annotations

from .circle import Circle
from .point import Point

__all__ = ["Rect"]


class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]``."""

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float) -> None:
        if max_x < min_x or max_y < min_y:
            raise ValueError(
                f"degenerate rectangle: ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    @classmethod
    def centered(cls, center: Point, width: float, height: float) -> "Rect":
        """Rectangle of ``width × height`` centred on ``center``.

        This is the footprint of a continuous range query whose focal point
        is the query's current location.
        """
        hw = width / 2.0
        hh = height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    # -- accessors ----------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    def __repr__(self) -> str:
        return (
            f"Rect({self.min_x:g}, {self.min_y:g}, {self.max_x:g}, {self.max_y:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.min_x == other.min_x
            and self.min_y == other.min_y
            and self.max_x == other.max_x
            and self.max_y == other.max_y
        )

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.max_x, self.max_y))

    # -- predicates ----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_xy(self, x: float, y: float) -> bool:
        """Allocation-free form of :meth:`contains_point`."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersects_circle(self, circle: Circle) -> bool:
        """True when the rectangle and the closed disc share a point.

        Used when probing which grid region a cluster's circular footprint
        overlaps, and for range-query vs. nucleus intersection under
        partial load shedding.
        """
        # Closest point on the rectangle to the circle center.
        cx = min(max(circle.center.x, self.min_x), self.max_x)
        cy = min(max(circle.center.y, self.min_y), self.max_y)
        dx = circle.center.x - cx
        dy = circle.center.y - cy
        return dx * dx + dy * dy <= circle.radius * circle.radius

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def clamp_point(self, p: Point) -> Point:
        """Nearest point inside the rectangle to ``p``."""
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side (Minkowski sum)."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
