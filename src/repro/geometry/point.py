"""Planar points and vectors.

Every spatial value in the SCUBA reproduction — object locations, query
locations, cluster centroids, connection-node positions — is a point in a
two-dimensional Euclidean plane measured in abstract *spatial units* (the
paper's terminology).  ``Point`` is deliberately tiny: two float slots plus
the handful of operations the rest of the system needs.  Hot loops that join
thousands of entities per interval avoid allocating points entirely and work
on raw ``(x, y)`` floats via the module-level helpers below.
"""

from __future__ import annotations

import math
from typing import Iterator

__all__ = [
    "Point",
    "Vector",
    "distance",
    "distance_sq",
    "midpoint",
]


class Point:
    """An immutable point (or displacement) in the plane.

    ``Point`` doubles as a 2-D vector: subtraction of two points yields the
    displacement between them, and points can be translated by adding a
    displacement.  This mirrors how the paper treats cluster *velocity
    vectors* and *transformation vectors* — both are just points used as
    offsets.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    def __reduce__(self):
        # The immutability guard breaks the default slot-state unpickling
        # path; rebuilding through the constructor keeps points (and every
        # update record carrying them) picklable for process-based shard
        # executors.
        return (Point, (self.x, self.y))

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __repr__(self) -> str:
        return f"Point({self.x:g}, {self.y:g})"

    # -- geometry -----------------------------------------------------------

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Point") -> float:
        """Squared Euclidean distance; avoids the sqrt in filter tests."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def norm(self) -> float:
        """Length of this point interpreted as a vector from the origin."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        """Unit vector in this direction.

        Raises :class:`ValueError` for the zero vector, which has no
        direction — callers deciding a cluster's heading must special-case
        a cluster that is already at its destination.
        """
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """Approximate equality within absolute tolerance ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol


# ``Vector`` is an alias: displacements and positions share representation.
Vector = Point


def distance(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between raw coordinate pairs (allocation-free)."""
    return math.hypot(ax - bx, ay - by)


def distance_sq(ax: float, ay: float, bx: float, by: float) -> float:
    """Squared Euclidean distance between raw coordinate pairs."""
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Point halfway between ``a`` and ``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
