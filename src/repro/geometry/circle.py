"""Circles: the spatial footprint of a moving cluster.

A moving cluster is summarised by a circular region — centroid plus radius —
and SCUBA's *join-between* step (paper Algorithm 2) is nothing more than an
overlap test between two such circles.

.. note::
   The paper's pseudocode tests ``dist² < (R_L − R_R)²``, which is the
   condition for one circle to lie *inside* the other, not for overlap.
   Every prose description and the worked example in Fig. 7 use overlap
   semantics (clusters must be joined whenever their regions intersect, or
   results would silently be lost), so we implement the evidently intended
   test ``dist² ≤ (R_L + R_R)²`` and expose the containment predicate
   separately.
"""

from __future__ import annotations

from .point import Point

__all__ = ["Circle", "circles_overlap"]


class Circle:
    """A circle with ``center`` and non-negative ``radius``."""

    __slots__ = ("center", "radius")

    def __init__(self, center: Point, radius: float) -> None:
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.center = center
        self.radius = float(radius)

    def __repr__(self) -> str:
        return f"Circle(center={self.center!r}, radius={self.radius:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circle):
            return NotImplemented
        return self.center == other.center and self.radius == other.radius

    def __hash__(self) -> int:
        return hash((self.center, self.radius))

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary of the circle."""
        return self.center.distance_sq_to(p) <= self.radius * self.radius

    def overlaps(self, other: "Circle") -> bool:
        """True when the two closed discs share at least one point."""
        reach = self.radius + other.radius
        return self.center.distance_sq_to(other.center) <= reach * reach

    def contains_circle(self, other: "Circle") -> bool:
        """True when ``other`` lies entirely inside this circle.

        This is the literal reading of the paper's Algorithm 2 pseudocode;
        it is provided for completeness and for the ablation benchmark that
        demonstrates why it cannot serve as the join-between filter.
        """
        if other.radius > self.radius:
            return False
        slack = self.radius - other.radius
        return self.center.distance_sq_to(other.center) <= slack * slack

    def expanded(self, margin: float) -> "Circle":
        """A concentric circle whose radius is larger by ``margin``."""
        return Circle(self.center, self.radius + margin)


def circles_overlap(
    ax: float, ay: float, ar: float, bx: float, by: float, br: float
) -> bool:
    """Allocation-free disc overlap test on raw coordinates.

    This is the hot-path form of :meth:`Circle.overlaps`, used by the
    join-between step which runs for every candidate cluster pair in every
    execution interval.
    """
    dx = ax - bx
    dy = ay - by
    reach = ar + br
    return dx * dx + dy * dy <= reach * reach
