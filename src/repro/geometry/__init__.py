"""Geometry kernel for the SCUBA reproduction.

All spatial reasoning in the system — cluster footprints, range-query
windows, road edges, relative member positions — is built from the five
primitives exported here.  The module is dependency-free (standard library
only) and keeps allocation-free raw-coordinate helpers alongside the object
API for the hot join paths.
"""

from .circle import Circle, circles_overlap
from .point import Point, Vector, distance, distance_sq, midpoint
from .polar import PolarCoord, to_cartesian, to_polar
from .rect import Rect
from .segment import Segment

__all__ = [
    "Circle",
    "Point",
    "PolarCoord",
    "Rect",
    "Segment",
    "Vector",
    "circles_overlap",
    "distance",
    "distance_sq",
    "midpoint",
    "to_cartesian",
    "to_polar",
]
