"""Polar coordinates for cluster-relative member positions.

SCUBA stores the position of every object and query inside a moving cluster
*relative* to the cluster centroid, as polar coordinates ``(r, theta)`` with
the pole at the centroid (paper §3.1).  ``r`` is the radial distance from the
centroid and ``theta`` the counterclockwise angle from the positive x-axis.

Storing relative positions lets the whole cluster translate rigidly (the
common case between execution intervals) without touching any member, and it
makes the paper's load-shedding policy natural: a member whose ``r`` falls
inside the nucleus radius can have its coordinates discarded outright.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from .point import Point

__all__ = ["PolarCoord", "to_polar", "to_cartesian"]


class PolarCoord(NamedTuple):
    """A polar coordinate pair ``(r, theta)``.

    ``theta`` is normalised to ``[0, 2*pi)`` by :func:`to_polar`; the origin
    (``r == 0``) is represented with ``theta == 0``.
    """

    r: float
    theta: float

    def to_point(self, pole: Point) -> Point:
        """Absolute position of this coordinate given the ``pole``."""
        return Point(
            pole.x + self.r * math.cos(self.theta),
            pole.y + self.r * math.sin(self.theta),
        )


_TWO_PI = 2.0 * math.pi


def to_polar(p: Point, pole: Point) -> PolarCoord:
    """Polar coordinates of point ``p`` with respect to ``pole``.

    The returned angle lies in ``[0, 2*pi)`` so that coordinates have a
    single canonical representation (useful for equality in tests).
    """
    dx = p.x - pole.x
    dy = p.y - pole.y
    r = math.hypot(dx, dy)
    if r == 0.0:
        return PolarCoord(0.0, 0.0)
    theta = math.atan2(dy, dx)
    if theta < 0.0:
        theta += _TWO_PI
    return PolarCoord(r, theta)


def to_cartesian(coord: PolarCoord, pole: Point) -> Point:
    """Inverse of :func:`to_polar`: absolute position of ``coord``."""
    return coord.to_point(pole)
