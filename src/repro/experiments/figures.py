"""Per-figure experiment harnesses (paper §6).

One function per figure/table of the paper's evaluation.  Each returns a
:class:`FigureResult` — a titled list of rows — that the benchmark suite
asserts shapes on and ``python -m repro.experiments`` pretty-prints.

The paper ran 10,000 objects + 10,000 queries on a 2.4 GHz Xeon; a pure
Python reproduction sweeps many configurations, so every harness takes a
``scale`` factor (default from ``SCUBA_BENCH_SCALE``, see
:func:`~repro.experiments.workloads.bench_scale`).  Absolute seconds differ
from the paper; the *shapes* — who wins, where the crossover falls — are
what EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..clustering import KMeansClusterer
from ..core import RegularConfig, RegularGridJoin, Scuba, ScubaConfig
from ..generator import Update
from ..shedding import compare_results, policy_for_eta
from ..streams import CollectingSink
from .runner import run_experiment
from .workloads import WorkloadSpec, bench_scale, build_workload

__all__ = [
    "FigureResult",
    "fig09_grid_size",
    "fig10_skew",
    "fig11_clustering",
    "fig12_maintenance",
    "fig13_load_shedding",
    "format_table",
    "ALL_FIGURES",
]

#: Evaluation intervals per configuration.  Small by design: each interval
#: already aggregates Δ ticks of the full population.
DEFAULT_INTERVALS = 3


@dataclass
class FigureResult:
    """A reproduced figure: title, column names, data rows."""

    figure: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def column_values(self, column: str) -> List[object]:
        return [row[column] for row in self.rows]


def format_table(result: FigureResult) -> str:
    """Fixed-width text rendering of a figure result."""
    widths = {
        col: max(len(col), *(len(_fmt(row[col])) for row in result.rows))
        if result.rows
        else len(col)
        for col in result.columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in result.columns)
    rule = "-" * len(header)
    lines = [f"{result.figure}: {result.title}", rule, header, rule]
    for row in result.rows:
        lines.append(
            "  ".join(_fmt(row[col]).ljust(widths[col]) for col in result.columns)
        )
    lines.append(rule)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


# ---------------------------------------------------------------------------
# Figure 9 — varying grid cell size (join time + memory)
# ---------------------------------------------------------------------------

GRID_SIZES: Sequence[int] = (50, 75, 100, 125, 150)


def fig09_grid_size(
    scale: Optional[float] = None,
    intervals: int = DEFAULT_INTERVALS,
    grid_sizes: Sequence[int] = GRID_SIZES,
) -> FigureResult:
    """Fig. 9a/9b: REGULAR vs SCUBA across ClusterGrid granularities.

    Join times are reported per the paper's accounting — the regular
    operator's cost of a cycle is hashing every individual update plus the
    cell-by-cell join ("most [solutions] still process and materialize
    every location update individually"), while SCUBA's clustering work is
    accounted as maintenance (Fig. 12) and its join is the cluster join.

    Memory is reported two ways: estimated resident bytes of each
    operator's state, and the *grid directory size* (entries across all
    cells) — the quantity the paper's §6.2 argument is really about: "only
    one entry per cluster (which aggregates several objects and queries)
    needs to be made in a grid cell vs. having an individual entry for
    each object and query".
    """
    scale = bench_scale() if scale is None else scale
    spec = WorkloadSpec().scaled(scale)
    result = FigureResult(
        figure="fig09",
        title="Varying grid size (join time, memory)",
        columns=[
            "grid",
            "regular_join_s",
            "scuba_join_s",
            "regular_memory_mb",
            "scuba_memory_mb",
            "regular_grid_entries",
            "scuba_grid_entries",
        ],
    )
    for grid_size in grid_sizes:
        regular_op = RegularGridJoin(RegularConfig(grid_size=grid_size))
        regular = run_experiment(
            spec, regular_op, intervals=intervals, label=f"regular-{grid_size}"
        )
        scuba_op = Scuba(ScubaConfig(grid_size=grid_size))
        scuba = run_experiment(
            spec, scuba_op, intervals=intervals, label=f"scuba-{grid_size}"
        )
        result.rows.append(
            {
                "grid": f"{grid_size}x{grid_size}",
                "regular_join_s": regular.ingest_seconds + regular.join_seconds,
                "scuba_join_s": scuba.join_seconds,
                "regular_memory_mb": regular.memory_mb,
                "scuba_memory_mb": scuba.memory_mb,
                "regular_grid_entries": regular_op.object_grid.entry_count
                + regular_op.query_grid.entry_count,
                "scuba_grid_entries": scuba_op.world.grid.entry_count,
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figure 10 — varying skew (clusterability)
# ---------------------------------------------------------------------------

SKEW_FACTORS: Sequence[int] = (1, 10, 20, 50, 100, 200)


def fig10_skew(
    scale: Optional[float] = None,
    intervals: int = DEFAULT_INTERVALS,
    skews: Sequence[int] = SKEW_FACTORS,
) -> FigureResult:
    """Fig. 10: join time as entities become more/less clusterable.

    Expected shape: at skew = 1 SCUBA pays single-member-cluster overhead;
    as skew grows, entities aggregate into ever fewer clusters and SCUBA's
    join time collapses.  ``regular_join_s`` uses the paper's accounting
    (individual per-update processing + cell join, see
    :func:`fig09_grid_size`); both join-phase-only columns are included so
    the effect of the accounting is visible.
    """
    scale = bench_scale() if scale is None else scale
    result = FigureResult(
        figure="fig10",
        title="Join time with skew factor",
        columns=[
            "skew",
            "regular_join_s",
            "scuba_join_s",
            "regular_join_only_s",
            "scuba_clusters",
            "results",
        ],
    )
    for skew in skews:
        spec = replace(WorkloadSpec(), skew=skew).scaled(scale)
        regular = run_experiment(
            spec,
            RegularGridJoin(),
            intervals=intervals,
            label=f"regular-skew{skew}",
        )
        scuba = run_experiment(
            spec, Scuba(), intervals=intervals, label=f"scuba-skew{skew}"
        )
        result.rows.append(
            {
                "skew": skew,
                "regular_join_s": regular.ingest_seconds + regular.join_seconds,
                "scuba_join_s": scuba.join_seconds,
                "regular_join_only_s": regular.join_seconds,
                "scuba_clusters": scuba.cluster_count,
                "results": scuba.result_count,
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figure 11 — incremental vs non-incremental (k-means) clustering
# ---------------------------------------------------------------------------

KMEANS_ITERATIONS: Sequence[int] = (1, 3, 5, 10)


def fig11_clustering(
    scale: Optional[float] = None,
    intervals: int = DEFAULT_INTERVALS,
    kmeans_iterations: Sequence[int] = KMEANS_ITERATIONS,
) -> FigureResult:
    """Fig. 11: combined clustering + join cost, incremental vs k-means.

    Incremental clustering happens while tuples arrive, so its bar is join
    time alone ("the join processing starts immediately when Δ expires");
    offline k-means must cluster first, so its bar stacks clustering time
    on top of join time.  Expected shape: every k-means variant's total
    exceeds the incremental total, and from ~3 iterations the clustering
    time alone dominates its join time.
    """
    scale = bench_scale() if scale is None else scale
    spec = WorkloadSpec().scaled(scale)
    result = FigureResult(
        figure="fig11",
        title="Incremental vs non-incremental clustering",
        columns=["variant", "clustering_s", "join_s", "total_s"],
    )

    incremental = run_experiment(
        spec, Scuba(), intervals=intervals, label="incremental"
    )
    result.rows.append(
        {
            "variant": "incremental",
            "clustering_s": 0.0,
            "join_s": incremental.join_seconds,
            "total_s": incremental.join_seconds,
        }
    )

    for iterations in kmeans_iterations:
        clustering_s, join_s = _offline_kmeans_run(spec, iterations, intervals)
        result.rows.append(
            {
                "variant": f"kmeans-iter{iterations}",
                "clustering_s": clustering_s,
                "join_s": join_s,
                "total_s": clustering_s + join_s,
            }
        )
    return result


def _offline_kmeans_run(
    spec: WorkloadSpec, iterations: int, intervals: int, delta: float = 2.0
) -> tuple:
    """Clustering and join seconds for the offline (k-means) variant.

    Mirrors the paper's §6.4 protocol: tuples accumulate for Δ time units;
    when the interval expires the *entire* current data set is clustered
    from scratch by k-means, the clusters are loaded into a SCUBA operator,
    and the ordinary cluster-based joining phase runs.
    """
    _network, generator = build_workload(spec)
    kmeans = KMeansClusterer(iterations=iterations)
    clustering_seconds = 0.0
    join_seconds = 0.0
    latest: Dict[tuple, Update] = {}
    ticks = round(delta)
    for _interval in range(intervals):
        for _ in range(ticks):
            for update in generator.tick(1.0):
                latest[(update.kind, update.entity_id)] = update
        now = generator.time
        batch = list(latest.values())
        started = time.perf_counter()
        clusters = kmeans.cluster(batch)
        clustering_seconds += time.perf_counter() - started

        operator = Scuba()
        for cluster in clusters:
            operator.world.storage.add(cluster)
            operator.world.grid.register(cluster)
        matches: List = []
        started = time.perf_counter()
        operator._joining_phase(now, matches)
        join_seconds += time.perf_counter() - started
    return clustering_seconds, join_seconds


# ---------------------------------------------------------------------------
# Figure 12 — cluster maintenance cost
# ---------------------------------------------------------------------------

MAINTENANCE_SKEWS: Sequence[int] = (40, 20, 10, 4)


def fig12_maintenance(
    scale: Optional[float] = None,
    intervals: int = DEFAULT_INTERVALS,
    skews: Sequence[int] = MAINTENANCE_SKEWS,
) -> FigureResult:
    """Fig. 12: cluster maintenance vs join time as cluster count varies.

    The paper varies the skew factor to sweep the average number of live
    clusters while the population stays fixed, and compares "cluster
    maintenance + SCUBA join" against the regular operator's cost of a
    cycle.  SCUBA maintenance here is everything cluster-related outside
    the join: ingest-side incremental clustering plus post-join upkeep
    (forming, expanding, dissolving, re-locating).  The regular bar is its
    full cycle (per-update individual processing + join), per the paper's
    accounting.
    """
    scale = bench_scale() if scale is None else scale
    result = FigureResult(
        figure="fig12",
        title="Cluster maintenance cost",
        columns=[
            "skew",
            "clusters",
            "maintenance_s",
            "scuba_join_s",
            "scuba_total_s",
            "regular_total_s",
        ],
    )
    for skew in skews:
        spec = replace(WorkloadSpec(), skew=skew).scaled(scale)
        scuba = run_experiment(
            spec, Scuba(), intervals=intervals, label=f"scuba-skew{skew}"
        )
        regular = run_experiment(
            spec, RegularGridJoin(), intervals=intervals, label=f"regular-skew{skew}"
        )
        maintenance = scuba.ingest_seconds + scuba.maintenance_seconds
        result.rows.append(
            {
                "skew": skew,
                "clusters": scuba.cluster_count,
                "maintenance_s": maintenance,
                "scuba_join_s": scuba.join_seconds,
                "scuba_total_s": maintenance + scuba.join_seconds,
                "regular_total_s": regular.ingest_seconds + regular.join_seconds,
            }
        )
    return result


# ---------------------------------------------------------------------------
# Figure 13 — moving-cluster-driven load shedding
# ---------------------------------------------------------------------------

ETA_LEVELS: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)


def fig13_load_shedding(
    scale: Optional[float] = None,
    intervals: int = DEFAULT_INTERVALS,
    etas: Sequence[float] = ETA_LEVELS,
) -> FigureResult:
    """Fig. 13a/13b: join cost and accuracy as the nucleus grows.

    η is the nucleus-to-cluster size percentage; η = 0 is the exact
    reference.  The query window is set large relative to Θ_D (the regime
    the paper's accuracy numbers imply — a nucleus approximation can only
    be gentle when the window dwarfs the approximation error), matching
    ~79 % accuracy at η = 50 %.

    Expected shape: the number of individual geometric tests
    (``within_tests``, Fig. 13a's cost driver) falls monotonically with η;
    accuracy falls with η but degrades gracefully.
    """
    scale = bench_scale() if scale is None else scale
    spec = replace(WorkloadSpec(), query_range=(500.0, 500.0)).scaled(scale)
    theta_d = ScubaConfig().theta_d

    result = FigureResult(
        figure="fig13",
        title="Cluster-based load shedding (join cost, accuracy)",
        columns=[
            "eta_pct",
            "join_s",
            "within_tests",
            "accuracy",
            "false_pos",
            "false_neg",
        ],
    )
    reference_matches = None
    for eta in etas:
        operator = Scuba(ScubaConfig(shedding=policy_for_eta(eta, theta_d)))
        run = run_experiment(
            spec,
            operator,
            intervals=intervals,
            label=f"eta-{eta}",
            collect_matches=True,
        )
        assert isinstance(run.sink, CollectingSink)
        if reference_matches is None:
            # First row must be the η = 0 exact reference.
            assert eta == 0.0, "fig13 requires eta levels to start at 0"
            reference_matches = run.sink.all_matches
        report = compare_results(reference_matches, run.sink.all_matches)
        result.rows.append(
            {
                "eta_pct": round(eta * 100),
                "join_s": run.join_seconds,
                "within_tests": operator.within_tests,
                "accuracy": report.accuracy,
                "false_pos": report.false_positives,
                "false_neg": report.false_negatives,
            }
        )
    return result


#: Registry used by the CLI and the benchmark suite.
ALL_FIGURES = {
    "fig09": fig09_grid_size,
    "fig10": fig10_skew,
    "fig11": fig11_clustering,
    "fig12": fig12_maintenance,
    "fig13": fig13_load_shedding,
}
