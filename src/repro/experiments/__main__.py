"""CLI for the experiment harnesses.

Usage::

    python -m repro.experiments            # run every figure
    python -m repro.experiments fig10      # run one figure
    python -m repro.experiments fig09 fig13 --scale 0.2 --intervals 2

``--scale`` overrides ``SCUBA_BENCH_SCALE`` (1.0 = the paper's full
10,000 + 10,000 population).
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_FIGURES, format_table
from .workloads import bench_scale


def main(argv: list | None = None) -> int:
    """Entry point: run the requested figure harnesses and print tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the SCUBA paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*ALL_FIGURES, []],
        help="figures to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale; 1.0 = paper's 10k+10k (default: "
        "SCUBA_BENCH_SCALE or 0.1)",
    )
    parser.add_argument(
        "--intervals",
        type=int,
        default=3,
        help="evaluation intervals per configuration (default: 3)",
    )
    args = parser.parse_args(argv)
    names = args.figures or list(ALL_FIGURES)
    scale = args.scale if args.scale is not None else bench_scale()
    print(f"scale={scale} ({round(10_000 * scale)}+{round(10_000 * scale)} entities), "
          f"intervals={args.intervals}")
    for name in names:
        started = time.perf_counter()
        result = ALL_FIGURES[name](scale=scale, intervals=args.intervals)
        elapsed = time.perf_counter() - started
        print()
        print(format_table(result))
        print(f"[{name} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
