"""Experiment runners.

Wraps the stream engine with the measurement protocol every figure shares:
run an operator over a workload for N evaluation intervals, report per-phase
times, state memory, result volume and cluster statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import Scuba
from ..streams import (
    CollectingSink,
    ContinuousJoinOperator,
    CountingSink,
    EngineConfig,
    ResultSink,
    StreamEngine,
)
from .memory import operator_state_bytes
from .workloads import WorkloadSpec, build_workload

__all__ = ["RunResult", "run_experiment", "run_sharded_experiment"]


@dataclass
class RunResult:
    """Everything a figure needs from one operator run."""

    label: str
    intervals: int
    ingest_seconds: float
    join_seconds: float
    maintenance_seconds: float
    result_count: int
    tuple_count: int
    memory_bytes: int
    #: Cluster count at end of run (0 for non-cluster operators).
    cluster_count: int
    #: The sink, when the caller asked to collect matches.
    sink: Optional[ResultSink] = None

    @property
    def total_seconds(self) -> float:
        return self.ingest_seconds + self.join_seconds + self.maintenance_seconds

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)

    def row(self) -> dict:
        """Flat dict for table printing."""
        return {
            "label": self.label,
            "join_s": round(self.join_seconds, 4),
            "maint_s": round(self.maintenance_seconds, 4),
            "ingest_s": round(self.ingest_seconds, 4),
            "memory_mb": round(self.memory_mb, 2),
            "results": self.result_count,
            "clusters": self.cluster_count,
        }


def run_experiment(
    spec: WorkloadSpec,
    operator: ContinuousJoinOperator,
    intervals: int = 5,
    delta: float = 2.0,
    label: str = "",
    collect_matches: bool = False,
    measure_memory: bool = True,
    hooks=(),
) -> RunResult:
    """Run ``operator`` over the workload ``spec`` for ``intervals`` Δ-periods.

    ``hooks`` are :class:`~repro.pipeline.PipelineHook` instances attached
    to the engine's evaluation pipeline (per-stage tracing, controllers).
    """
    _network, generator = build_workload(spec)
    sink: ResultSink = CollectingSink() if collect_matches else CountingSink()
    engine = StreamEngine(
        generator, operator, sink, EngineConfig(delta=delta, tick=1.0), hooks=hooks
    )
    stats = engine.run(intervals)
    if isinstance(sink, CollectingSink):
        result_count = len(sink.all_matches)
    else:
        result_count = sink.total  # type: ignore[union-attr]
    return RunResult(
        label=label or type(operator).__name__,
        intervals=intervals,
        ingest_seconds=stats.total_ingest_seconds,
        join_seconds=stats.total_join_seconds,
        maintenance_seconds=stats.total_maintenance_seconds,
        result_count=result_count,
        tuple_count=stats.total_tuple_count,
        memory_bytes=operator_state_bytes(operator) if measure_memory else 0,
        cluster_count=operator.cluster_count if isinstance(operator, Scuba) else 0,
        sink=sink if collect_matches else None,
    )


def run_sharded_experiment(
    spec: WorkloadSpec,
    operator_factory,
    shards: int = 2,
    executor: str = "serial",
    intervals: int = 5,
    delta: float = 2.0,
    label: str = "",
    collect_matches: bool = False,
    hooks=(),
):
    """Sharded counterpart of :func:`run_experiment`.

    Runs ``operator_factory`` (e.g. a :class:`~repro.parallel.ScubaShardFactory`)
    over ``shards`` spatial shards and returns ``(RunResult, ShardedRunStats)``
    — the flat result row for figure tables, plus the full sharded stats with
    load-imbalance and replication metrics.
    """
    from ..parallel import ShardedEngine

    _network, generator = build_workload(spec)
    sink: ResultSink = CollectingSink() if collect_matches else CountingSink()
    with ShardedEngine(
        generator,
        operator_factory,
        shards=shards,
        sink=sink,
        config=EngineConfig(delta=delta, tick=1.0),
        executor=executor,
        hooks=hooks,
    ) as engine:
        stats = engine.run(intervals)
    if isinstance(sink, CollectingSink):
        result_count = len(sink.all_matches)
    else:
        result_count = sink.total  # type: ignore[union-attr]
    result = RunResult(
        label=label or f"{type(operator_factory).__name__}[K={shards},{executor}]",
        intervals=intervals,
        ingest_seconds=stats.total_ingest_seconds,
        join_seconds=stats.total_join_seconds,
        maintenance_seconds=stats.total_maintenance_seconds,
        result_count=result_count,
        tuple_count=stats.total_tuple_count,
        memory_bytes=0,  # operator state lives in the executor (maybe off-process)
        cluster_count=0,
        sink=sink if collect_matches else None,
    )
    return result, stats
