"""Memory accounting.

The paper's Fig. 9b reports the memory consumption of each operator's
in-memory state (grid directory plus per-cell entries plus tables).  We
measure the equivalent for the Python build: a recursive ``sys.getsizeof``
walk over everything reachable from the operator's ``state_roots()``.

The walker understands the container types the operators use (dict, list,
tuple, set, frozenset) and ``__slots__``/``__dict__`` objects, shares
already-visited objects (so interned ids and shared attrs are not double
counted), and ignores classes, modules and functions — configuration is
not workload state.
"""

from __future__ import annotations

import sys
from types import FunctionType, ModuleType
from typing import Any, Iterable, Set

__all__ = ["deep_sizeof", "operator_state_bytes"]

_ATOMIC_TYPES = (int, float, complex, bool, str, bytes, bytearray, type(None))
_SKIP_TYPES = (type, ModuleType, FunctionType)


def deep_sizeof(roots: Iterable[Any]) -> int:
    """Total bytes of all objects reachable from ``roots``.

    Each distinct object is counted once regardless of how many roots reach
    it.  Classes, modules and functions are skipped entirely.
    """
    seen: Set[int] = set()
    total = 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        if isinstance(obj, _SKIP_TYPES):
            continue
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(obj)
        if isinstance(obj, _ATOMIC_TYPES):
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            # Instance attributes: __dict__ and/or __slots__ (including
            # slots inherited from base classes).
            instance_dict = getattr(obj, "__dict__", None)
            if instance_dict is not None:
                stack.append(instance_dict)
            for klass in type(obj).__mro__:
                for slot in getattr(klass, "__slots__", ()):
                    try:
                        stack.append(getattr(obj, slot))
                    except AttributeError:
                        continue
    return total


def operator_state_bytes(operator: Any) -> int:
    """Bytes held by a continuous operator's workload state.

    Uses the operator's ``state_roots()`` contract so configuration objects
    and timers are excluded — the measurement mirrors what the paper's
    memory figure counts (index directories, per-cell entries, tables,
    clusters).
    """
    return deep_sizeof(operator.state_roots())
