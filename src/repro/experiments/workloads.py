"""Workload construction for the paper's experiments.

One place fixes the defaults of §6.1 — 1:1 objects to queries, 100 % update
rate, Δ = 2, Θ_D = 100, Θ_S = 10, a 100×100 grid over a 10,000×10,000-unit
city — and one ``scale`` knob shrinks the population so the pure-Python
reproduction finishes in minutes.  ``scale = 1.0`` is the paper's full
10,000 + 10,000 entities; benchmarks default to ``SCUBA_BENCH_SCALE``
(default 0.1, i.e. 1,000 + 1,000).

Every experiment builds its workload through :func:`build_workload` so that
SCUBA and the regular baseline always see *identical* streams (same
network, same seed, same skew).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..generator import GeneratorConfig, NetworkBasedGenerator
from ..network import RoadNetwork, grid_city

__all__ = ["PAPER_DEFAULTS", "WorkloadSpec", "build_workload", "bench_scale"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible workload: a city plus a generator configuration."""

    num_objects: int = 10_000
    num_queries: int = 10_000
    skew: int = 100
    seed: int = 42
    update_fraction: float = 1.0
    query_range: Tuple[float, float] = (50.0, 50.0)
    #: Lattice size of the default grid city.  41×41 over the 10,000-unit
    #: world gives 250-unit blocks and 1,000-unit highway interchange
    #: spacing — road supply proportioned to the paper's 10k+10k default
    #: population (the Worcester map is similarly large relative to it).
    city_rows: int = 41
    city_cols: int = 41
    #: Per-group speed jitter; kept small so convoy members stay within
    #: Θ_S of their cluster average.
    speed_jitter: float = 0.02

    def scaled(self, scale: float) -> "WorkloadSpec":
        """The same workload with the population scaled by ``scale``.

        The city lattice scales with the square root of the population so
        that *traffic density* (entities per unit of road) is preserved —
        shrinking only the population would leave benchmark-scale runs
        with an empty city and vacuous joins.  The skew factor is *not*
        scaled: it is the experimental variable of Figs. 10 and 12 and a
        property of entity behaviour, not of population size.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        # Odd lattice sizes keep the central highway axes on a lattice row.
        rows = max(5, round(self.city_rows * scale**0.5)) | 1
        cols = max(5, round(self.city_cols * scale**0.5)) | 1
        return replace(
            self,
            num_objects=max(1, round(self.num_objects * scale)),
            num_queries=max(1, round(self.num_queries * scale)),
            city_rows=rows,
            city_cols=cols,
        )

    def generator_config(self) -> GeneratorConfig:
        return GeneratorConfig(
            num_objects=self.num_objects,
            num_queries=self.num_queries,
            skew=self.skew,
            seed=self.seed,
            update_fraction=self.update_fraction,
            query_range=self.query_range,
            speed_jitter=self.speed_jitter,
        )


#: The paper's §6.1 defaults: 10,000 objects + 10,000 range queries.
PAPER_DEFAULTS = WorkloadSpec()


def bench_scale(default: float = 0.1) -> float:
    """Population scale for benchmarks, from ``SCUBA_BENCH_SCALE``.

    ``SCUBA_BENCH_SCALE=1.0`` reproduces the paper's full population.
    """
    raw = os.environ.get("SCUBA_BENCH_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"SCUBA_BENCH_SCALE must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"SCUBA_BENCH_SCALE must be positive, got {value}")
    return value


def build_workload(
    spec: WorkloadSpec, network: Optional[RoadNetwork] = None
) -> Tuple[RoadNetwork, NetworkBasedGenerator]:
    """Materialise a workload: the city and a fresh generator over it.

    Callers comparing operators should build one workload per operator run
    (generators are stateful) with the same ``spec`` — identical seeds make
    the streams identical.
    """
    if network is None:
        network = grid_city(rows=spec.city_rows, cols=spec.city_cols)
    generator = NetworkBasedGenerator(network, spec.generator_config())
    return network, generator
