"""Experiment harnesses reproducing the paper's evaluation (§6)."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    fig09_grid_size,
    fig10_skew,
    fig11_clustering,
    fig12_maintenance,
    fig13_load_shedding,
    format_table,
)
from .memory import deep_sizeof, operator_state_bytes
from .runner import RunResult, run_experiment, run_sharded_experiment
from .workloads import PAPER_DEFAULTS, WorkloadSpec, bench_scale, build_workload

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "PAPER_DEFAULTS",
    "RunResult",
    "WorkloadSpec",
    "bench_scale",
    "build_workload",
    "deep_sizeof",
    "fig09_grid_size",
    "fig10_skew",
    "fig11_clustering",
    "fig12_maintenance",
    "fig13_load_shedding",
    "format_table",
    "operator_state_bytes",
    "run_experiment",
    "run_sharded_experiment",
]
