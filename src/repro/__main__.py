"""Command-line simulator.

Runs a configurable workload through a chosen operator and prints the
per-interval cost breakdown — the quickest way to poke at the system:

    python -m repro                                # defaults
    python -m repro --objects 2000 --queries 2000 --skew 100
    python -m repro --operator regular --intervals 10
    python -m repro --eta 0.5 --query-range 300    # with load shedding
    python -m repro --adaptive-shedding --shed-budget 500   # feedback shedding
    python -m repro --split                        # cluster splitting on
    python -m repro --shards 4 --executor process  # sharded parallel run
"""

from __future__ import annotations

import argparse
import sys

from .core import NaiveJoin, RegularGridJoin, Scuba, ScubaConfig
from .generator import GeneratorConfig, NetworkBasedGenerator
from .network import grid_city
from .shedding import policy_for_eta
from .streams import CountingSink, EngineConfig, StreamEngine


def build_parser() -> argparse.ArgumentParser:
    """The simulator's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run continuous spatio-temporal queries over moving objects.",
    )
    parser.add_argument("--objects", type=int, default=1000, help="moving objects")
    parser.add_argument("--queries", type=int, default=1000, help="continuous queries")
    parser.add_argument("--skew", type=int, default=50,
                        help="entities per convoy (clusterability)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--intervals", type=int, default=5,
                        help="evaluation intervals to run")
    parser.add_argument("--delta", type=float, default=2.0,
                        help="evaluation period in time units")
    parser.add_argument("--city", type=int, default=21,
                        help="lattice size of the city (NxN nodes)")
    parser.add_argument("--query-range", type=float, default=50.0,
                        help="range-query window extent (square)")
    parser.add_argument("--update-fraction", type=float, default=1.0,
                        help="fraction of entities reporting per time unit")
    parser.add_argument("--stopped-fraction", type=float, default=0.0,
                        help="fraction of convoys parked in place (still "
                             "reporting) — the steady-state regime "
                             "--incremental replays")
    parser.add_argument("--hotspot", type=float, default=0.0,
                        help="fraction of convoys whose origins and "
                             "destinations stay inside a downtown sub-rect "
                             "(spatial skew; 0=uniform coverage)")
    parser.add_argument("--tick-batching", dest="tick_batching",
                        action="store_true", default=True,
                        help="vectorized tick path: the generator emits "
                             "columnar TickBatches (default)")
    parser.add_argument("--no-tick-batching", dest="tick_batching",
                        action="store_false",
                        help="scalar reference tick path (per-entity loop, "
                             "per-object update rows)")
    parser.add_argument("--operator",
                        choices=["scuba", "regular", "naive", "incremental"],
                        default="scuba")
    parser.add_argument("--eta", type=float, default=0.0,
                        help="load-shedding nucleus fraction (0=off, 1=full)")
    parser.add_argument("--adaptive-shedding", action="store_true",
                        help="let the §5 feedback controller walk η against "
                             "--shed-budget (scuba only; overrides --eta)")
    parser.add_argument("--shed-budget", type=int, default=10_000,
                        metavar="POSITIONS",
                        help="retained-position budget the adaptive "
                             "controller defends")
    parser.add_argument("--split", action="store_true",
                        help="enable cluster splitting at destinations")
    parser.add_argument("--incremental", action="store_true",
                        help="delta-driven incremental join sweep: replay "
                             "memoized matches for structurally-clean, "
                             "relatively-unmoved cluster pairs (scuba only)")
    parser.add_argument("--batched-join", dest="batched_join",
                        action="store_true", default=None,
                        help="macro-batched join sweep: enumerate, dedup and "
                             "between-filter all candidate cluster pairs per "
                             "tick as whole-batch operations, and fuse "
                             "shed-free join-within runs into segmented "
                             "kernel calls (scuba only; default on unless "
                             "--incremental; answers bit-identical)")
    parser.add_argument("--no-batched-join", dest="batched_join",
                        action="store_false",
                        help="per-pair reference sweep (one join-between and "
                             "kernel dispatch per candidate cluster pair)")
    parser.add_argument("--batched-ingest", action="store_true",
                        help="batched columnar ingest: process each tick's "
                             "updates per cluster group through the "
                             "--kernel-backend ingest kernel instead of one "
                             "at a time (scuba only; answers unchanged)")
    parser.add_argument("--columnar", action="store_true",
                        help="columnar-first storage: cluster members and "
                             "table bookkeeping rest in parallel arrays and "
                             "post-join maintenance runs as whole-world "
                             "vectorized sweeps (scuba only; answers and "
                             "cluster state bit-identical)")
    parser.add_argument("--columnar-backend",
                        choices=["auto", "numpy", "array"], default="auto",
                        help="columnar sweep backend (auto = numpy if "
                             "installed, array = exact stdlib fallback)")
    parser.add_argument("--stale-after", type=float, default=None,
                        metavar="T",
                        help="evict table rows for entities silent longer "
                             "than T time units (scuba only; default: keep "
                             "forever)")
    parser.add_argument("--grid", type=int, default=100,
                        help="spatial grid size (NxN cells)")
    parser.add_argument("--record", metavar="TRACE",
                        help="record the update stream to a JSONL trace file")
    parser.add_argument("--replay", metavar="TRACE",
                        help="replay a recorded trace instead of generating")
    parser.add_argument("--shards", type=int, default=1, metavar="K",
                        help="spatial shards for parallel execution (1=off)")
    parser.add_argument("--executor", choices=["serial", "process"],
                        default="serial",
                        help="where shard operators run (with --shards > 1)")
    parser.add_argument("--adaptive-sharding", action="store_true",
                        help="runtime-adaptive shard plan: split hot / merge "
                             "cold tiles at interval boundaries, live-"
                             "migrating affected clusters (with --shards > 1)")
    parser.add_argument("--reshard-interval", type=int, default=4, metavar="N",
                        help="consider a rebalance every N intervals "
                             "(with --adaptive-sharding)")
    from .kernels import BACKEND_CHOICES

    parser.add_argument("--kernel-backend", choices=list(BACKEND_CHOICES),
                        default="auto",
                        help="join-kernel backend (auto = numpy if installed, "
                             "else batched python)")
    return parser


def make_scuba_config(args: argparse.Namespace) -> ScubaConfig:
    """The SCUBA configuration selected on the command line."""
    return ScubaConfig(
        grid_size=args.grid,
        delta=args.delta,
        shedding=policy_for_eta(args.eta, 100.0),
        adaptive_shedding=args.adaptive_shedding,
        shed_budget=args.shed_budget,
        split_at_destination=args.split,
        kernel_backend=args.kernel_backend,
        incremental=args.incremental,
        batched_join=args.batched_join,
        batched_ingest=args.batched_ingest,
        columnar=args.columnar,
        columnar_backend=args.columnar_backend,
        stale_after=args.stale_after,
    )


def make_operator(args: argparse.Namespace):
    """Instantiate the operator selected on the command line."""
    if args.operator == "regular":
        from .core import RegularConfig

        return RegularGridJoin(
            RegularConfig(grid_size=args.grid, kernel_backend=args.kernel_backend)
        )
    if args.operator == "incremental":
        from .core import IncrementalGridConfig, IncrementalGridJoin

        return IncrementalGridJoin(IncrementalGridConfig(grid_size=args.grid))
    if args.operator == "naive":
        return NaiveJoin()
    return Scuba(make_scuba_config(args))


def make_shard_factory(args: argparse.Namespace):
    """Per-shard operator factory mirroring :func:`make_operator`."""
    from .parallel import (
        IncrementalGridShardFactory,
        NaiveShardFactory,
        RegularShardFactory,
        ScubaShardFactory,
    )

    extent = (args.query_range, args.query_range)
    if args.operator == "regular":
        from .core import RegularConfig

        return RegularShardFactory(
            RegularConfig(grid_size=args.grid, kernel_backend=args.kernel_backend),
            max_query_extent=extent,
        )
    if args.operator == "incremental":
        from .core import IncrementalGridConfig

        return IncrementalGridShardFactory(
            IncrementalGridConfig(grid_size=args.grid), max_query_extent=extent
        )
    if args.operator == "naive":
        return NaiveShardFactory(max_query_extent=extent)
    return ScubaShardFactory(make_scuba_config(args), max_query_extent=extent)


def _hit_rate(counters: dict, name: str) -> str:
    """``"87.5% (35/40)"`` for a ``<name>_hits``/``<name>_misses`` pair."""
    hits = counters.get(f"{name}_hits", 0)
    misses = counters.get(f"{name}_misses", 0)
    total = hits + misses
    if not total:
        return "n/a"
    return f"{100.0 * hits / total:.1f}% ({hits}/{total})"


def print_cache_footer(counters: dict) -> None:
    """One-line cache/replay effectiveness summary (join_counters names)."""
    if "view_cache_hits" not in counters:
        return
    line = (
        f"caches: view {_hit_rate(counters, 'view_cache')} | "
        f"between {_hit_rate(counters, 'between_cache')}"
    )
    if counters.get("incremental"):
        line += (
            f" | replay {_hit_rate(counters, 'replay')} | "
            f"cells {_hit_rate(counters, 'cell_replay')} | "
            f"clean clusters {_hit_rate(counters, 'cluster_clean')}"
        )
    print(line)
    if counters.get("batched_join"):
        print(
            f"batched join: candidate pairs {counters.get('join_pairs_batched', 0)} | "
            f"fused segments {counters.get('join_segments', 0)}"
        )
    if counters.get("batched_ingest"):
        print(
            f"ingest [{counters.get('ingest_backend', '?')}]: "
            f"batched {counters.get('fast_path_batched', 0)} | "
            f"bulk absorbs {counters.get('bulk_absorbs', 0)} | "
            f"grid refreshes deduped {counters.get('grid_refresh_deduped', 0)} "
            f"(+{counters.get('grid_refresh_skips', 0)} skipped) | "
            f"fallbacks {counters.get('batch_fallbacks', 0)}"
        )
    if counters.get("columnar"):
        print(
            f"columnar [{counters.get('columnar_backend', '?')}]: "
            f"store compactions {counters.get('store_compactions', 0)} | "
            f"stale evicted {counters.get('evicted_stale', 0)}"
        )


def main(argv=None) -> int:
    """Entry point: run the configured workload and print the breakdown."""
    args = build_parser().parse_args(argv)
    if args.record and args.replay:
        raise SystemExit("--record and --replay are mutually exclusive")
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.adaptive_shedding and args.operator != "scuba":
        raise SystemExit(
            f"--adaptive-shedding requires --operator scuba, "
            f"got {args.operator}"
        )
    if args.incremental and args.operator != "scuba":
        raise SystemExit(
            f"--incremental requires --operator scuba, got {args.operator}"
        )
    if args.batched_ingest and args.operator != "scuba":
        raise SystemExit(
            f"--batched-ingest requires --operator scuba, got {args.operator}"
        )
    if args.batched_join is not None and args.operator != "scuba":
        raise SystemExit(
            f"--batched-join requires --operator scuba, got {args.operator}"
        )
    if args.batched_join and args.incremental:
        raise SystemExit(
            "--batched-join and --incremental select different sweep "
            "drivers; drop one (plain --incremental wins by default)"
        )
    if args.columnar and args.operator != "scuba":
        raise SystemExit(
            f"--columnar requires --operator scuba, got {args.operator}"
        )
    if args.stale_after is not None and args.operator != "scuba":
        raise SystemExit(
            f"--stale-after requires --operator scuba, got {args.operator}"
        )
    city = grid_city(rows=args.city, cols=args.city)
    if args.replay:
        from .generator import TraceReplayer

        generator = TraceReplayer(args.replay)
    else:
        generator = NetworkBasedGenerator(
            city,
            GeneratorConfig(
                num_objects=args.objects,
                num_queries=args.queries,
                skew=args.skew,
                seed=args.seed,
                query_range=(args.query_range, args.query_range),
                update_fraction=args.update_fraction,
                stopped_fraction=args.stopped_fraction,
                hotspot=args.hotspot,
                tick_batching=args.tick_batching,
            ),
        )
    if args.record:
        from .generator import TraceRecorder

        generator = TraceRecorder(generator, args.record)
    sharded = args.shards > 1 or args.executor == "process"
    sink = CountingSink()
    operator = None
    if sharded:
        from .parallel import ShardedEngine

        engine = ShardedEngine(
            generator,
            make_shard_factory(args),
            shards=args.shards,
            sink=sink,
            config=EngineConfig(delta=args.delta, tick=1.0),
            executor=args.executor,
            adaptive=args.adaptive_sharding,
            reshard_interval=args.reshard_interval,
        )
    else:
        operator = make_operator(args)
        engine = StreamEngine(
            generator, operator, sink, EngineConfig(delta=args.delta, tick=1.0)
        )
    print(f"{args.operator} over {city}")
    eta_label = (
        f"adaptive (budget {args.shed_budget})"
        if args.adaptive_shedding
        else f"{args.eta}"
    )
    print(f"{args.objects} objects + {args.queries} queries, skew {args.skew}, "
          f"Δ={args.delta}, η={eta_label}")
    if args.operator != "naive":
        from .kernels import resolve_backend

        print(f"kernel backend: {resolve_backend(args.kernel_backend).name}")
    if sharded:
        print(f"{engine.num_shards} shards ({args.executor} executor), "
              f"halo margin {engine.plan.halo_margin:.1f}")
    print()
    header = f"{'t':>6}  {'ingest':>8}  {'join':>8}  {'maint':>8}  {'results':>8}"
    print(header)
    print("-" * len(header))
    interrupted = False
    try:
        for _ in range(args.intervals):
            stats = engine.run_interval()
            print(
                f"{stats.t:6.0f}  {stats.ingest_seconds * 1e3:7.1f}m  "
                f"{stats.join_seconds * 1e3:7.1f}m  "
                f"{stats.maintenance_seconds * 1e3:7.1f}m  "
                f"{stats.result_count:8d}"
            )
    except KeyboardInterrupt:
        # Ctrl-C mid-run still gets the partial accounting: completed
        # intervals are in RunStats, and the footer below prints them
        # before the conventional 130 exit.
        interrupted = True
    print("-" * len(header))
    if interrupted:
        print(f"interrupted after {engine.stats.interval_count} of "
              f"{args.intervals} intervals")
    print(engine.stats.summary())
    if sharded:
        stats = engine.stats
        line = (
            f"parallel: load imbalance {stats.load_imbalance:.2f} | "
            f"replication {stats.replication_factor:.2f}"
        )
        if args.adaptive_sharding:
            c = stats.counters
            line += (
                f" | resharding: {c.get('reshard_splits', 0)} splits, "
                f"{c.get('reshard_merges', 0)} merges, "
                f"{c.get('clusters_migrated', 0)} clusters migrated in "
                f"{c.get('migration_seconds', 0.0) * 1e3:.1f}ms "
                f"(epoch {engine.plan_epoch})"
            )
        print(line)
    print_cache_footer(engine.stats.counters)
    dropped = engine.stats.counters.get("sink_dropped_matches", 0)
    if dropped:
        print(f"sink: {dropped} matches evicted by the retention cap")
    if isinstance(operator, Scuba):
        print(f"clusters: {operator.cluster_count} | "
              f"between {operator.between_hits}/{operator.between_tests} | "
              f"within tests {operator.within_tests} | "
              f"split joins {operator.split_joins}")
        if operator.shedder is not None:
            trajectory = " ".join(
                f"t={t:.0f}→η={eta}" for t, eta in operator.shedder.history
            ) or "(no transitions)"
            print(f"adaptive shedding: final η={operator.shedder.eta} | "
                  f"{trajectory}")
    if sharded:
        engine.close()
    if args.record:
        generator.close()
        print(f"trace recorded to {args.record}")
    return 130 if interrupted else 0


if __name__ == "__main__":
    sys.exit(main())
