"""Service mode: the evaluation engines as a long-lived process.

``python -m repro.serve`` wraps the staged pipeline (serial or sharded)
in an asyncio service: ticks arrive through an async
:class:`~repro.serve.sources.TickSource` (in-process generator, trace
replay, or a TCP line-protocol server) into a bounded queue; a
:class:`~repro.serve.backpressure.BackpressureController` watches the
queue and walks the shedding ladder when ingest outruns evaluation;
answers stream out through async emitters as JSON-line events; and
periodic versioned snapshots make the whole thing kill-and-resume safe —
a resumed service's answer stream is identical to an uninterrupted run
(under the answer-preserving ``block`` overload policy).
"""

from .backpressure import (
    OVERLOAD_POLICIES,
    BackpressureConfig,
    BackpressureController,
)
from .checkpoint import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    engine_state_digest,
    load_snapshot,
    save_snapshot,
    state_digest,
)
from .service import EvaluationService, QueuedTickSource, ServeConfig
from .sinks import (
    CallbackEmitter,
    EmitterFanout,
    IntervalBufferSink,
    JsonlEmitter,
    ResultEmitter,
    SocketEmitter,
    match_to_dict,
)
from .sources import (
    TICKS_FORMAT,
    TICKS_VERSION,
    GeneratorTickSource,
    SocketTickSource,
    TickBatch,
    TickSource,
    TraceTickSource,
    build_source,
    generator_spec,
    tick_to_line,
)

__all__ = [
    "OVERLOAD_POLICIES",
    "BackpressureConfig",
    "BackpressureController",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "engine_state_digest",
    "load_snapshot",
    "save_snapshot",
    "state_digest",
    "EvaluationService",
    "QueuedTickSource",
    "ServeConfig",
    "CallbackEmitter",
    "EmitterFanout",
    "IntervalBufferSink",
    "JsonlEmitter",
    "ResultEmitter",
    "SocketEmitter",
    "match_to_dict",
    "TICKS_FORMAT",
    "TICKS_VERSION",
    "GeneratorTickSource",
    "SocketTickSource",
    "TickBatch",
    "TickSource",
    "TraceTickSource",
    "build_source",
    "generator_spec",
    "tick_to_line",
]
