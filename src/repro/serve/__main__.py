"""Service-mode command line: ``python -m repro.serve``.

Runs the evaluation engines as a long-lived service — ticks in through
an async source, answers out as a JSON-line event stream:

    python -m repro.serve                          # generator source
    python -m repro.serve --source socket --port 0 # TCP line-protocol ingest
    python -m repro.serve --source trace --trace run.jsonl
    python -m repro.serve --checkpoint-every 5 --checkpoint snap.pkl
    python -m repro.serve --resume snap.pkl        # continue mid-stream
    python -m repro.serve --shards 4 --executor process --queue-depth 16

All the batch simulator's workload and operator flags apply unchanged
(same parser underneath); ``--intervals`` becomes the service's stopping
bound (0 = serve until the source ends).  The first stdout line is a
``{"event": "started", ...}`` record — with a socket source it carries
the bound ingest port, which is how clients and tests find an
ephemeral-port service.
"""

from __future__ import annotations

import argparse
import pickle
import sys

from ..__main__ import build_parser, make_operator, make_shard_factory
from ..generator import GeneratorConfig
from ..streams import EngineConfig, StreamEngine
from .backpressure import OVERLOAD_POLICIES, BackpressureConfig
from .checkpoint import load_snapshot
from .service import EvaluationService, QueuedTickSource, ServeConfig
from .sinks import IntervalBufferSink, JsonlEmitter, SocketEmitter
from .sources import build_source, generator_spec


def build_serve_parser() -> argparse.ArgumentParser:
    """The batch parser plus the service-mode flags."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve continuous spatio-temporal queries over a live "
        "update stream.",
        parents=[build_parser()],
        add_help=False,
    )
    group = parser.add_argument_group("service")
    group.add_argument("--source", choices=["generator", "trace", "socket"],
                       default="generator",
                       help="where ticks come from (default: in-process "
                            "workload generator)")
    group.add_argument("--trace", metavar="PATH",
                       help="trace file for --source trace")
    group.add_argument("--host", default="127.0.0.1",
                       help="listen address for --source socket")
    group.add_argument("--port", type=int, default=0,
                       help="listen port for --source socket (0 = ephemeral; "
                            "the started event reports the bound port)")
    group.add_argument("--queue-depth", type=int, default=64,
                       help="bounded ingest queue capacity, in ticks")
    group.add_argument("--overload-policy", choices=list(OVERLOAD_POLICIES),
                       default="block",
                       help="reaction to a full ingest queue: block the "
                            "producer (exact answers), shed (escalate the "
                            "shedding ladder), or drop whole ticks")
    group.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="INTERVALS",
                       help="write a snapshot every N intervals (0 = off)")
    group.add_argument("--checkpoint", metavar="PATH",
                       help="snapshot file path (atomic overwrite)")
    group.add_argument("--resume", metavar="PATH",
                       help="restore engine + source cursor from a snapshot "
                            "and continue mid-stream (--intervals counts the "
                            "whole logical run: completed intervals carry "
                            "over, so resuming a 3-interval run with "
                            "--intervals 6 evaluates 3 more)")
    group.add_argument("--emit", choices=["stdout", "none"], default="stdout",
                       help="primary result channel (JSONL events)")
    group.add_argument("--emit-matches", action="store_true",
                       help="include individual matches in results events, "
                            "not just counts")
    group.add_argument("--emit-port", type=int, default=None, metavar="PORT",
                       help="also broadcast the event stream on a TCP port "
                            "(0 = ephemeral)")
    return parser


def _build_fresh(args, bridge, sink):
    """Engine + manifest + source for a from-scratch service start."""
    engine_config = EngineConfig(delta=args.delta, tick=1.0)
    if args.source == "generator":
        spec = generator_spec(
            city_rows=args.city,
            city_cols=args.city,
            generator_config=GeneratorConfig(
                num_objects=args.objects,
                num_queries=args.queries,
                skew=args.skew,
                seed=args.seed,
                query_range=(args.query_range, args.query_range),
                update_fraction=args.update_fraction,
                stopped_fraction=args.stopped_fraction,
                hotspot=args.hotspot,
            ),
        )
    elif args.source == "trace":
        if not args.trace:
            raise SystemExit("--source trace requires --trace PATH")
        spec = {"kind": "trace", "path": args.trace}
    else:
        spec = {"kind": "socket", "host": args.host, "port": args.port}
    source = build_source(spec)
    engine, manifest = _build_engine(args, bridge, sink, engine_config)
    return engine, manifest, source, engine_config


def _build_engine(args, bridge, sink, engine_config):
    sharded = args.shards > 1 or args.executor == "process"
    if sharded:
        from ..parallel import ShardedEngine

        factory = make_shard_factory(args)
        engine = ShardedEngine(
            bridge,
            factory,
            shards=args.shards,
            sink=sink,
            config=engine_config,
            executor=args.executor,
            adaptive=args.adaptive_sharding,
            reshard_interval=args.reshard_interval,
        )
        manifest = {
            "kind": "sharded",
            "engine_config": engine_config,
            "plan": engine.plan,
            "factory": pickle.dumps(factory),
            "executor": args.executor,
            "adaptive": args.adaptive_sharding,
            "reshard_interval": args.reshard_interval,
        }
    else:
        engine = StreamEngine(bridge, make_operator(args), sink, engine_config)
        manifest = {"kind": "serial", "engine_config": engine_config}
    return engine, manifest


def _build_resumed(args, sink):
    """Engine + source continuing from a snapshot — the restart path.

    Everything structural comes from the snapshot (engine kind, shard
    plan, clocking, source recipe); the command line only supplies things
    a restart may legitimately change, like the socket listen address.
    """
    envelope = load_snapshot(args.resume)
    manifest = envelope["engine"]
    engine_config = manifest["engine_config"]
    cursor = envelope["cursor"]
    bridge = QueuedTickSource(ticks_consumed=cursor)
    if manifest["kind"] == "sharded":
        from ..parallel import ShardedEngine

        engine = ShardedEngine(
            bridge,
            pickle.loads(manifest["factory"]),
            shards=manifest["plan"],
            sink=sink,
            config=engine_config,
            executor=manifest["executor"],
            adaptive=manifest.get("adaptive", False),
            reshard_interval=manifest.get("reshard_interval", 4),
        )
    else:
        operator = pickle.loads(envelope["engine_state"]["operator"])
        engine = StreamEngine(bridge, operator, sink, engine_config)
    engine.restore_state(envelope["engine_state"])
    spec = envelope["source_spec"]
    overrides = {}
    if spec.get("kind") == "socket":
        overrides = {"host": args.host, "port": args.port}
    source = build_source(spec, skip_ticks=cursor, **overrides)
    return engine, manifest, source, engine_config, bridge, envelope["serve"]


def main(argv=None) -> int:
    """Entry point: build the service from flags (or a snapshot) and run."""
    args = build_serve_parser().parse_args(argv)
    if args.record or args.replay:
        raise SystemExit(
            "--record/--replay are batch-mode flags; use --source trace "
            "--trace PATH to serve from a recorded trace"
        )
    if args.checkpoint_every and not args.checkpoint:
        raise SystemExit("--checkpoint-every requires --checkpoint PATH")
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")

    sink = IntervalBufferSink()
    serve_state = None
    if args.resume:
        (engine, manifest, source, engine_config, bridge, serve_state) = (
            _build_resumed(args, sink)
        )
    else:
        bridge = QueuedTickSource()
        engine, manifest, source, engine_config = _build_fresh(
            args, bridge, sink
        )

    emitters = []
    if args.emit == "stdout":
        emitters.append(JsonlEmitter())
    if args.emit_port is not None:
        emitters.append(SocketEmitter(port=args.emit_port))

    config = ServeConfig(
        engine=engine_config,
        backpressure=BackpressureConfig(
            queue_depth=args.queue_depth, policy=args.overload_policy
        ),
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        max_intervals=args.intervals,
        emit_matches=args.emit_matches,
    )
    service = EvaluationService(
        engine,
        bridge,
        source,
        sink,
        emitters=emitters,
        config=config,
        engine_manifest=manifest,
        resume_serve_state=serve_state,
    )
    try:
        service.run_forever()
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if hasattr(engine, "close"):
            engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
