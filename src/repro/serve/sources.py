"""Tick sources: where a long-lived service's update stream comes from.

The batch engines pull ticks from a generator they own; a service is fed
from outside.  A :class:`TickSource` is the async front door: the service
awaits :meth:`TickSource.next_batch` and receives one :class:`TickBatch`
(the tick's simulation time plus its update tuples) per call, ``None``
when the stream ends.  Three sources cover the deployment shapes:

* :class:`GeneratorTickSource` — in-process workload generation, the
  service-mode equivalent of the batch CLI's generator loop.
* :class:`TraceTickSource` — replays a recorded ``scuba-trace`` file.
* :class:`SocketTickSource` — an asyncio line-protocol server: clients
  connect and send one JSON object per line (the trace tick format), so
  external producers stream updates in over TCP.

Every source is **resumable from a tick count**: workload generation is
deterministic, traces are files, and socket clients replay their stream
from the start — so ``build_source(spec, skip_ticks=n)`` reconstructs a
source positioned just after the ``n``-th tick.  That cursor (the number
of ticks the evaluation actually consumed) is what checkpoints store; the
source's ``spec()`` dict is the rebuild recipe stored next to it.
"""

from __future__ import annotations

import abc
import asyncio
import json
import sys
from pathlib import Path
from typing import Any, Dict, NamedTuple, Optional, Sequence

from ..generator import NetworkBasedGenerator, Update
from ..generator.batch import TickBatch as _ColumnTickBatch
from ..generator.trace import (
    TraceReplayer,
    _batch_to_dicts,
    update_from_dict,
    update_to_dict,
)
from ..network import grid_city

__all__ = [
    "TickBatch",
    "TickSource",
    "GeneratorTickSource",
    "TraceTickSource",
    "SocketTickSource",
    "build_source",
    "generator_spec",
    "tick_to_line",
    "TICKS_FORMAT",
    "TICKS_VERSION",
]

#: Line-protocol identity, shared with the trace-file format's spirit: a
#: header line a client *may* send first; the service validates it when
#: present and ignores its absence.
TICKS_FORMAT = "scuba-ticks"
TICKS_VERSION = 1

#: StreamReader buffer limit for socket sources.  One line carries a whole
#: tick (every entity's update), which blows through asyncio's default
#: 64 KiB limit at a few hundred entities — 16 MiB covers ~50k updates
#: per tick while still bounding a malformed (newline-less) stream.
LINE_LIMIT = 1 << 24


class TickBatch(NamedTuple):
    """One tick of the stream: its simulation time and its updates.

    ``updates`` is any update sequence — a plain list, or the generator's
    columnar :class:`~repro.generator.TickBatch` when the producer runs
    the batched tick path.
    """

    t: float
    updates: Sequence[Update]


def tick_to_line(t: float, updates: Sequence[Update]) -> str:
    """Serialize one tick as a line-protocol JSON record (no newline)."""
    if isinstance(updates, _ColumnTickBatch):
        dicts = _batch_to_dicts(updates)
    else:
        dicts = [update_to_dict(u) for u in updates]
    return json.dumps({"t": t, "updates": dicts})


class TickSource(abc.ABC):
    """The async front door of the service: one awaitable tick at a time."""

    async def start(self) -> None:
        """Bind resources (sockets, files).  Idempotent."""

    @abc.abstractmethod
    async def next_batch(self) -> Optional[TickBatch]:
        """The next tick of the stream, or ``None`` when it has ended."""

    @abc.abstractmethod
    def spec(self) -> Dict[str, Any]:
        """Picklable rebuild recipe (stored in snapshots next to the
        tick cursor; see :func:`build_source`)."""

    async def close(self) -> None:
        """Release resources.  Idempotent."""


class GeneratorTickSource(TickSource):
    """In-process workload generation behind the source protocol.

    ``max_ticks`` bounds the stream (0 = unbounded — a true long-lived
    service); the bound counts from the generator's *cursor*, so a resumed
    source stops at the same absolute tick as the original would have.
    """

    def __init__(
        self,
        generator: NetworkBasedGenerator,
        dt: float = 1.0,
        max_ticks: int = 0,
        spec: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.generator = generator
        self.dt = dt
        self.max_ticks = max_ticks
        self._spec = spec or {"kind": "generator"}

    async def next_batch(self) -> Optional[TickBatch]:
        if self.max_ticks and self.generator.ticks_elapsed >= self.max_ticks:
            return None
        updates = self.generator.tick(self.dt)
        # Generation is synchronous; yield so the consumer side of the
        # queue keeps running between ticks.
        await asyncio.sleep(0)
        return TickBatch(self.generator.time, updates)

    def spec(self) -> Dict[str, Any]:
        return dict(self._spec)


class TraceTickSource(TickSource):
    """Replays a recorded ``scuba-trace`` file through the source protocol."""

    def __init__(self, path, skip_ticks: int = 0) -> None:
        self.path = Path(path)
        self.replayer = TraceReplayer(self.path)
        if skip_ticks:
            self.replayer.seek(skip_ticks)

    async def next_batch(self) -> Optional[TickBatch]:
        if self.replayer.ticks_remaining == 0:
            return None
        updates = self.replayer.tick()
        await asyncio.sleep(0)
        return TickBatch(self.replayer.time, updates)

    def spec(self) -> Dict[str, Any]:
        return {"kind": "trace", "path": str(self.path)}


class SocketTickSource(TickSource):
    """A TCP line-protocol ingest server.

    Clients connect and send one JSON object per line: an optional
    ``{"format": "scuba-ticks", "version": 1}`` header, then tick records
    ``{"t": <time>, "updates": [<update dicts>]}`` (exactly the trace-file
    tick format), and finally ``{"eof": true}`` to end the stream.

    Backpressure is end-to-end: parsed ticks go into a one-slot internal
    queue, so when the service's bounded ingest queue is full the reader
    coroutine stops consuming, the kernel's TCP buffers fill, and the
    *client's* writes block — overload never accumulates unbounded memory
    on the service side.

    ``skip_ticks`` is the resume cursor: a reconnecting client replays its
    stream from the start and the source discards the first ``skip_ticks``
    tick records (counted in :attr:`ticks_skipped`).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, skip_ticks: int = 0
    ) -> None:
        self.host = host
        self.port = port
        self.skip_ticks = skip_ticks
        self.ticks_skipped = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._incoming: asyncio.Queue = asyncio.Queue(maxsize=1)
        self._eof = False

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._serve_client, self.host, self.port, limit=LINE_LIMIT
            )

    @property
    def bound_port(self) -> int:
        """The actual listening port (resolves a requested port of 0)."""
        if self._server is None:
            raise RuntimeError("socket source is not started")
        return self._server.sockets[0].getsockname()[1]

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                record = json.loads(line)
                if record.get("format"):
                    if (
                        record["format"] != TICKS_FORMAT
                        or record.get("version") != TICKS_VERSION
                    ):
                        raise ValueError(
                            f"client sent unsupported stream header: {record}"
                        )
                    continue
                if record.get("eof"):
                    await self._incoming.put(None)
                    break
                updates = [update_from_dict(d) for d in record["updates"]]
                try:
                    # Column-pack so the evaluation consumes the socket
                    # stream through the same batched ingest path as an
                    # in-process generator.
                    updates = _ColumnTickBatch.from_updates(
                        record["t"], updates
                    )
                except ValueError:
                    pass  # mixed timestamps: keep the row list
                await self._incoming.put(TickBatch(record["t"], updates))
        except asyncio.CancelledError:
            # Service shutdown while this handler was parked on the
            # internal queue — a normal way for a connection to end.
            pass
        except Exception as exc:  # malformed client stream: drop it, stay up
            print(f"socket source: dropping client: {exc}", file=sys.stderr)
        finally:
            writer.close()

    async def next_batch(self) -> Optional[TickBatch]:
        if self._eof:
            return None
        while True:
            item = await self._incoming.get()
            if item is None:
                self._eof = True
                return None
            if self.ticks_skipped < self.skip_ticks:
                self.ticks_skipped += 1
                continue
            return item

    def spec(self) -> Dict[str, Any]:
        return {"kind": "socket", "host": self.host, "port": self.port}

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def generator_spec(
    *,
    city_rows: int,
    city_cols: int,
    generator_config,
    dt: float = 1.0,
    max_ticks: int = 0,
) -> Dict[str, Any]:
    """The rebuild recipe for an in-process generator source."""
    return {
        "kind": "generator",
        "city_rows": city_rows,
        "city_cols": city_cols,
        "generator_config": generator_config,
        "dt": dt,
        "max_ticks": max_ticks,
    }


def build_source(
    spec: Dict[str, Any],
    skip_ticks: int = 0,
    **overrides: Any,
) -> TickSource:
    """Reconstruct a source from its spec, positioned after ``skip_ticks``.

    The resume path of checkpoint/restore: generator sources rebuild the
    deterministic workload and fast-forward, trace sources seek, socket
    sources are told to discard the replayed prefix.  ``overrides`` patch
    spec fields (e.g. a new listen port after a restart).
    """
    spec = {**spec, **overrides}
    kind = spec.get("kind")
    if kind == "generator":
        city = grid_city(rows=spec["city_rows"], cols=spec["city_cols"])
        generator = NetworkBasedGenerator(city, spec["generator_config"])
        if skip_ticks:
            generator.fast_forward(skip_ticks, spec.get("dt", 1.0))
        return GeneratorTickSource(
            generator,
            dt=spec.get("dt", 1.0),
            max_ticks=spec.get("max_ticks", 0),
            spec=spec,
        )
    if kind == "trace":
        return TraceTickSource(spec["path"], skip_ticks=skip_ticks)
    if kind == "socket":
        return SocketTickSource(
            host=spec.get("host", "127.0.0.1"),
            port=spec.get("port", 0),
            skip_ticks=skip_ticks,
        )
    raise ValueError(f"unknown source kind {kind!r}")
