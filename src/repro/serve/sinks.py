"""Streaming result emission: where a long-lived service's answers go.

The batch engines hand matches to an in-process :class:`ResultSink` and
the caller inspects it afterwards; a service has no "afterwards".  Here
the pipeline still delivers into a sink — :class:`IntervalBufferSink`,
which only buffers — and the service drains that buffer after every
interval into one or more async :class:`ResultEmitter`\\ s:

* :class:`JsonlEmitter` — one JSON object per line on a stream
  (stdout by default), the service-mode answer channel and the thing
  ``examples/live_service.py`` tails;
* :class:`CallbackEmitter` — in-process delivery for embedding tests;
* :class:`SocketEmitter` — a broadcast TCP server: every connected
  client receives the event stream as JSON lines.

Everything the service says — answers, overload, shedding transitions,
checkpoints, the final summary — travels as one *event record* shape:
a dict with an ``"event"`` key (``results`` / ``overload`` / ``shedding``
/ ``checkpoint`` / ``started`` / ``summary``), so a consumer can follow
one stream and filter.
"""

from __future__ import annotations

import abc
import asyncio
import json
import sys
from typing import Any, Callable, Dict, List, Optional

from ..streams.results import QueryMatch
from ..streams.sink import ResultSink

__all__ = [
    "ResultEmitter",
    "JsonlEmitter",
    "CallbackEmitter",
    "SocketEmitter",
    "EmitterFanout",
    "IntervalBufferSink",
    "match_to_dict",
]


def match_to_dict(match: QueryMatch) -> Dict[str, Any]:
    return {"qid": match.qid, "oid": match.oid, "t": match.t}


class ResultEmitter(abc.ABC):
    """Async outbound channel for service event records."""

    async def start(self) -> None:
        """Bind resources.  Idempotent."""

    @abc.abstractmethod
    async def emit(self, record: Dict[str, Any]) -> None:
        """Deliver one event record."""

    async def close(self) -> None:
        """Flush and release.  Idempotent."""


class JsonlEmitter(ResultEmitter):
    """One JSON object per line on a text stream (stdout by default).

    Flushes per record: the reader on the other end of a pipe is tailing
    live, and a crashed service must not owe it buffered answers.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    async def emit(self, record: Dict[str, Any]) -> None:
        self.stream.write(json.dumps(record) + "\n")
        self.stream.flush()


class CallbackEmitter(ResultEmitter):
    """Hands every event record to an in-process callable."""

    def __init__(self, callback: Callable[[Dict[str, Any]], Any]) -> None:
        self.callback = callback

    async def emit(self, record: Dict[str, Any]) -> None:
        self.callback(record)


class SocketEmitter(ResultEmitter):
    """A broadcast TCP server: each connected client gets the JSON-line
    event stream from its moment of connection onward.

    A slow or dead client never stalls the service: writes are queued on
    its transport and the connection is dropped on error.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: List[asyncio.StreamWriter] = []

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._on_connect, self.host, self.port
            )

    @property
    def bound_port(self) -> int:
        """The actual listening port (resolves a requested port of 0)."""
        if self._server is None:
            raise RuntimeError("socket emitter is not started")
        return self._server.sockets[0].getsockname()[1]

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.append(writer)

    async def emit(self, record: Dict[str, Any]) -> None:
        if not self._writers:
            return
        line = (json.dumps(record) + "\n").encode("utf-8")
        alive = []
        for writer in self._writers:
            try:
                writer.write(line)
                await writer.drain()
                alive.append(writer)
            except (ConnectionError, RuntimeError):
                writer.close()
        self._writers = alive

    async def close(self) -> None:
        for writer in self._writers:
            try:
                writer.close()
            except RuntimeError:
                pass
        self._writers = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class EmitterFanout(ResultEmitter):
    """Delivers every record to each of several emitters, in order."""

    def __init__(self, emitters: List[ResultEmitter]) -> None:
        self.emitters = list(emitters)

    async def start(self) -> None:
        for emitter in self.emitters:
            await emitter.start()

    async def emit(self, record: Dict[str, Any]) -> None:
        for emitter in self.emitters:
            await emitter.emit(record)

    async def close(self) -> None:
        for emitter in self.emitters:
            await emitter.close()


class IntervalBufferSink(ResultSink):
    """The pipeline-facing half of streaming emission.

    The synchronous pipeline delivers into this sink from whatever thread
    runs the interval; the async service drains it *between* intervals
    (never concurrently), so no locking is needed.  ``total_matches``
    counts across the whole run for the summary event.
    """

    def __init__(self) -> None:
        self._pending: List[tuple] = []
        self.total_matches = 0

    def accept(self, matches: List[QueryMatch], t: float) -> None:
        self._pending.append((t, list(matches)))
        self.total_matches += len(matches)

    def drain(self) -> List[tuple]:
        """All buffered ``(t, matches)`` deliveries, clearing the buffer."""
        pending, self._pending = self._pending, []
        return pending
