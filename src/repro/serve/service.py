"""The long-lived evaluation service.

:class:`EvaluationService` turns the batch engines into a server: an
async *producer* pulls ticks from a :class:`~repro.serve.sources.TickSource`
into a bounded queue, a *consumer* loop gathers one Δ interval's worth of
ticks at a time and runs the synchronous engine in a worker thread, and
every interval's answers stream out through the configured emitters.  The
pieces in between are the point:

* **Backpressure** — the queue bounds memory; the
  :class:`~repro.serve.backpressure.BackpressureController` watches its
  depth and walks the shedding ladder.  Ladder transitions are *applied*
  here, between intervals: level 1 forces the operators' adaptive shedder
  one rung up (``escalate_shedding`` on the serial operator, broadcast to
  every shard when sharded), level 2 additionally drops heartbeat-only
  updates at admission.  Every transition and every queue-full encounter
  is emitted as an event and counted in the run record.

* **Checkpointing** — every ``checkpoint_every`` intervals the service
  writes a snapshot: the engine's state (taken at the interval barrier,
  where it is exact), the source's rebuild spec, the tick cursor, and
  the service's own counters.  The cursor is **ticks consumed by
  evaluation** — ticks sitting unevaluated in the queue at a crash are
  deliberately *not* counted, so a resume re-ingests them and the
  continued answer stream is identical to an uninterrupted run (under
  the answer-preserving ``block`` policy; ``drop`` is lossy by design
  and a resume may re-ingest ticks that were previously dropped).

The engine evaluates over a :class:`QueuedTickSource` — a bridge that
looks like a generator to the pipeline (``tick()`` / ``time``) but is
fed from the queue by the consumer.  The service never touches the
engine mid-interval: feed, evaluate in the executor thread, drain.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..streams.engine import EngineConfig
from .backpressure import BackpressureConfig, BackpressureController
from .checkpoint import save_snapshot
from .sinks import EmitterFanout, IntervalBufferSink, ResultEmitter, match_to_dict
from .sources import TickBatch, TickSource

__all__ = ["ServeConfig", "QueuedTickSource", "EvaluationService"]

#: Queue sentinel marking the end of the tick stream.
_EOF = None


class QueuedTickSource:
    """Generator-shaped facade over externally fed ticks.

    The pipeline calls ``tick(dt)`` exactly ``ticks_per_interval`` times
    per interval; the service guarantees that many batches are queued
    (via :meth:`feed`) before it lets the engine run.  ``ticks_consumed``
    is the authoritative resume cursor — it counts ticks the evaluation
    actually took, and starts at the resume offset so a restored service
    continues the count.
    """

    def __init__(self, ticks_consumed: int = 0) -> None:
        self._pending: deque = deque()
        self.time = 0.0
        self.ticks_consumed = ticks_consumed

    def feed(self, batch: TickBatch) -> None:
        self._pending.append(batch)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def tick(self, dt: float) -> List[Any]:
        if not self._pending:
            raise RuntimeError(
                "engine asked for a tick the service has not fed "
                "(interval started without a full interval of ticks queued)"
            )
        batch = self._pending.popleft()
        self.time = batch.t
        self.ticks_consumed += 1
        return batch.updates


@dataclass
class ServeConfig:
    """Service-level knobs (engine clocking rides along unchanged)."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    #: Snapshot period in intervals (0 = no periodic checkpoints).
    checkpoint_every: int = 0
    #: Where snapshots are written (required when ``checkpoint_every`` > 0).
    checkpoint_path: Optional[str] = None
    #: Stop after this many intervals (0 = run until the source ends).
    max_intervals: int = 0
    #: Include the individual matches in ``results`` events (the count is
    #: always present; full matches can be bulky).
    emit_matches: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_every and not self.checkpoint_path:
            raise ValueError("checkpoint_every > 0 requires checkpoint_path")


class EvaluationService:
    """Producer/consumer service around one engine (serial or sharded).

    ``engine`` must have been constructed over ``bridge`` as its source
    and an :class:`IntervalBufferSink` as its sink.  ``engine_manifest``
    is an opaque rebuild recipe stored verbatim in snapshots (the CLI
    knows how to turn it back into an engine; the service does not).
    """

    def __init__(
        self,
        engine: Any,
        bridge: QueuedTickSource,
        source: TickSource,
        buffer_sink: IntervalBufferSink,
        emitters: Optional[List[ResultEmitter]] = None,
        config: Optional[ServeConfig] = None,
        engine_manifest: Optional[Dict[str, Any]] = None,
        resume_serve_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.engine = engine
        self.bridge = bridge
        self.source = source
        self.buffer_sink = buffer_sink
        self.fanout = EmitterFanout(emitters or [])
        self.config = config if config is not None else ServeConfig()
        self.engine_manifest = dict(engine_manifest or {})
        self.controller = BackpressureController(self.config.backpressure)
        #: Service-level counters, folded into the engine's run record
        #: (RunStats.counters) before every snapshot and at the summary.
        self.counters: Dict[str, int] = {
            "intervals_completed": 0,
            "checkpoints_written": 0,
            "ticks_discarded_at_eof": 0,
        }
        # Ladder level actually applied to the engine's shedder; trails
        # controller.level and is synchronized between intervals.  On
        # resume it is restored explicitly (the shedder side of it came
        # back pickled inside the operators).
        self._applied_level = self.controller.level
        if resume_serve_state:
            self.controller.restore_state(resume_serve_state["controller"])
            self.counters.update(resume_serve_state["counters"])
            self._applied_level = resume_serve_state.get(
                "applied_level", self.controller.level
            )
        self._producer_blocked = False

    # -- producer -------------------------------------------------------------

    async def _produce(self, queue: asyncio.Queue) -> None:
        policy = self.config.backpressure.policy
        while True:
            batch = await self.source.next_batch()
            if batch is None:
                await queue.put(_EOF)
                return
            self.controller.observe_depth(queue.qsize())
            batch = self.controller.admit(batch)
            if queue.full():
                self.controller.note_overload()
                if not self._producer_blocked:
                    self._producer_blocked = True
                    await self.fanout.emit(
                        {
                            "event": "overload",
                            "t": batch.t,
                            "policy": policy,
                            "queue_depth": queue.qsize(),
                            "level": self.controller.level,
                        }
                    )
                if policy == "drop":
                    self.controller.note_tick_dropped()
                    continue
            else:
                self._producer_blocked = False
            await queue.put(batch)

    # -- shedding ladder application ------------------------------------------

    def _signal_shedder(self, method: str, now: float) -> bool:
        """Invoke escalate_shedding/relax_shedding on every operator."""
        broadcast = getattr(self.engine, "broadcast", None)
        if broadcast is not None:
            return any(broadcast(method, now))
        operator = getattr(self.engine, "operator", None)
        fn = getattr(operator, method, None)
        return bool(fn(now)) if fn is not None else False

    async def _sync_shedding(self, now: float) -> None:
        while self._applied_level != self.controller.level:
            if self._applied_level < self.controller.level:
                self._applied_level += 1
                changed = self._signal_shedder("escalate_shedding", now)
                direction = "escalate"
            else:
                self._applied_level -= 1
                changed = self._signal_shedder("relax_shedding", now)
                direction = "relax"
            await self.fanout.emit(
                {
                    "event": "shedding",
                    "t": now,
                    "direction": direction,
                    "level": self._applied_level,
                    "shedder_changed": changed,
                }
            )

    # -- checkpointing ---------------------------------------------------------

    def _fold_counters(self) -> None:
        self.engine.stats.counters.update(self.controller.counters())
        self.engine.stats.counters.update(self.counters)

    def snapshot_payload(self) -> Dict[str, Any]:
        """The full resumable state, valid only at an interval barrier."""
        self._fold_counters()
        return {
            "engine": dict(self.engine_manifest),
            "engine_state": self.engine.snapshot_state(),
            "source_spec": self.source.spec(),
            "cursor": self.bridge.ticks_consumed,
            "serve": {
                "controller": self.controller.snapshot_state(),
                "counters": dict(self.counters),
                "applied_level": self._applied_level,
            },
        }

    async def _checkpoint(self) -> None:
        path = save_snapshot(self.config.checkpoint_path, self.snapshot_payload())
        self.counters["checkpoints_written"] += 1
        await self.fanout.emit(
            {
                "event": "checkpoint",
                "path": str(path),
                "interval": self.counters["intervals_completed"],
                "cursor": self.bridge.ticks_consumed,
            }
        )

    # -- consumer -------------------------------------------------------------

    async def _emit_results(self) -> None:
        for t, matches in self.buffer_sink.drain():
            record = {"event": "results", "t": t, "count": len(matches)}
            if self.config.emit_matches:
                record["matches"] = [match_to_dict(m) for m in matches]
            await self.fanout.emit(record)

    async def run(self) -> Dict[str, Any]:
        """Serve until the source ends or ``max_intervals`` is reached.

        Returns the summary event record (also emitted as the stream's
        last event).
        """
        cfg = self.config
        await self.source.start()
        await self.fanout.start()
        started = {
            "event": "started",
            "source": self.source.spec().get("kind"),
            "cursor": self.bridge.ticks_consumed,
            "queue_depth": cfg.backpressure.queue_depth,
            "policy": cfg.backpressure.policy,
        }
        port = getattr(self.source, "bound_port", None)
        if port is not None:
            started["port"] = port
        await self.fanout.emit(started)

        queue: asyncio.Queue = asyncio.Queue(maxsize=cfg.backpressure.queue_depth)
        producer = asyncio.ensure_future(self._produce(queue))
        loop = asyncio.get_event_loop()
        ticks_per_interval = cfg.engine.ticks_per_interval
        eof = False
        try:
            while not eof:
                if cfg.max_intervals and (
                    self.counters["intervals_completed"] >= cfg.max_intervals
                ):
                    break
                batches: List[TickBatch] = []
                while len(batches) < ticks_per_interval:
                    item = await queue.get()
                    if item is _EOF:
                        eof = True
                        break
                    batches.append(item)
                if len(batches) < ticks_per_interval:
                    # A trailing partial interval cannot be evaluated (Δ
                    # fires on whole intervals); the ticks are dropped,
                    # visibly.
                    self.counters["ticks_discarded_at_eof"] += len(batches)
                    break
                for item in batches:
                    self.bridge.feed(item)
                await loop.run_in_executor(None, self.engine.run_interval)
                self.counters["intervals_completed"] += 1
                await self._emit_results()
                await self._sync_shedding(self.bridge.time)
                if cfg.checkpoint_every and (
                    self.counters["intervals_completed"] % cfg.checkpoint_every
                    == 0
                ):
                    await self._checkpoint()
        finally:
            producer.cancel()
            try:
                await producer
            except asyncio.CancelledError:
                pass
            await self.source.close()
        self._fold_counters()
        summary = {
            "event": "summary",
            "intervals": self.counters["intervals_completed"],
            "cursor": self.bridge.ticks_consumed,
            "total_matches": self.buffer_sink.total_matches,
            "counters": dict(self.engine.stats.counters),
            "summary": self.engine.stats.summary(),
        }
        await self.fanout.emit(summary)
        await self.fanout.close()
        return summary

    def run_forever(self) -> Dict[str, Any]:
        """Synchronous entry point: serve on a fresh event loop."""
        return asyncio.run(self.run())
