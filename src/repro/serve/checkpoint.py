"""Versioned service snapshots: checkpoint files and state digests.

A snapshot is one pickle file holding everything a dead worker needs to
continue mid-stream: the engine state (operator/cluster/grid/shedder
state, per shard when sharded), the pipeline clock and run accounting,
the source rebuild recipe plus its tick cursor, and the service's own
backpressure counters.  The payload is wrapped in a versioned envelope —
``{"format": "scuba-snapshot", "version": 1, ...}`` — so a reader can
reject foreign or future files instead of unpickling garbage semantics.

Writes are atomic (temp file + ``os.replace``): a crash mid-checkpoint
leaves the previous snapshot intact, never a torn file.

:func:`state_digest` is the equivalence gate's fingerprint: a canonical
SHA-256 over an operator's cluster and table state, stable across
processes (pure sorted traversal, no set iteration, exact float reprs) —
two operators digest equal iff their resumable state is bit-identical.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Union

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "save_snapshot",
    "load_snapshot",
    "state_digest",
    "engine_state_digest",
]

SNAPSHOT_FORMAT = "scuba-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """The file is not a snapshot this build can restore."""


def save_snapshot(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Atomically write ``payload`` inside a versioned envelope.

    ``payload`` must be picklable; the envelope's format/version fields
    are added here so writers cannot forget them.
    """
    path = Path(path)
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        **payload,
    }
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a snapshot envelope."""
    path = Path(path)
    try:
        with path.open("rb") as fh:
            envelope = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    if envelope.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} is snapshot version {envelope.get('version')}, "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    return envelope


# -- state digests ------------------------------------------------------------


def _member_record(member) -> tuple:
    return (
        member.kind.value,
        member.entity_id,
        member.abs_x,
        member.abs_y,
        member.tr_x,
        member.tr_y,
        member.speed,
        member.range_width,
        member.range_height,
        member.last_t,
        member.position_shed,
        member.cn_node,
        member.cn_x,
        member.cn_y,
    )


def _cluster_record(cluster) -> tuple:
    return (
        cluster.cid,
        cluster.cx,
        cluster.cy,
        cluster.radius,
        cluster.avespeed,
        cluster.cn_node,
        (cluster.cn_loc.x, cluster.cn_loc.y),
        cluster.exptime,
        cluster.created_at,
        cluster.trans_x,
        cluster.trans_y,
        cluster.disp_x,
        cluster.disp_y,
        cluster.version,
        cluster.struct_version,
        cluster.nucleus_radius,
        cluster.shed_count,
        cluster.last_moved,
        tuple(sorted(_member_record(m) for m in cluster.members())),
        tuple(sorted((cluster.successors or {}).items())),
    )


def state_digest(operator) -> str:
    """Canonical SHA-256 fingerprint of an operator's resumable state.

    SCUBA operators digest their cluster storage and attribute tables
    through a fully sorted traversal (cross-process stable); other
    operators fall back to a pickle hash, which is stable within one
    process history but makes no cross-process promise — good enough for
    same-process resume tests, documented as such.
    """
    world = getattr(operator, "world", None)
    if world is None:
        return hashlib.sha256(pickle.dumps(operator)).hexdigest()
    clusters = tuple(
        sorted((_cluster_record(c) for c in world.storage), key=lambda r: r[0])
    )
    tables = tuple(
        tuple(sorted((eid, tuple(sorted(attrs.items()))) for eid, attrs in table))
        for table in (operator.objects_table, operator.queries_table)
    )
    canonical = (clusters, tables, world.cluster_count)
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()


def engine_state_digest(engine) -> str:
    """Fingerprint a whole engine: the operator, or every shard's operator.

    Sharded engines digest each shard blob independently and hash the
    ordered tuple, so shard count and per-shard state are both pinned.
    """
    executor = getattr(engine, "executor", None)
    if executor is None:
        return state_digest(engine.operator)
    digests = tuple(
        state_digest(pickle.loads(blob))
        for blob in executor.snapshot_operators()
    )
    return hashlib.sha256(repr(digests).encode("utf-8")).hexdigest()
