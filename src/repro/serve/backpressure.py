"""Bounded-queue backpressure: keep the service up when ingest outruns
evaluation.

The service puts every incoming tick through a bounded queue.  The queue
alone guarantees bounded memory; this module decides what *else* happens
as it fills.  :class:`BackpressureController` watches the queue depth and
walks an escalation ladder, mirroring the paper's §5 story ("nucleus
first, everything if that's not enough") one level up the stack:

=====  ====================================================================
level  reaction
=====  ====================================================================
0      nothing — normal operation
1      force the operators' adaptive shedder one rung up its η ladder
       (cheaper approximate answers drain the queue faster)
2      additionally drop *heartbeat-only* updates — reports whose position
       and window are unchanged since the entity's last report carry no
       join-relevant information, only freshness
=====  ====================================================================

Transitions are hysteretic (escalate at the high watermark, relax at the
low watermark) and every decision is counted, so overload is visible in
the run record instead of silent.  The ``overload_policy`` selects the
behaviour at the very top of the ladder, when the queue is *full*:

* ``block`` — never touch the stream; the producer waits (for the socket
  source this propagates as TCP backpressure to the client).  The ladder
  is disabled: answers stay exact, only timing degrades.
* ``shed`` — walk the ladder, but still block at a full queue.
* ``drop`` — walk the ladder and additionally discard the newest whole
  tick when the queue is full; ingest never blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..generator import EntityKind
from .sources import TickBatch

__all__ = ["OVERLOAD_POLICIES", "BackpressureConfig", "BackpressureController"]

OVERLOAD_POLICIES = ("block", "shed", "drop")

#: Highest ladder level (see module table).
MAX_LEVEL = 2


@dataclass
class BackpressureConfig:
    """Queue sizing and ladder watermarks."""

    queue_depth: int = 64
    policy: str = "block"
    #: Queue-depth fraction at which the ladder escalates one level.
    high_water: float = 0.75
    #: Queue-depth fraction at which the ladder relaxes one level.
    low_water: float = 0.25

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload policy must be one of {OVERLOAD_POLICIES}, "
                f"got {self.policy!r}"
            )
        if not 0.0 <= self.low_water < self.high_water <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= 1, got "
                f"{self.low_water}/{self.high_water}"
            )


@dataclass
class BackpressureController:
    """Watches queue depth, walks the ladder, filters admitted ticks."""

    config: BackpressureConfig = field(default_factory=BackpressureConfig)

    def __post_init__(self) -> None:
        #: Current ladder level (0 = normal).
        self.level = 0
        #: Cumulative decision counters, folded into the run record under
        #: a ``bp_`` prefix (see :meth:`counters`).
        self._counters: Dict[str, int] = {
            "ticks_admitted": 0,
            "ticks_dropped": 0,
            "heartbeats_dropped": 0,
            "escalations": 0,
            "relaxations": 0,
            "overload_events": 0,
            "queue_peak": 0,
        }
        # entity key -> (x, y, range_w, range_h) at its last report, for
        # heartbeat detection.  Tracked at every level so the first
        # escalated tick already has history to compare against.
        self._last_report: Dict[int, tuple] = {}

    # -- ladder ---------------------------------------------------------------

    def observe_depth(self, depth: int) -> Optional[str]:
        """Fold one queue-depth observation into the ladder.

        Returns ``"escalate"`` / ``"relax"`` when the level changed (the
        service turns transitions into shedder signals and emitted
        events), else ``None``.
        """
        cfg = self.config
        if depth > self._counters["queue_peak"]:
            self._counters["queue_peak"] = depth
        if cfg.policy == "block":
            return None
        if depth >= cfg.high_water * cfg.queue_depth and self.level < MAX_LEVEL:
            self.level += 1
            self._counters["escalations"] += 1
            return "escalate"
        if depth <= cfg.low_water * cfg.queue_depth and self.level > 0:
            self.level -= 1
            self._counters["relaxations"] += 1
            return "relax"
        return None

    def note_overload(self) -> None:
        """Record one queue-full encounter (emitted as an overload event)."""
        self._counters["overload_events"] += 1

    def note_tick_dropped(self) -> None:
        """Record one whole tick discarded at a full queue (drop policy)."""
        self._counters["ticks_dropped"] += 1

    # -- admission ------------------------------------------------------------

    @staticmethod
    def _key(update) -> int:
        return update.entity_id * 2 + (update.kind is EntityKind.OBJECT)

    @staticmethod
    def _fingerprint(update) -> tuple:
        return (
            update.loc.x,
            update.loc.y,
            getattr(update, "range_width", 0.0),
            getattr(update, "range_height", 0.0),
        )

    def admit(self, batch: TickBatch) -> TickBatch:
        """Apply the current ladder level to one incoming tick.

        At level >= 2, heartbeat-only updates (identical position and
        window to the entity's previous report) are dropped; the tick
        record itself always survives — it carries the clock, and an
        empty tick is a valid (cheap) one.
        """
        self._counters["ticks_admitted"] += 1
        last = self._last_report
        if self.level >= 2:
            kept = []
            for update in batch.updates:
                key = self._key(update)
                fp = self._fingerprint(update)
                if last.get(key) == fp:
                    self._counters["heartbeats_dropped"] += 1
                else:
                    last[key] = fp
                    kept.append(update)
            if len(kept) != len(batch.updates):
                return TickBatch(batch.t, kept)
            return batch
        for update in batch.updates:
            last[self._key(update)] = self._fingerprint(update)
        return batch

    # -- reporting ------------------------------------------------------------

    def counters(self) -> Dict[str, Any]:
        """``bp_``-prefixed cumulative counters plus the live level."""
        out = {f"bp_{name}": value for name, value in self._counters.items()}
        out["bp_level"] = self.level
        return out

    def snapshot_state(self) -> Dict[str, Any]:
        """Resumable controller state (counters and ladder position).

        The heartbeat history intentionally restarts empty: after a resume
        every entity's first report is treated as fresh, which only errs
        toward keeping updates.
        """
        return {"level": self.level, "counters": dict(self._counters)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.level = state["level"]
        self._counters.update(state["counters"])
