"""Per-stage hooks: the pipeline's observability and control seam.

A hook sees every stage boundary of every interval.  ``before_stage`` /
``after_stage`` fire around each stage body (``ingest`` fires once per
tick, the rest once per interval), and ``on_interval_end`` fires after the
interval's :class:`~repro.streams.metrics.IntervalStats` record is built —
the place to snapshot per-interval observations without perturbing stage
timings.

Hooks are how cross-cutting concerns attach without touching operator
code: per-stage tracing, memory sampling at the shed boundary, admission
control, progress reporting.  The adaptive shedding controller itself is
wired *inside* the operator's shed phase (so it also runs in off-process
shard workers); :class:`StageTraceHook` here is the generic recording
flavour used by tests and experiments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["PipelineHook", "StageTraceHook"]


class PipelineHook:
    """Base hook: every callback is a no-op; override what you need."""

    def before_stage(self, stage: str, ctx: Any) -> None:
        """Called immediately before ``stage``'s body runs (untimed)."""

    def after_stage(self, stage: str, ctx: Any) -> None:
        """Called immediately after ``stage``'s body returns (untimed)."""

    def on_interval_end(self, ctx: Any, stats: Any) -> None:
        """Called once per interval with the finished stats record."""


class StageTraceHook(PipelineHook):
    """Records the exact stage sequence the pipeline executed.

    ``events`` is a flat list of ``("before"|"after", stage)`` tuples plus
    ``("interval_end", t)`` markers — the ground truth for stage-ordering
    tests and a cheap execution trace for debugging custom plans.
    """

    def __init__(self) -> None:
        self.events: List[Tuple[str, Any]] = []
        #: Per-interval result counts, keyed by evaluation time.
        self.result_counts: Dict[float, int] = {}

    def before_stage(self, stage: str, ctx: Any) -> None:
        self.events.append(("before", stage))

    def after_stage(self, stage: str, ctx: Any) -> None:
        self.events.append(("after", stage))

    def on_interval_end(self, ctx: Any, stats: Any) -> None:
        self.events.append(("interval_end", stats.t))
        self.result_counts[stats.t] = stats.result_count

    def stages_run(self) -> List[str]:
        """The deduplicated stage order of the most recent interval."""
        order: List[str] = []
        for kind, payload in reversed(self.events):
            if kind == "interval_end" and order:
                break
            if kind == "before":
                order.append(payload)
        order.reverse()
        # ingest repeats once per tick; collapse runs for ordering checks.
        collapsed: List[str] = []
        for stage in order:
            if not collapsed or collapsed[-1] != stage:
                collapsed.append(stage)
        return collapsed
