"""Stage plans: what each pipeline stage actually does.

The :class:`~repro.pipeline.pipeline.EvaluationPipeline` owns the interval
*structure* — the tick loop, the stage order, the timing, the stats and
sink bookkeeping.  A :class:`StagePlan` supplies the stage *bodies*: how
tuples reach the operator(s), how the Δ-triggered join runs, and how the
finished interval is described as an
:class:`~repro.streams.metrics.IntervalStats` record.

Two plans cover the two execution shapes:

* :class:`OperatorPlan` — one in-process operator (the classic
  ``StreamEngine`` shape).  Staged operators (those overriding
  ``join_phase``) get true per-phase stage execution; legacy
  evaluate()-only operators run their whole evaluation inside the join
  stage and keep their self-reported timings.
* ``ShardedStagePlan`` (in :mod:`repro.parallel.engine`) — routing +
  scatter/gather over K shard operators, merge in the post-join stage.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Sequence

from ..streams.metrics import IntervalStats
from ..streams.operator import ContinuousJoinOperator
from .context import EvaluationContext

__all__ = ["StagePlan", "OperatorPlan"]


class StagePlan(abc.ABC):
    """The stage bodies of one evaluation pipeline."""

    def begin_interval(self, ctx: EvaluationContext) -> None:
        """Reset plan-private per-interval accounting (optional)."""

    @abc.abstractmethod
    def ingest(self, ctx: EvaluationContext, updates: Sequence[Any]) -> None:
        """Deliver one tick's updates to the operator(s)."""

    def pre_join_maintenance(self, ctx: EvaluationContext) -> None:
        """Δ-boundary maintenance deferred from ingest (default: none).

        In-process operators maintain state per tuple inside ``ingest``
        (the paper's pre-join maintenance runs as tuples arrive), so this
        stage is an empty, hookable seam — batched/deferred maintenance
        strategies attach here without re-plumbing the loop.
        """

    @abc.abstractmethod
    def join(self, ctx: EvaluationContext) -> None:
        """Run the Δ-triggered join.  Sets ``ctx.matches`` (directly, or
        leaves it for a later stage such as a sharded merge)."""

    def shed(self, ctx: EvaluationContext) -> None:
        """Load-shedding control boundary (default: none)."""

    def post_join_maintenance(self, ctx: EvaluationContext) -> None:
        """Post-join upkeep — cluster maintenance, or a sharded merge."""

    def emit(self, ctx: EvaluationContext) -> None:
        """Deliver the interval's answers to the sink."""
        ctx.sink.accept(ctx.matches, ctx.now)

    @abc.abstractmethod
    def interval_stats(self, ctx: EvaluationContext) -> IntervalStats:
        """Describe the finished interval (engine-flavour specific)."""

    def counters(self, ctx: EvaluationContext) -> Dict[str, Any]:
        """Operator counter snapshot to record into the run stats."""
        return {}


class OperatorPlan(StagePlan):
    """Single in-process operator: the ``StreamEngine`` execution shape."""

    def __init__(self, operator: ContinuousJoinOperator) -> None:
        self.rebind(operator)

    def rebind(self, operator: ContinuousJoinOperator) -> None:
        """Point the plan at (a restored copy of) its operator.

        Checkpoint restore swaps the operator object wholesale; rebinding
        re-derives the staged flag so a restored legacy operator keeps its
        evaluate()-in-join execution shape.
        """
        self.operator = operator
        #: Whether the operator implements the phase decomposition.  When
        #: it does not, its whole evaluate() runs inside the join stage
        #: and its self-reported timings are kept verbatim.
        self.staged = (
            type(operator).join_phase is not ContinuousJoinOperator.join_phase
        )

    def ingest(self, ctx: EvaluationContext, updates: Sequence[Any]) -> None:
        # One tick per call: operators with a batched ingest path process
        # the tick as a group; the default is the per-update loop.
        self.operator.ingest_batch(updates)

    def join(self, ctx: EvaluationContext) -> None:
        ctx.matches = self.operator.join_phase(ctx.now)

    def shed(self, ctx: EvaluationContext) -> None:
        self.operator.shed_phase(ctx.now)

    def post_join_maintenance(self, ctx: EvaluationContext) -> None:
        self.operator.post_join_phase(ctx.now)

    def interval_stats(self, ctx: EvaluationContext) -> IntervalStats:
        operator = self.operator
        if self.staged:
            # The pipeline timed the phases; mirror them onto the legacy
            # attributes so direct readers stay consistent.
            operator.last_join_seconds = ctx.stage_timers["join"].seconds
            operator.last_maintenance_seconds = ctx.seconds(
                "shed", "post_join_maintenance"
            )
        return IntervalStats(
            t=ctx.now,
            generate_seconds=ctx.generate_timer.seconds,
            ingest_seconds=ctx.seconds("ingest", "pre_join_maintenance"),
            join_seconds=operator.last_join_seconds,
            maintenance_seconds=operator.last_maintenance_seconds,
            result_count=len(ctx.matches),
            tuple_count=ctx.tuple_count,
            stage_seconds=ctx.stage_seconds(),
        )

    def counters(self, ctx: EvaluationContext) -> Dict[str, Any]:
        return self.operator.join_counters()
