"""The evaluation context: per-interval state shared by pipeline stages.

One :class:`EvaluationContext` lives for the whole run.  Each Δ interval it
is re-armed (:meth:`begin_interval`), threaded through every stage body and
hook, and finally read off into an
:class:`~repro.streams.metrics.IntervalStats` record by the active plan.
It is the single carrier of the clock, the engine configuration, the
per-stage timers, the interval's answers, and plan-private scratch — so
stage bodies and hooks need no other channel to communicate.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..streams.metrics import Timer
from ..streams.results import QueryMatch

__all__ = ["STAGES", "EvaluationContext"]

#: The fixed stage order of one Δ evaluation interval.  ``ingest`` runs
#: once per tick (tuples must reach the operators as they arrive); the
#: remaining stages run once per interval at the Δ boundary.
STAGES = (
    "ingest",
    "pre_join_maintenance",
    "join",
    "shed",
    "post_join_maintenance",
    "emit",
)


class EvaluationContext:
    """Mutable state of the interval currently being evaluated."""

    def __init__(self, config: Any, sink: Any) -> None:
        #: Engine clocking parameters (``delta``/``tick``).
        self.config = config
        #: Where :class:`~repro.pipeline.plan.StagePlan.emit` delivers.
        self.sink = sink
        #: Simulation time of the Δ boundary (set before the join stage).
        self.now = 0.0
        #: Zero-based index of the interval being evaluated.
        self.interval_index = 0
        #: Tuples the source produced this interval.
        self.tuple_count = 0
        #: The interval's answers; set by the join (or merge) stage and
        #: consumed by the emit stage.
        self.matches: List[QueryMatch] = []
        #: Workload-production cost (kept out of the stage breakdown).
        self.generate_timer = Timer()
        #: One accumulating timer per stage, reset each interval.
        self.stage_timers: Dict[str, Timer] = {name: Timer() for name in STAGES}
        #: Run-cumulative per-stage seconds.
        self.run_stage_seconds: Dict[str, float] = {name: 0.0 for name in STAGES}
        #: Plan-private per-interval scratch (cleared each interval); hooks
        #: may also leave observations here for experiment code to read.
        self.scratch: Dict[str, Any] = {}

    def begin_interval(self) -> None:
        """Re-arm the context for the next Δ interval."""
        self.tuple_count = 0
        self.matches = []
        self.generate_timer.seconds = 0.0
        for timer in self.stage_timers.values():
            timer.seconds = 0.0
        self.scratch.clear()

    def finish_interval(self) -> None:
        """Fold the interval's stage timings into the run totals."""
        for name, timer in self.stage_timers.items():
            self.run_stage_seconds[name] += timer.seconds
        self.interval_index += 1

    def stage_seconds(self) -> Dict[str, float]:
        """This interval's per-stage wall-clock snapshot."""
        return {name: timer.seconds for name, timer in self.stage_timers.items()}

    def seconds(self, *stages: str) -> float:
        """Sum of this interval's wall-clock over the named stages."""
        return sum(self.stage_timers[name].seconds for name in stages)

    def __repr__(self) -> str:
        return (
            f"EvaluationContext(t={self.now}, interval={self.interval_index}, "
            f"{self.tuple_count} tuples, {len(self.matches)} matches)"
        )
