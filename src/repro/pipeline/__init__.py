"""Staged evaluation pipeline: the shared execution loop of both engines.

The paper's per-interval phase structure (§5, §6.1) made explicit:
``ingest`` → ``pre_join_maintenance`` → ``join`` → ``shed`` →
``post_join_maintenance`` → ``emit``, driven by an
:class:`EvaluationContext` carrying the clock, config, per-stage timers
and sink.  ``StreamEngine`` and ``ShardedEngine`` are thin drivers over
one :class:`EvaluationPipeline`; per-stage hooks
(:class:`PipelineHook`) let controllers and instrumentation attach at any
stage boundary without touching operator code.
"""

from .context import STAGES, EvaluationContext
from .hooks import PipelineHook, StageTraceHook
from .pipeline import EvaluationPipeline
from .plan import OperatorPlan, StagePlan

__all__ = [
    "STAGES",
    "EvaluationContext",
    "EvaluationPipeline",
    "OperatorPlan",
    "PipelineHook",
    "StagePlan",
    "StageTraceHook",
]
