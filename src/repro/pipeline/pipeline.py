"""The staged evaluation pipeline — the one interval loop of the system.

The paper runs SCUBA inside CAPE with a fixed per-interval phase structure:
per-tuple pre-join maintenance as tuples arrive, a Δ-triggered join, load
shedding when pressure demands it, post-join maintenance, answers out
(§5, §6.1).  :class:`EvaluationPipeline` is that structure as an explicit,
reusable object:

    tick × N: generate → **ingest**
    Δ boundary: **pre_join_maintenance** → **join** → **shed**
                → **post_join_maintenance** → **emit**

Both engines are thin drivers over it — ``StreamEngine`` with an
:class:`~repro.pipeline.plan.OperatorPlan`, ``ShardedEngine`` with a
``ShardedStagePlan`` — so the tick loop, per-stage timing,
``IntervalStats``/``RunStats`` accounting and sink delivery exist exactly
once.  Hooks fire at every stage boundary (see
:mod:`repro.pipeline.hooks`), giving controllers and instrumentation a
seam that is independent of the operator and of the execution shape.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..streams.engine import EngineConfig
from ..streams.metrics import IntervalStats, RunStats
from ..streams.sink import ResultSink
from .context import STAGES, EvaluationContext
from .hooks import PipelineHook
from .plan import StagePlan

__all__ = ["EvaluationPipeline"]


class EvaluationPipeline:
    """Drives source → staged evaluation → sink, one Δ interval at a time."""

    def __init__(
        self,
        source: Any,
        plan: StagePlan,
        sink: Optional[ResultSink] = None,
        config: Optional[EngineConfig] = None,
        hooks: Iterable[PipelineHook] = (),
        stats: Optional[RunStats] = None,
    ) -> None:
        self.source = source
        self.plan = plan
        self.sink = sink if sink is not None else ResultSink()
        self.config = config if config is not None else EngineConfig()
        self.hooks = list(hooks)
        self.stats = stats if stats is not None else RunStats()
        self.context = EvaluationContext(self.config, self.sink)

    def add_hook(self, hook: PipelineHook) -> None:
        self.hooks.append(hook)

    def _run_stage(self, name: str, body, *args: Any) -> None:
        """One stage execution: hooks around a timed body."""
        ctx = self.context
        for hook in self.hooks:
            hook.before_stage(name, ctx)
        with ctx.stage_timers[name]:
            body(ctx, *args)
        for hook in self.hooks:
            hook.after_stage(name, ctx)

    def run_interval(self) -> IntervalStats:
        """Advance one full Δ interval through every stage."""
        ctx = self.context
        plan = self.plan
        ctx.begin_interval()
        plan.begin_interval(ctx)
        for _ in range(self.config.ticks_per_interval):
            with ctx.generate_timer:
                updates = self.source.tick(self.config.tick)
            ctx.tuple_count += len(updates)
            self._run_stage("ingest", plan.ingest, updates)
        ctx.now = self.source.time
        self._run_stage("pre_join_maintenance", plan.pre_join_maintenance)
        self._run_stage("join", plan.join)
        self._run_stage("shed", plan.shed)
        self._run_stage("post_join_maintenance", plan.post_join_maintenance)
        self._run_stage("emit", plan.emit)
        ctx.finish_interval()
        stats = plan.interval_stats(ctx)
        self.stats.add(stats)
        self.stats.record_counters(plan.counters(ctx))
        # A bounded sink that evicted answers must say so in the run
        # record: silent loss would make long-run result counts look
        # complete when they are not.
        dropped = getattr(self.sink, "dropped_matches", 0)
        if dropped:
            self.stats.counters["sink_dropped_matches"] = dropped
        for hook in self.hooks:
            hook.on_interval_end(ctx, stats)
        return stats

    def run(self, intervals: int) -> RunStats:
        """Run ``intervals`` consecutive Δ intervals and return the stats."""
        if intervals < 0:
            raise ValueError(f"intervals must be non-negative, got {intervals}")
        for _ in range(intervals):
            self.run_interval()
        return self.stats

    # -- checkpoint barrier --------------------------------------------------
    #
    # The pipeline's accounting state is only resumable *between* intervals
    # (mid-interval there are half-ingested ticks and armed timers), so
    # checkpointing callers snapshot right after run_interval() returns.
    # Plan/operator state is snapshotted separately by the engines — the
    # pipeline owns only the clock and the run accounting.

    def snapshot_state(self) -> dict:
        """Accounting state at an interval barrier (picklable)."""
        return {
            "interval_index": self.context.interval_index,
            "run_stage_seconds": dict(self.context.run_stage_seconds),
            "stats": self.stats,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`, applied before the next
        interval runs."""
        self.context.interval_index = state["interval_index"]
        self.context.run_stage_seconds.update(state["run_stage_seconds"])
        self.stats = state["stats"]

    @property
    def stage_names(self) -> tuple:
        return STAGES
