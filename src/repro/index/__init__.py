"""Spatial indexing structures shared by SCUBA and the regular baseline."""

from .grid import CellKey, SpatialGrid

__all__ = ["CellKey", "SpatialGrid"]
