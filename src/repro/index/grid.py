"""Uniform spatial grid index.

Both sides of the paper's comparison stand on the same index structure:

* **SCUBA's ClusterGrid** (§4.1) — "a spatial grid table dividing the data
  space into N×N grid cells [maintaining] for each grid cell a list of
  cluster ids of moving clusters that overlap with that cell"; and
* the **regular grid-based operator** (§6) — objects and queries hashed by
  location into the same kind of grid, joined cell by cell.

:class:`SpatialGrid` is the shared implementation: a dict from flat cell
index to a set of member keys, with geometric helpers mapping points,
circles and rectangles to the cells they touch.  Coordinates outside the
world bounds are clamped to the border cells, so late entities that drift
marginally out of bounds are still indexed.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from ..geometry import Rect

__all__ = ["SpatialGrid", "CellKey"]

# Cells are addressed by a flattened integer index (column-major is an
# implementation detail; callers treat keys as opaque).
CellKey = int


class SpatialGrid:
    """An ``nx × ny`` uniform grid over a bounded world."""

    def __init__(self, bounds: Rect, nx: int, ny: int | None = None) -> None:
        if nx < 1 or (ny is not None and ny < 1):
            raise ValueError(f"grid dimensions must be >= 1, got {nx}x{ny}")
        self.bounds = bounds
        self.nx = nx
        self.ny = ny if ny is not None else nx
        self._cell_w = bounds.width / self.nx
        self._cell_h = bounds.height / self.ny
        self._cells: Dict[CellKey, Set[Hashable]] = {}
        # Per-cell sorted member tuples, invalidated on membership change:
        # the join sweep visits every occupied cell every Δ, but most cell
        # populations are stable between sweeps, so the sort is amortised.
        self._sorted_cache: Dict[CellKey, Tuple[Hashable, ...]] = {}
        # Dirty-cell tracking for the incremental join sweep: cells whose
        # membership changed since the last clear_dirty().  Off by default —
        # non-incremental consumers never clear the set, so tracking would
        # only accumulate garbage.
        self._track_dirty = False
        self._dirty_cells: Set[CellKey] = set()

    # -- geometry → cells ---------------------------------------------------

    def _col(self, x: float) -> int:
        col = int((x - self.bounds.min_x) / self._cell_w)
        return min(max(col, 0), self.nx - 1)

    def _row(self, y: float) -> int:
        row = int((y - self.bounds.min_y) / self._cell_h)
        return min(max(row, 0), self.ny - 1)

    def cell_of(self, x: float, y: float) -> CellKey:
        """The cell containing point ``(x, y)`` (clamped to the border)."""
        return self._row(y) * self.nx + self._col(x)

    def _low_col(self, x: float) -> int:
        """Leftmost column whose *closed* rectangle contains ``x``.

        Binning is half-open, but cell rectangles are closed: a coordinate
        sitting exactly on a cell's lower edge also touches the cell below.
        Range scans must start there or boundary-touching geometry loses
        its lower neighbour.
        """
        col = self._col(x)
        if col > 0 and x <= self.bounds.min_x + col * self._cell_w:
            col -= 1
        return col

    def _low_row(self, y: float) -> int:
        """Bottom row whose closed rectangle contains ``y`` (see _low_col)."""
        row = self._row(y)
        if row > 0 and y <= self.bounds.min_y + row * self._cell_h:
            row -= 1
        return row

    def cells_for_circle(self, cx: float, cy: float, radius: float) -> List[CellKey]:
        """All cells whose rectangle intersects the closed disc.

        A bounding-box sweep with a per-cell disc test: exact, and cheap
        because cluster radii are small relative to the world.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        col_lo = self._low_col(cx - radius)
        col_hi = self._col(cx + radius)
        row_lo = self._low_row(cy - radius)
        row_hi = self._row(cy + radius)
        r_sq = radius * radius
        keys: List[CellKey] = []
        for row in range(row_lo, row_hi + 1):
            cell_min_y = self.bounds.min_y + row * self._cell_h
            near_y = min(max(cy, cell_min_y), cell_min_y + self._cell_h)
            dy = cy - near_y
            for col in range(col_lo, col_hi + 1):
                cell_min_x = self.bounds.min_x + col * self._cell_w
                near_x = min(max(cx, cell_min_x), cell_min_x + self._cell_w)
                dx = cx - near_x
                if dx * dx + dy * dy <= r_sq:
                    keys.append(row * self.nx + col)
        # The centre's own cell is always included even for radius 0.
        if not keys:
            keys.append(self.cell_of(cx, cy))
        return keys

    def cells_for_rect(self, rect: Rect) -> List[CellKey]:
        """All cells intersecting ``rect``."""
        col_lo = self._low_col(rect.min_x)
        col_hi = self._col(rect.max_x)
        row_lo = self._low_row(rect.min_y)
        row_hi = self._row(rect.max_y)
        return [
            row * self.nx + col
            for row in range(row_lo, row_hi + 1)
            for col in range(col_lo, col_hi + 1)
        ]

    # -- membership ----------------------------------------------------------

    def insert(self, key: Hashable, cells: Iterable[CellKey]) -> None:
        """Register ``key`` in every cell of ``cells``."""
        for cell in cells:
            bucket = self._cells.get(cell)
            if bucket is None:
                bucket = set()
                self._cells[cell] = bucket
            elif key in bucket:
                continue
            bucket.add(key)
            self._sorted_cache.pop(cell, None)
            if self._track_dirty:
                self._dirty_cells.add(cell)

    def remove(self, key: Hashable, cells: Iterable[CellKey]) -> None:
        """Unregister ``key`` from every cell of ``cells``.

        Cells that become empty are deleted so memory accounting reflects
        live occupancy only.
        """
        for cell in cells:
            bucket = self._cells.get(cell)
            if bucket is None or key not in bucket:
                continue
            bucket.discard(key)
            self._sorted_cache.pop(cell, None)
            if self._track_dirty:
                self._dirty_cells.add(cell)
            if not bucket:
                del self._cells[cell]

    def relocate(
        self,
        key: Hashable,
        old_cells: Iterable[CellKey],
        new_cells: Iterable[CellKey],
    ) -> None:
        """Move ``key`` from ``old_cells`` to ``new_cells`` (set-diff based)."""
        old = set(old_cells)
        new = set(new_cells)
        self.remove(key, old - new)
        self.insert(key, new - old)

    def members(self, cell: CellKey) -> Set[Hashable]:
        """Keys registered in ``cell`` (empty set when vacant)."""
        return self._cells.get(cell, _EMPTY_SET)

    def sorted_members(self, cell: CellKey) -> Tuple[Hashable, ...]:
        """Keys of ``cell`` in sorted order, cached until the cell changes.

        Deterministic sweep order without re-sorting every occupied cell on
        every evaluation (the pre-kernel hot-path cost this replaces).
        """
        cached = self._sorted_cache.get(cell)
        if cached is None:
            bucket = self._cells.get(cell)
            if not bucket:
                return ()
            cached = tuple(sorted(bucket))
            self._sorted_cache[cell] = cached
        return cached

    def occupied_cells(self) -> Iterator[Tuple[CellKey, Set[Hashable]]]:
        """Iterate non-empty cells in deterministic (flat-index) order."""
        for cell in sorted(self._cells):
            yield cell, self._cells[cell]

    def sweep_cells(self) -> Iterator[Tuple[Hashable, ...]]:
        """Sorted member tuples of every multi-member cell, in flat order.

        The pair-enumeration feed of the join sweep: exactly the cells and
        member order :meth:`occupied_cells` + :meth:`sorted_members`
        produce, minus the single-member cells no pair can come from and
        the per-cell dict probes of the two-call protocol.
        """
        cells = self._cells
        sorted_members = self.sorted_members
        for cell in sorted(cells):
            if len(cells[cell]) >= 2:
                yield sorted_members(cell)

    def sweep_buckets(self) -> Iterator[Set[Hashable]]:
        """Raw member sets of every multi-member cell, in flat order.

        The unsorted sibling of :meth:`sweep_cells` for consumers that
        normalise member order themselves (the vectorised pair sweep
        row-sorts whole cell batches in one ndarray operation): same
        cells, same visit order, no per-cell sort or tuple cache.  The
        yielded sets are the live buckets — do not mutate them.
        """
        cells = self._cells
        for cell in sorted(cells):
            bucket = cells[cell]
            if len(bucket) >= 2:
                yield bucket

    # -- dirty-cell tracking -------------------------------------------------

    def enable_dirty_tracking(self) -> None:
        """Start recording membership-dirty cells (incremental sweep).

        From this point every :meth:`insert`/:meth:`remove` that actually
        changes a cell's membership marks the cell dirty until the consumer
        calls :meth:`clear_dirty`.  Enabling mid-flight is safe only if the
        consumer treats *every* cell as dirty on its first sweep (the
        incremental operator does: it has no memos yet).
        """
        self._track_dirty = True

    @property
    def dirty_tracking_enabled(self) -> bool:
        return self._track_dirty

    def dirty_cells(self) -> Set[CellKey]:
        """Cells whose membership changed since the last :meth:`clear_dirty`.

        The returned set is live — consumers must not mutate it; call
        :meth:`clear_dirty` when the sweep has consumed it.
        """
        return self._dirty_cells

    def clear_dirty(self) -> None:
        self._dirty_cells.clear()

    def clear(self) -> None:
        self._cells.clear()
        self._sorted_cache.clear()
        self._dirty_cells.clear()

    @property
    def occupied_cell_count(self) -> int:
        return len(self._cells)

    @property
    def entry_count(self) -> int:
        """Total (key, cell) registrations — the directory size."""
        return sum(len(bucket) for bucket in self._cells.values())

    def __repr__(self) -> str:
        return (
            f"SpatialGrid({self.nx}x{self.ny}, "
            f"{self.occupied_cell_count} occupied cells, "
            f"{self.entry_count} entries)"
        )


_EMPTY_SET: Set[Hashable] = frozenset()  # type: ignore[assignment]
