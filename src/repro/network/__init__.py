"""Road-network substrate.

Provides the constrained motion space of the paper's model (§2): connection
nodes joined by straight road edges with per-class speed limits, synthetic
city builders standing in for the Worcester road map, shortest-path routing,
and JSON serialisation.
"""

from .builder import DEFAULT_BOUNDS, grid_city, radial_city, random_city
from .edge import EdgeId, RoadClass, RoadEdge
from .graph import EdgePosition, RoadNetwork
from .io import load_network, network_from_dict, network_to_dict, save_network
from .node import ConnectionNode, NodeId
from .path import Router, path_length, shortest_path

__all__ = [
    "DEFAULT_BOUNDS",
    "ConnectionNode",
    "EdgeId",
    "EdgePosition",
    "NodeId",
    "RoadClass",
    "RoadEdge",
    "RoadNetwork",
    "Router",
    "grid_city",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "path_length",
    "radial_city",
    "random_city",
    "save_network",
    "shortest_path",
]
