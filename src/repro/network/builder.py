"""Synthetic city builders.

The paper feeds the road map of Worcester, USA into Brinkhoff's generator.
That shapefile is not redistributable, so we synthesise road networks with
the structural properties SCUBA's evaluation actually depends on:

* a connected planar graph of connection nodes;
* a mix of road classes — few long, fast roads (highways/arterials) where
  connection nodes are far apart, and many short, slow local streets —
  which produces the speed/destination skew that makes entities clusterable
  (paper §3.1 argues exactly this structure for real cities);
* a bounded rectangular extent that the spatial grid partitions.

Three builders are provided.  ``grid_city`` is the default workload
substrate (a Manhattan-style lattice with arterial avenues); ``radial_city``
models a ring-and-spoke European layout; ``random_city`` grows a seeded
random planar-ish network for robustness testing.
"""

from __future__ import annotations

import math
import random
from typing import List

from ..geometry import Point, Rect
from .edge import RoadClass
from .graph import RoadNetwork

__all__ = ["grid_city", "radial_city", "random_city", "DEFAULT_BOUNDS"]

#: Default world extent: 10,000 × 10,000 spatial units.  With the paper's
#: 100×100 grid this makes each grid cell 100 units — the same magnitude as
#: the default distance threshold Θ_D = 100, matching the paper's setup.
DEFAULT_BOUNDS = Rect(0.0, 0.0, 10_000.0, 10_000.0)


def grid_city(
    rows: int = 11,
    cols: int = 11,
    bounds: Rect = DEFAULT_BOUNDS,
    arterial_every: int = 5,
    interchange_every: int = 4,
) -> RoadNetwork:
    """A Manhattan-style lattice city.

    ``rows × cols`` connection nodes are placed on a regular lattice over
    ``bounds`` and joined by horizontal and vertical streets.  Every
    ``arterial_every``-th row and column is an arterial; the two central
    axes are highways.

    Highways behave like real limited-access roads: along the central
    axes, edges span ``interchange_every`` lattice steps, so connection
    nodes (interchanges) are far apart and through traffic keeps its
    ``cnloc`` — and therefore its moving cluster — for a long stretch
    (paper §3.1: "on the larger roads connection nodes would be far apart
    from each other").  Lattice nodes under a highway span are overpasses:
    cross streets pass through them, the highway does not stop.  The
    result is connected by construction.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid city needs at least a 2x2 lattice")
    if interchange_every < 1:
        raise ValueError(f"interchange_every must be >= 1, got {interchange_every}")
    network = RoadNetwork(bounds)
    dx = bounds.width / (cols - 1)
    dy = bounds.height / (rows - 1)
    ids = [
        [
            network.add_node(Point(bounds.min_x + c * dx, bounds.min_y + r * dy)).node_id
            for c in range(cols)
        ]
        for r in range(rows)
    ]
    mid_row = rows // 2
    mid_col = cols // 2

    def class_for(r: int, c: int, horizontal: bool) -> RoadClass:
        if horizontal:
            if r % arterial_every == 0:
                return RoadClass.ARTERIAL
        else:
            if c % arterial_every == 0:
                return RoadClass.ARTERIAL
        return RoadClass.LOCAL

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols and r != mid_row:
                network.add_edge(ids[r][c], ids[r][c + 1], class_for(r, c, True))
            if r + 1 < rows and c != mid_col:
                network.add_edge(ids[r][c], ids[r + 1][c], class_for(r, c, False))

    # Central-axis highways with sparse interchanges.  The final span is
    # shortened to reach the border even when the lattice size is not a
    # multiple of the interchange spacing.
    def highway_stops(limit: int, crossing: int) -> list:
        stops = set(range(0, limit, interchange_every))
        stops.add(limit - 1)
        # The two highways must interchange where they cross, or the
        # crossing node (which carries no local edges) would be isolated.
        stops.add(crossing)
        return sorted(stops)

    col_stops = highway_stops(cols, mid_col)
    for a, b in zip(col_stops, col_stops[1:]):
        network.add_edge(ids[mid_row][a], ids[mid_row][b], RoadClass.HIGHWAY)
    row_stops = highway_stops(rows, mid_row)
    for a, b in zip(row_stops, row_stops[1:]):
        network.add_edge(ids[a][mid_col], ids[b][mid_col], RoadClass.HIGHWAY)
    return network


def radial_city(
    rings: int = 4,
    spokes: int = 8,
    bounds: Rect = DEFAULT_BOUNDS,
) -> RoadNetwork:
    """A ring-and-spoke city: a centre, concentric ring roads, radial spokes.

    Spokes are arterials (the innermost segments are highways); ring roads
    are local except the outermost ring, which is an arterial beltway.
    """
    if rings < 1 or spokes < 3:
        raise ValueError("radial city needs >= 1 ring and >= 3 spokes")
    network = RoadNetwork(bounds)
    center = bounds.center
    max_radius = 0.45 * min(bounds.width, bounds.height)
    center_node = network.add_node(center)
    ring_nodes: List[List[int]] = []
    for ring in range(1, rings + 1):
        radius = max_radius * ring / rings
        nodes = []
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            nodes.append(
                network.add_node(
                    Point(
                        center.x + radius * math.cos(angle),
                        center.y + radius * math.sin(angle),
                    )
                ).node_id
            )
        ring_nodes.append(nodes)
    for spoke in range(spokes):
        # Spoke segments: center -> ring 1 -> ... -> outermost ring.
        network.add_edge(center_node.node_id, ring_nodes[0][spoke], RoadClass.HIGHWAY)
        for ring in range(rings - 1):
            road_class = RoadClass.HIGHWAY if ring == 0 else RoadClass.ARTERIAL
            network.add_edge(
                ring_nodes[ring][spoke], ring_nodes[ring + 1][spoke], road_class
            )
    for ring in range(rings):
        road_class = RoadClass.ARTERIAL if ring == rings - 1 else RoadClass.LOCAL
        for spoke in range(spokes):
            network.add_edge(
                ring_nodes[ring][spoke],
                ring_nodes[ring][(spoke + 1) % spokes],
                road_class,
            )
    return network


def random_city(
    node_count: int = 60,
    bounds: Rect = DEFAULT_BOUNDS,
    seed: int = 7,
    neighbor_links: int = 3,
) -> RoadNetwork:
    """A seeded random city.

    Nodes are scattered uniformly over ``bounds``; each node is linked to
    its ``neighbor_links`` nearest neighbours (producing a planar-ish local
    street pattern), then any remaining components are stitched together by
    arterial roads between their closest node pairs so the result is always
    connected.  Long edges are promoted to arterials, the longest decile to
    highways, mimicking how real arterials span a city.
    """
    if node_count < 2:
        raise ValueError("random city needs at least 2 nodes")
    rng = random.Random(seed)
    network = RoadNetwork(bounds)
    nodes = [
        network.add_node(
            Point(
                bounds.min_x + rng.random() * bounds.width,
                bounds.min_y + rng.random() * bounds.height,
            )
        )
        for _ in range(node_count)
    ]

    # Link each node to its nearest neighbours.
    for node in nodes:
        ranked = sorted(
            (other for other in nodes if other.node_id != node.node_id),
            key=lambda other: node.location.distance_sq_to(other.location),
        )
        for other in ranked[:neighbor_links]:
            if network.find_edge(node.node_id, other.node_id) is None:
                network.add_edge(node.node_id, other.node_id, RoadClass.LOCAL)

    # Stitch disconnected components with arterial bridges.
    while not network.is_connected():
        components = _components(network)
        main, rest = components[0], components[1:]
        best = None
        for component in rest:
            for a in main:
                for b in component:
                    d = network.node(a).location.distance_sq_to(
                        network.node(b).location
                    )
                    if best is None or d < best[0]:
                        best = (d, a, b)
        assert best is not None
        network.add_edge(best[1], best[2], RoadClass.ARTERIAL)

    # Promote the longest edges to faster classes.
    edges = sorted(network.edges(), key=lambda e: e.length, reverse=True)
    highway_cut = max(1, len(edges) // 10)
    arterial_cut = max(1, len(edges) // 4)
    for i, edge in enumerate(edges):
        if i < highway_cut:
            edge.road_class = RoadClass.HIGHWAY
        elif i < arterial_cut and edge.road_class is RoadClass.LOCAL:
            edge.road_class = RoadClass.ARTERIAL
    return network


def _components(network: RoadNetwork) -> List[List[int]]:
    """Connected components as node-id lists, largest first."""
    seen: set = set()
    components: List[List[int]] = []
    for node in network.nodes():
        if node.node_id in seen:
            continue
        component = [node.node_id]
        seen.add(node.node_id)
        stack = [node.node_id]
        while stack:
            current = stack.pop()
            for neighbor in network.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.append(neighbor)
                    stack.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components
