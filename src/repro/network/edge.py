"""Road edges.

Edges are undirected for connectivity purposes (traffic flows both ways)
but are traversed in a concrete direction by a moving entity.  Each edge
carries a *road class* that fixes its speed limit; the mix of classes is
what produces the realistic speed skew the paper leans on — fast highways
with far-apart connection nodes, slow local roads with close ones (§3.1).
"""

from __future__ import annotations

import enum

from .node import NodeId

__all__ = ["RoadClass", "RoadEdge", "EdgeId"]

EdgeId = int


class RoadClass(enum.Enum):
    """Functional class of a road, fixing its speed limit.

    Speed limits are in spatial units per time unit and are calibrated so
    that with the default world of 10,000×10,000 units an object crosses a
    grid cell of the paper's 100×100 grid in one to a few time units.
    """

    HIGHWAY = "highway"
    ARTERIAL = "arterial"
    LOCAL = "local"

    @property
    def speed_limit(self) -> float:
        return _SPEED_LIMITS[self]

    @property
    def min_speed(self) -> float:
        """Slowest plausible travel speed on this class of road."""
        return _MIN_SPEEDS[self]


_SPEED_LIMITS = {
    RoadClass.HIGHWAY: 100.0,
    RoadClass.ARTERIAL: 60.0,
    RoadClass.LOCAL: 30.0,
}

_MIN_SPEEDS = {
    RoadClass.HIGHWAY: 60.0,
    RoadClass.ARTERIAL: 30.0,
    RoadClass.LOCAL: 10.0,
}


class RoadEdge:
    """An undirected road between two connection nodes.

    ``length`` is the Euclidean distance between the endpoint nodes (roads
    are straight segments in the piecewise-linear motion model).
    """

    __slots__ = ("edge_id", "u", "v", "length", "road_class")

    def __init__(
        self,
        edge_id: EdgeId,
        u: NodeId,
        v: NodeId,
        length: float,
        road_class: RoadClass = RoadClass.LOCAL,
    ) -> None:
        if u == v:
            raise ValueError(f"self-loop edge at node {u}")
        if length <= 0:
            raise ValueError(f"edge length must be positive, got {length}")
        self.edge_id = edge_id
        self.u = u
        self.v = v
        self.length = float(length)
        self.road_class = road_class

    def other_endpoint(self, node: NodeId) -> NodeId:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of edge {self.edge_id}")

    @property
    def speed_limit(self) -> float:
        return self.road_class.speed_limit

    def __repr__(self) -> str:
        return (
            f"RoadEdge({self.edge_id}, {self.u}<->{self.v}, "
            f"len={self.length:g}, {self.road_class.value})"
        )
