"""Connection nodes of the road network.

The paper's motion model (§2) constrains objects to roads "connected by
network nodes, also known as *connection nodes*".  A connection node is the
unit of *direction* in SCUBA: every moving entity reports the connection
node it is currently heading to (``cnloc``), and two entities are eligible
for the same moving cluster only when their ``cnloc`` agree.
"""

from __future__ import annotations

from ..geometry import Point

__all__ = ["ConnectionNode", "NodeId"]

# Node identifiers are small integers assigned by the network builder.
NodeId = int


class ConnectionNode:
    """A road intersection (or endpoint) with a fixed position."""

    __slots__ = ("node_id", "location")

    def __init__(self, node_id: NodeId, location: Point) -> None:
        self.node_id = node_id
        self.location = location

    def __repr__(self) -> str:
        return f"ConnectionNode({self.node_id}, {self.location!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectionNode):
            return NotImplemented
        return self.node_id == other.node_id and self.location == other.location

    def __hash__(self) -> int:
        return hash(self.node_id)
