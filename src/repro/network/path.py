"""Shortest paths over the road network.

The generator routes entities through the network along travel-time-optimal
paths (fast roads are preferred even when slightly longer, which is what
funnels many entities onto the same highways — the clusterability the paper
exploits).  We implement Dijkstra's algorithm directly on the adjacency
lists rather than converting to an external graph library on every call;
the test suite cross-checks the results against ``networkx``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .edge import RoadEdge
from .graph import RoadNetwork
from .node import NodeId

__all__ = ["shortest_path", "path_length", "Router"]


def _edge_cost(edge: RoadEdge, weight: str) -> float:
    if weight == "distance":
        return edge.length
    if weight == "time":
        return edge.length / edge.speed_limit
    raise ValueError(f"unknown weight {weight!r}; use 'distance' or 'time'")


def shortest_path(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    weight: str = "time",
) -> Optional[List[NodeId]]:
    """Dijkstra shortest path from ``source`` to ``target``.

    Returns the node sequence including both endpoints, or ``None`` when
    ``target`` is unreachable.  ``weight`` selects the edge cost:
    ``"distance"`` (Euclidean length) or ``"time"`` (length / speed limit,
    the default — drivers optimise travel time, not mileage).
    """
    if source == target:
        return [source]
    dist: Dict[NodeId, float] = {source: 0.0}
    prev: Dict[NodeId, NodeId] = {}
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    settled: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        if node == target:
            break
        settled.add(node)
        for edge in network.incident_edges(node):
            neighbor = edge.other_endpoint(node)
            if neighbor in settled:
                continue
            nd = d + _edge_cost(edge, weight)
            if nd < dist.get(neighbor, float("inf")):
                dist[neighbor] = nd
                prev[neighbor] = node
                heapq.heappush(heap, (nd, neighbor))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def path_length(network: RoadNetwork, path: List[NodeId]) -> float:
    """Total Euclidean length of a node path (sum of edge lengths)."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        edge = network.find_edge(u, v)
        if edge is None:
            raise ValueError(f"path uses missing edge {u}-{v}")
        total += edge.length
    return total


class Router:
    """Shortest-path oracle with per-(source, target, weight) memoisation.

    The generator asks for routes between random node pairs; workloads with
    skewed destinations re-request the same pairs constantly, so a small
    cache removes almost all Dijkstra runs after warm-up.
    """

    def __init__(self, network: RoadNetwork, weight: str = "time") -> None:
        self.network = network
        self.weight = weight
        self._cache: Dict[Tuple[NodeId, NodeId], Optional[List[NodeId]]] = {}

    def route(self, source: NodeId, target: NodeId) -> Optional[List[NodeId]]:
        """Shortest node path, memoised.  Returns a copy safe to mutate."""
        key = (source, target)
        if key not in self._cache:
            self._cache[key] = shortest_path(
                self.network, source, target, self.weight
            )
        cached = self._cache[key]
        return None if cached is None else list(cached)

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
