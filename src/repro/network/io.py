"""Road-network serialisation.

Networks round-trip through a plain-dict representation (and from there to
JSON on disk) so that experiment configurations are reproducible artefacts:
a benchmark can pin the exact city it ran on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..geometry import Point, Rect
from .edge import RoadClass
from .graph import RoadNetwork

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT_VERSION = 1


def network_to_dict(network: RoadNetwork) -> Dict[str, Any]:
    """Serialisable representation of ``network``."""
    return {
        "version": _FORMAT_VERSION,
        "bounds": [
            network.bounds.min_x,
            network.bounds.min_y,
            network.bounds.max_x,
            network.bounds.max_y,
        ],
        "nodes": [
            {"id": n.node_id, "x": n.location.x, "y": n.location.y}
            for n in network.nodes()
        ],
        "edges": [
            {
                "id": e.edge_id,
                "u": e.u,
                "v": e.v,
                "class": e.road_class.value,
            }
            for e in network.edges()
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> RoadNetwork:
    """Rebuild a network from :func:`network_to_dict` output.

    Node and edge ids are reassigned sequentially in file order, which the
    serialised order preserves; edge lengths are recomputed from node
    positions (they are derived data).
    """
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported network format version: {version!r}")
    bounds = Rect(*data["bounds"])
    network = RoadNetwork(bounds)
    id_map: Dict[int, int] = {}
    for node_data in data["nodes"]:
        node = network.add_node(Point(node_data["x"], node_data["y"]))
        id_map[node_data["id"]] = node.node_id
    for edge_data in data["edges"]:
        network.add_edge(
            id_map[edge_data["u"]],
            id_map[edge_data["v"]],
            RoadClass(edge_data["class"]),
        )
    return network


def save_network(network: RoadNetwork, path: Union[str, Path]) -> None:
    """Write ``network`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network)), encoding="utf-8")


def load_network(path: Union[str, Path]) -> RoadNetwork:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
