"""The road network graph.

:class:`RoadNetwork` is the substrate every other subsystem stands on: the
generator moves entities along its edges, clusters use its connection nodes
as shared destinations, and the spatial grid partitions its bounding box.

The structure is a plain undirected multigraph kept in adjacency lists.  It
is append-only by design — the paper assumes "the network is stable" (§2),
so there is no edge/node removal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..geometry import Point, Rect, Segment
from .edge import EdgeId, RoadClass, RoadEdge
from .node import ConnectionNode, NodeId

__all__ = ["RoadNetwork", "EdgePosition"]


class EdgePosition:
    """A position on the network: an edge, a travel direction, an offset.

    ``offset`` is the distance already travelled from ``origin`` toward the
    opposite endpoint, in ``[0, edge.length]``.  This is the canonical
    representation of a moving entity's whereabouts; :meth:`location`
    projects it into the plane.
    """

    __slots__ = ("edge", "origin", "offset")

    def __init__(self, edge: RoadEdge, origin: NodeId, offset: float = 0.0) -> None:
        if origin not in (edge.u, edge.v):
            raise ValueError(f"origin {origin} is not an endpoint of {edge!r}")
        if not 0.0 <= offset <= edge.length:
            raise ValueError(
                f"offset {offset} outside [0, {edge.length}] on edge {edge.edge_id}"
            )
        self.edge = edge
        self.origin = origin
        self.offset = float(offset)

    @property
    def destination(self) -> NodeId:
        """The connection node this position is moving toward."""
        return self.edge.other_endpoint(self.origin)

    @property
    def remaining(self) -> float:
        """Distance left to the destination endpoint."""
        return self.edge.length - self.offset

    def __repr__(self) -> str:
        return (
            f"EdgePosition(edge={self.edge.edge_id}, {self.origin}->"
            f"{self.destination}, offset={self.offset:g})"
        )


class RoadNetwork:
    """An undirected road graph of connection nodes and road edges."""

    def __init__(self, bounds: Rect) -> None:
        self.bounds = bounds
        self._nodes: Dict[NodeId, ConnectionNode] = {}
        self._edges: Dict[EdgeId, RoadEdge] = {}
        self._adjacency: Dict[NodeId, List[EdgeId]] = {}
        self._next_node_id: NodeId = 0
        self._next_edge_id: EdgeId = 0

    # -- construction --------------------------------------------------------

    def add_node(self, location: Point) -> ConnectionNode:
        """Create a connection node at ``location`` (must be inside bounds)."""
        if not self.bounds.contains_point(location):
            raise ValueError(f"node location {location!r} outside {self.bounds!r}")
        node = ConnectionNode(self._next_node_id, location)
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []
        self._next_node_id += 1
        return node

    def add_edge(
        self, u: NodeId, v: NodeId, road_class: RoadClass = RoadClass.LOCAL
    ) -> RoadEdge:
        """Create a straight road between existing nodes ``u`` and ``v``."""
        if u not in self._nodes or v not in self._nodes:
            raise KeyError(f"both endpoints must exist: {u}, {v}")
        length = self._nodes[u].location.distance_to(self._nodes[v].location)
        edge = RoadEdge(self._next_edge_id, u, v, length, road_class)
        self._edges[edge.edge_id] = edge
        self._adjacency[u].append(edge.edge_id)
        self._adjacency[v].append(edge.edge_id)
        self._next_edge_id += 1
        return edge

    # -- lookup ---------------------------------------------------------------

    def node(self, node_id: NodeId) -> ConnectionNode:
        return self._nodes[node_id]

    def edge(self, edge_id: EdgeId) -> RoadEdge:
        return self._edges[edge_id]

    def nodes(self) -> Iterable[ConnectionNode]:
        return self._nodes.values()

    def edges(self) -> Iterable[RoadEdge]:
        return self._edges.values()

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def incident_edges(self, node_id: NodeId) -> List[RoadEdge]:
        """All road edges touching ``node_id``."""
        return [self._edges[eid] for eid in self._adjacency[node_id]]

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Connection nodes one edge away from ``node_id``."""
        return [
            self._edges[eid].other_endpoint(node_id)
            for eid in self._adjacency[node_id]
        ]

    def degree(self, node_id: NodeId) -> int:
        return len(self._adjacency[node_id])

    def find_edge(self, u: NodeId, v: NodeId) -> Optional[RoadEdge]:
        """The first edge between ``u`` and ``v``, or None."""
        for eid in self._adjacency.get(u, ()):
            edge = self._edges[eid]
            if edge.other_endpoint(u) == v:
                return edge
        return None

    # -- geometry --------------------------------------------------------------

    def edge_segment(self, edge: RoadEdge, origin: NodeId) -> Segment:
        """The edge as a directed segment starting at ``origin``."""
        start = self._nodes[origin].location
        end = self._nodes[edge.other_endpoint(origin)].location
        return Segment(start, end)

    def position_location(self, pos: EdgePosition) -> Point:
        """Planar location of an :class:`EdgePosition`."""
        return self.edge_segment(pos.edge, pos.origin).point_at(pos.offset)

    def node_location(self, node_id: NodeId) -> Point:
        return self._nodes[node_id].location

    def nearest_node(self, p: Point) -> ConnectionNode:
        """Connection node closest to ``p`` (linear scan; setup-time only)."""
        if not self._nodes:
            raise ValueError("network has no nodes")
        return min(self._nodes.values(), key=lambda n: n.location.distance_sq_to(p))

    # -- integrity ---------------------------------------------------------------

    def is_connected(self) -> bool:
        """True when every node is reachable from every other node.

        Generators require a connected network: an entity whose next
        destination is unreachable would stall forever.
        """
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"RoadNetwork({self.node_count} nodes, {self.edge_count} edges, "
            f"bounds={self.bounds!r})"
        )
