"""SCUBA — Scalable Cluster-Based Algorithm for continuous spatio-temporal queries.

A full reproduction of Nehme & Rundensteiner, *SCUBA: Scalable Cluster-Based
Algorithm for Evaluating Continuous Spatio-Temporal Queries on Moving
Objects*, EDBT 2006 — including every substrate the paper builds on: a road
network, a network-based moving object/query generator, a miniature stream
engine, the moving-cluster framework, the two-step cluster join, the regular
grid-based baseline it is evaluated against, and moving-cluster-driven load
shedding.

The most commonly used entry points are re-exported here::

    from repro import (
        GeneratorConfig, NetworkBasedGenerator, grid_city,
        Scuba, ScubaConfig, RegularGridJoin, RegularConfig,
        StreamEngine, EngineConfig,
    )

Subpackages
-----------
``repro.geometry``
    Points, circles, rectangles, polar coordinates, segments.
``repro.network``
    Road networks: connection nodes, road edges, city builders, routing.
``repro.generator``
    Network-constrained moving object/query workload generation.
``repro.streams``
    Miniature stream engine (tuples, operators, periodic scheduler).
``repro.pipeline``
    The staged evaluation pipeline (ingest → … → emit) both engines drive.
``repro.parallel``
    Sharded parallel execution over spatial partitions with halo merge.
``repro.clustering``
    Moving clusters, incremental (Leader-Follower) and k-means clustering.
``repro.core``
    The SCUBA operator, its data structures, and the regular grid baseline.
``repro.queries``
    Range-query semantics plus the cluster-based kNN/aggregate extensions.
``repro.shedding``
    Moving-cluster-driven load shedding and accuracy measurement.
``repro.experiments``
    Workload construction, runners, memory accounting, figure harnesses.
"""

from .core import (
    NaiveJoin,
    RegularConfig,
    RegularGridJoin,
    Scuba,
    ScubaConfig,
)
from .generator import (
    EntityKind,
    GeneratorConfig,
    LocationUpdate,
    NetworkBasedGenerator,
    QueryUpdate,
)
from .geometry import Circle, Point, Rect
from .network import DEFAULT_BOUNDS, RoadNetwork, grid_city, radial_city, random_city
from .parallel import (
    IncrementalGridShardFactory,
    RegularShardFactory,
    ScubaShardFactory,
    ShardPlan,
    ShardedEngine,
)
from .pipeline import (
    EvaluationPipeline,
    PipelineHook,
    StageTraceHook,
)
from .streams import (
    CollectingSink,
    CountingSink,
    EngineConfig,
    QueryMatch,
    StagedJoinOperator,
    StreamEngine,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_BOUNDS",
    "Circle",
    "CollectingSink",
    "CountingSink",
    "EngineConfig",
    "EntityKind",
    "EvaluationPipeline",
    "GeneratorConfig",
    "IncrementalGridShardFactory",
    "LocationUpdate",
    "NaiveJoin",
    "NetworkBasedGenerator",
    "PipelineHook",
    "Point",
    "QueryMatch",
    "QueryUpdate",
    "Rect",
    "RegularConfig",
    "RegularGridJoin",
    "RoadNetwork",
    "Scuba",
    "ScubaConfig",
    "StageTraceHook",
    "StagedJoinOperator",
    "StreamEngine",
    "grid_city",
    "radial_city",
    "random_city",
    "__version__",
]
