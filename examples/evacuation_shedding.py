"""Evacuation overload: adaptive load shedding under memory pressure.

The paper's §5 scenario: an evacuation floods the engine with location
updates from dense convoys fleeing along the same corridors; the system
cannot afford to keep every member's relative position.  Setting
``ScubaConfig(adaptive_shedding=True, shed_budget=...)`` puts an
:class:`~repro.shedding.AdaptiveShedder` in the loop at the pipeline's
``shed`` stage: when the retained position count exceeds its budget, the
shedder escalates η (growing the nucleus, discarding positions near
cluster centroids); when pressure drops, it backs off.  Accuracy is
scored against an exact run of the same workload.

Run with::

    python examples/evacuation_shedding.py

or equivalently from the CLI: ``python -m repro --adaptive-shedding
--shed-budget 800 --query-range 500``.
"""

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.core import Scuba, ScubaConfig
from repro.shedding import compare_results, retained_position_count
from repro.streams import CollectingSink, EngineConfig, StreamEngine


def make_generator(city):
    # Dense evacuation convoys: 400-strong streams with big query windows
    # ("who is within 250 units of this rescue unit?").
    return NetworkBasedGenerator(
        city,
        GeneratorConfig(
            num_objects=1200,
            num_queries=1200,
            skew=400,
            seed=99,
            query_range=(500.0, 500.0),
        ),
    )


def main() -> None:
    city = grid_city(rows=21, cols=21)
    intervals = 6

    # Exact reference run (unlimited memory).
    exact_sink = CollectingSink()
    exact_engine = StreamEngine(
        make_generator(city), Scuba(), exact_sink, EngineConfig()
    )
    exact_engine.run(intervals)

    # Overloaded run: the shedder allows only 800 retained positions.  The
    # controller is built into the operator: it observes pressure at the
    # shed stage of every interval and walks η up or down its ladder.
    operator = Scuba(ScubaConfig(adaptive_shedding=True, shed_budget=800))
    shedder = operator.shedder
    shed_sink = CollectingSink()
    engine = StreamEngine(make_generator(city), operator, shed_sink, EngineConfig())

    print(f"evacuating {city}; position budget: {shedder.max_positions}\n")
    for _ in range(intervals):
        stats = engine.run_interval()
        retained = retained_position_count(operator.world.storage)
        print(
            f"t={stats.t:4.0f} | join {stats.join_seconds * 1e3:6.1f}ms"
            f" | {stats.result_count:6d} answers"
            f" | positions retained {retained:5d}"
            f" | eta -> {shedder.eta:.2f}"
        )

    report = compare_results(exact_sink.all_matches, shed_sink.all_matches)
    print(f"\nshedding trajectory: {shedder.history}")
    print(f"final accuracy vs exact run: {report}")


if __name__ == "__main__":
    main()
