"""Fleet dispatch: kNN and aggregate queries over live cluster state.

Beyond continuous range joins, the paper sketches (§1) that moving
clusters help answer kNN and aggregate queries — clusters are summaries.
This example runs a delivery-fleet scenario: vehicles stream through the
city, and a dispatcher issues ad-hoc questions against SCUBA's live
cluster state:

* "which 5 vehicles are nearest to this incident?" (cluster-pruned kNN,
  with the paper's isolated-cluster fast path when it applies);
* "how many vehicles are in the downtown zone, and how fast are they
  moving?" (exact vs. cluster-summary aggregates);
* "who exactly is inside this zone right now?" (snapshot range probe).

Run with::

    python examples/fleet_knn.py
"""

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.core import Scuba
from repro.geometry import Point, Rect
from repro.queries import (
    evaluate_knn,
    evaluate_range,
    exact_aggregate,
    knn_containing_cluster_fast_path,
    summary_aggregate,
)
from repro.streams import EngineConfig, StreamEngine


def main() -> None:
    city = grid_city(rows=21, cols=21)
    generator = NetworkBasedGenerator(
        city,
        GeneratorConfig(num_objects=800, num_queries=0, skew=40, seed=17),
    )
    operator = Scuba()
    engine = StreamEngine(generator, operator, config=EngineConfig())
    engine.run(4)
    world = operator.world
    print(f"fleet of {len(generator.objects)} vehicles -> {world}\n")

    # --- kNN: nearest vehicles to an incident at the city centre ---------
    incident = Point(5000.0, 5000.0)
    nearest = evaluate_knn(world, incident, k=5)
    print(f"5 vehicles nearest to incident at {incident}:")
    for neighbor in nearest:
        marker = "~" if neighbor.approximate else " "
        print(f"  {marker} vehicle {neighbor.entity_id:4d} at {neighbor.distance:7.1f} units")

    fast = knn_containing_cluster_fast_path(world, incident, k=5)
    if fast is not None:
        print(f"fast path applied: isolated cluster {fast.cid} holds the answer")
    else:
        print("fast path not applicable here (no isolated covering cluster)")

    # --- Aggregates over the downtown zone -------------------------------
    downtown = Rect(4000, 4000, 6000, 6000)
    exact = exact_aggregate(world, downtown)
    summary = summary_aggregate(world, downtown)
    print(f"\ndowntown zone {downtown}:")
    print(f"  exact    : {exact}")
    print(f"  summary  : {summary}   (O(clusters), no member access)")

    # --- Snapshot range probe ---------------------------------------------
    answer = evaluate_range(world, downtown)
    print(f"  roll call: {len(answer.exact_ids)} vehicles confirmed inside"
          + (f", {len(answer.possible_ids)} possible (shed)" if answer.possible_ids else ""))


if __name__ == "__main__":
    main()
