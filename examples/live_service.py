"""Live service: stream ticks to ``python -m repro.serve`` over TCP and
tail the JSON-line result stream.

The script plays both sides of a deployment: it starts the service as a
subprocess with a socket tick source, connects as a producer streaming
generator ticks with the ``scuba-ticks`` line protocol, and tails the
service's stdout events — answers per interval, any overload/shedding
decisions, and the final summary.

Run with::

    python examples/live_service.py
"""

import json
import socket
import subprocess
import sys
import threading

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.serve import TICKS_FORMAT, TICKS_VERSION, tick_to_line

TICKS = 30


def stream_ticks(port: int) -> None:
    """The producer side: one JSON tick per line over TCP."""
    generator = NetworkBasedGenerator(
        grid_city(),
        GeneratorConfig(num_objects=300, num_queries=300, skew=20, seed=7,
                        query_range=(120.0, 120.0)),
    )
    with socket.create_connection(("127.0.0.1", port)) as sock:
        with sock.makefile("w") as out:
            out.write(json.dumps(
                {"format": TICKS_FORMAT, "version": TICKS_VERSION}) + "\n")
            for _ in range(TICKS):
                updates = generator.tick(1.0)
                out.write(tick_to_line(generator.time, updates) + "\n")
            out.write(json.dumps({"eof": True}) + "\n")
            out.flush()
    print(f"[producer] streamed {TICKS} ticks, sent eof")


def main() -> None:
    # 1. Start the service with a TCP tick source on an ephemeral port.
    #    A small queue makes backpressure observable in the event stream.
    service = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.serve",
         "--source", "socket", "--port", "0",
         "--intervals", "0", "--queue-depth", "8", "--emit-matches"],
        stdout=subprocess.PIPE,
        text=True,
    )
    started = json.loads(service.stdout.readline())
    print(f"[service] listening on port {started['port']} "
          f"(policy={started['policy']}, queue={started['queue_depth']})")

    # 2. Stream ticks from a producer thread while this thread tails the
    #    result events.
    producer = threading.Thread(
        target=stream_ticks, args=(started["port"],), daemon=True
    )
    producer.start()

    # 3. Tail the event stream until the summary arrives.
    for line in service.stdout:
        event = json.loads(line)
        if event["event"] == "results":
            preview = ", ".join(
                f"(q{m['qid']} sees o{m['oid']})"
                for m in event["matches"][:3]
            )
            suffix = " ..." if event["count"] > 3 else ""
            print(f"  t={event['t']:4.0f}: {event['count']:5d} matches   "
                  f"{preview}{suffix}")
        elif event["event"] in ("overload", "shedding"):
            print(f"[service] {event['event']}: {event}")
        elif event["event"] == "summary":
            print(f"[service] {event['summary']}")
            print(f"[service] ticks consumed: {event['cursor']}, "
                  f"queue peak: {event['counters']['bp_queue_peak']}")
            break

    producer.join(timeout=10)
    service.wait(timeout=30)


if __name__ == "__main__":
    main()
