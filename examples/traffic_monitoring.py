"""Traffic monitoring: SCUBA vs. the regular grid join on rush-hour traffic.

The paper's motivating scenario: thousands of vehicles streaming along a
city's roads in convoys (rush-hour platoons), with thousands of continuous
range queries ("which vehicles are within 50 units of me?") moving with
them.  This example runs the *same* workload through the SCUBA operator
and the regular grid-based baseline, verifies both produce identical
answers, and prints the cost breakdown side by side — the essence of the
paper's evaluation in one script.

Run with::

    python examples/traffic_monitoring.py
"""

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.core import RegularGridJoin, Scuba
from repro.streams import CollectingSink, EngineConfig, StreamEngine, match_set


def run_operator(name, operator, city, intervals=5):
    """Run one operator over the shared workload (same seed -> same stream)."""
    generator = NetworkBasedGenerator(
        city,
        GeneratorConfig(num_objects=1500, num_queries=1500, skew=50, seed=2026),
    )
    sink = CollectingSink()
    engine = StreamEngine(generator, operator, sink, EngineConfig(delta=2.0))
    stats = engine.run(intervals)
    print(f"{name:8s} | ingest {stats.total_ingest_seconds:6.3f}s"
          f" | join {stats.total_join_seconds:6.3f}s"
          f" | maintenance {stats.total_maintenance_seconds:6.3f}s"
          f" | {stats.total_result_count} answers")
    return sink


def main() -> None:
    city = grid_city(rows=21, cols=21)  # 500-unit blocks, express highways
    print(f"monitoring {city}\n")

    scuba_op = Scuba()
    scuba_sink = run_operator("SCUBA", scuba_op, city)
    regular_sink = run_operator("regular", RegularGridJoin(), city)

    # Both operators must agree exactly, interval by interval.
    for t in sorted(regular_sink.by_interval):
        assert match_set(scuba_sink.by_interval[t]) == match_set(
            regular_sink.by_interval[t]
        ), f"answer mismatch at t={t}"
    print("\nanswers identical across operators at every interval ✔")

    # A peek inside SCUBA: how did the traffic cluster?
    clusters = scuba_op.world.storage.clusters()
    mixed = sum(1 for c in clusters if c.is_mixed)
    biggest = max(clusters, key=lambda c: c.n)
    print(f"\nlive moving clusters: {len(clusters)} ({mixed} mixed)")
    print(f"largest cluster: {biggest}")
    print(
        f"join-between filter: {scuba_op.between_hits}/{scuba_op.between_tests} "
        f"candidate pairs survived; {scuba_op.within_tests} individual tests"
    )


if __name__ == "__main__":
    main()
