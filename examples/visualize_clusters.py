"""Visualise moving clusters: render the live system state as SVG.

Reproduces the paper's figures from real state — the road network
(Fig. 1), moving clusters with centroids/radii/velocity vectors (Fig. 2),
and nuclei under load shedding (Fig. 8) — by running a workload and
dumping three scenes:

* ``city.svg`` — the road network alone;
* ``clusters.svg`` — clusters and members after a few intervals;
* ``shedding.svg`` — the same workload under η = 50 % shedding, nuclei
  visible, with one query window and its matched objects highlighted.

Run with::

    python examples/visualize_clusters.py [output_dir]
"""

import sys
from pathlib import Path

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.core import Scuba, ScubaConfig
from repro.geometry import Rect
from repro.shedding import policy_for_eta
from repro.streams import CollectingSink, EngineConfig, StreamEngine
from repro.viz import SvgScene


def run_workload(city, shedding_eta=0.0, intervals=4):
    operator = Scuba(ScubaConfig(shedding=policy_for_eta(shedding_eta, 100.0)))
    generator = NetworkBasedGenerator(
        city,
        GeneratorConfig(num_objects=400, num_queries=400, skew=40, seed=11,
                        mixed_groups=True),
    )
    sink = CollectingSink()
    StreamEngine(generator, operator, sink, EngineConfig()).run(intervals)
    return operator, sink


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    city = grid_city(rows=13, cols=13)

    # Scene 1: the city.
    scene = SvgScene(city.bounds)
    scene.draw_network(city)
    print(f"wrote {scene.save(out_dir / 'city.svg')} "
          f"({scene.element_count} elements)")

    # Scene 2: clusters after a few intervals.
    operator, _sink = run_workload(city)
    scene = SvgScene(city.bounds)
    scene.draw_network(city, draw_nodes=False)
    scene.draw_world(operator.world)
    print(f"wrote {scene.save(out_dir / 'clusters.svg')} "
          f"({operator.cluster_count} clusters)")

    # Scene 3: shedding — nuclei and one query window with matches.
    operator, sink = run_workload(city, shedding_eta=0.5)
    scene = SvgScene(city.bounds)
    scene.draw_network(city, draw_nodes=False)
    scene.draw_world(operator.world)
    scene.draw_query_window(Rect(4000, 4000, 6000, 6000))
    last_t = max(sink.by_interval)
    scene.draw_matches(operator.world, sink.by_interval[last_t][:200])
    shed = sum(c.shed_count for c in operator.world.storage)
    print(f"wrote {scene.save(out_dir / 'shedding.svg')} "
          f"({shed} positions shed into nuclei)")


if __name__ == "__main__":
    main()
