"""Quickstart: continuous range queries over moving objects with SCUBA.

Builds a small lattice city, generates a few hundred moving objects and
continuous range queries, runs the SCUBA operator for a handful of
evaluation intervals, and prints the answers it streams out.

Run with::

    python examples/quickstart.py
"""

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.core import Scuba, ScubaConfig
from repro.streams import CollectingSink, EngineConfig, StreamEngine


def main() -> None:
    # 1. A road network: an 11x11 Manhattan-style lattice with two express
    #    highways, over a 10,000 x 10,000-unit world.
    city = grid_city()
    print(f"city: {city}")

    # 2. A workload: 300 moving objects and 300 continuous range queries
    #    (50x50-unit windows centred on the moving query points), moving in
    #    convoys of ~20 entities that share destination and speed.
    generator = NetworkBasedGenerator(
        city,
        GeneratorConfig(num_objects=300, num_queries=300, skew=20, seed=7),
    )

    # 3. The SCUBA operator with the paper's default parameters: a 100x100
    #    ClusterGrid, distance threshold 100, speed threshold 10.
    operator = Scuba(ScubaConfig())

    # 4. Drive it: location updates stream in every time unit; queries are
    #    evaluated every delta = 2 time units.
    sink = CollectingSink()
    engine = StreamEngine(generator, operator, sink, EngineConfig(delta=2.0))
    stats = engine.run(intervals=5)

    # 5. Results.
    print(f"run: {stats.summary()}")
    print(f"operator state: {operator}")
    for t in sorted(sink.by_interval):
        matches = sink.by_interval[t]
        preview = ", ".join(
            f"(q{m.qid} sees o{m.oid})" for m in matches[:4]
        )
        suffix = " ..." if len(matches) > 4 else ""
        print(f"  t={t:4.0f}: {len(matches):5d} matches   {preview}{suffix}")


if __name__ == "__main__":
    main()
