"""Historical analysis: delta results and cluster-summarised trajectories.

Two of this reproduction's extension features working together on a city
surveillance scenario:

* **delta mode** (paper §8 future work: "produce results incrementally") —
  the engine emits only answer *changes* per interval, and we count how
  much re-transmission that suppresses;
* **cluster trajectories** — instead of archiving every vehicle's
  polyline, record cluster centroid paths plus membership intervals, then
  answer "who passed through the old town during the morning?" from the
  summaries, comparing storage and answers against the exact archive.

Run with::

    python examples/historical_analysis.py
"""

from repro import GeneratorConfig, NetworkBasedGenerator, grid_city
from repro.core import DeltaSink, Scuba
from repro.generator import EntityKind
from repro.geometry import Rect
from repro.streams import EngineConfig, StreamEngine
from repro.trajectories import ClusterTrajectoryStore, TrajectoryStore


def main() -> None:
    city = grid_city(rows=21, cols=21)
    generator = NetworkBasedGenerator(
        city,
        GeneratorConfig(num_objects=600, num_queries=600, skew=30, seed=41,
                        mixed_groups=True),
    )
    operator = Scuba()
    delta_sink = DeltaSink()
    engine = StreamEngine(generator, operator, delta_sink, EngineConfig())

    exact_archive = TrajectoryStore()
    summary_archive = ClusterTrajectoryStore()

    print(f"recording 8 intervals over {city}\n")
    for _ in range(8):
        stats = engine.run_interval()
        # Archive this interval: exact positions vs. cluster summaries.
        for update in generator.snapshot():
            if update.kind is EntityKind.OBJECT:
                exact_archive.record(
                    update.oid, update.t, update.loc.x, update.loc.y
                )
        summary_archive.record(operator.world, generator.time)
        delta = delta_sink.deltas[-1]
        print(
            f"t={stats.t:4.0f} | +{len(delta.added):4d} -{len(delta.removed):4d} "
            f"answers changed, {delta.unchanged_count:5d} suppressed"
        )

    print(
        f"\ndelta mode: {delta_sink.total_changes()} changes transmitted, "
        f"{delta_sink.total_suppressed()} re-sends suppressed"
    )

    # Historical question: who passed through the old town early on?
    old_town = Rect(4000, 4000, 6000, 6000)
    window = (2.0, 8.0)
    exact_hits = exact_archive.passed_through(old_town, *window)
    summary_hits = {
        eid
        for (eid, is_object) in summary_archive.passed_through(old_town, *window)
        if is_object
    }
    print(f"\nwho passed through {old_town} during t∈{window}?")
    print(f"  exact archive  : {len(exact_hits):4d} vehicles "
          f"({exact_archive.sample_count} position samples stored)")
    print(f"  cluster archive: {len(summary_hits):4d} candidates "
          f"({summary_archive.sample_count} cluster samples + "
          f"{summary_archive.membership_interval_count} membership intervals)")
    missed = exact_hits - summary_hits
    print(f"  misses: {len(missed)} (cluster archive answers are a superset)")


if __name__ == "__main__":
    main()
