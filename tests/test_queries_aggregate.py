"""Unit tests for cluster-summary aggregate queries."""

import pytest

from repro.clustering import ClusterWorld, ClusteringSpec, IncrementalClusterer
from repro.generator import EntityKind, LocationUpdate
from repro.geometry import Point, Rect
from repro.queries import exact_aggregate, summary_aggregate

BOUNDS = Rect(0, 0, 10_000, 10_000)


def obj(oid, x, y, cn=1, cn_loc=Point(9000, 0), speed=50.0):
    return LocationUpdate(oid, Point(x, y), 0.0, speed, cn, cn_loc)


def build_world(updates):
    world = ClusterWorld(BOUNDS, 100)
    clusterer = IncrementalClusterer(world, ClusteringSpec())
    for update in updates:
        clusterer.ingest(update)
    return world


class TestExactAggregate:
    def test_count_and_speed(self):
        world = build_world(
            [obj(1, 100, 100, speed=40.0), obj(2, 150, 100, speed=48.0),
             obj(3, 5000, 5000, speed=90.0, cn=2, cn_loc=Point(0, 0))]
        )
        agg = exact_aggregate(world, Rect(0, 0, 300, 300))
        assert agg.count == 2
        assert agg.average_speed == pytest.approx(44.0)

    def test_empty_region(self):
        world = build_world([obj(1, 100, 100)])
        agg = exact_aggregate(world, Rect(8000, 8000, 9000, 9000))
        assert agg.count == 0
        assert agg.average_speed is None

    def test_shed_members_invisible_to_exact(self):
        world = build_world([obj(1, 100, 100), obj(2, 120, 100)])
        cluster = world.storage.get(world.home.cluster_of(1, EntityKind.OBJECT))
        member = cluster.get_member(1, EntityKind.OBJECT)
        member.position_shed = True
        cluster.shed_count += 1
        agg = exact_aggregate(world, Rect(0, 0, 300, 300))
        assert agg.count == 1


class TestSummaryAggregate:
    def test_fully_contained_cluster_counts_all(self):
        world = build_world([obj(1, 100, 100), obj(2, 150, 100)])
        agg = summary_aggregate(world, Rect(0, 0, 1000, 1000))
        assert agg.count == pytest.approx(2.0)
        assert agg.average_speed == pytest.approx(50.0)

    def test_disjoint_cluster_counts_zero(self):
        world = build_world([obj(1, 100, 100)])
        agg = summary_aggregate(world, Rect(5000, 5000, 6000, 6000))
        assert agg.count == 0.0

    def test_partial_overlap_is_fractional(self):
        world = build_world([obj(1, 100, 100), obj(2, 180, 100)])
        # Region covering roughly the left half of the cluster.
        agg = summary_aggregate(world, Rect(0, 0, 140, 1000))
        assert 0.0 < agg.count < 2.0

    def test_point_cluster_in_or_out(self):
        world = build_world([obj(1, 100, 100)])
        inside = summary_aggregate(world, Rect(0, 0, 200, 200))
        outside = summary_aggregate(world, Rect(300, 300, 400, 400))
        assert inside.count == pytest.approx(1.0)
        assert outside.count == 0.0

    def test_summary_close_to_exact_for_contained_clusters(self):
        updates = [obj(i, 100 + i * 7, 100 + (i % 3) * 9) for i in range(12)]
        world = build_world(updates)
        region = Rect(0, 0, 500, 500)
        exact = exact_aggregate(world, region)
        summary = summary_aggregate(world, region)
        assert summary.count == pytest.approx(exact.count, rel=0.2)

    def test_summary_works_under_full_shedding(self):
        world = build_world([obj(1, 100, 100, speed=60.0), obj(2, 120, 100, speed=60.0)])
        cluster = world.storage.get(world.home.cluster_of(1, EntityKind.OBJECT))
        for member in cluster.members():
            member.position_shed = True
            cluster.shed_count += 1
        agg = summary_aggregate(world, Rect(0, 0, 1000, 1000))
        assert agg.count == pytest.approx(2.0)
        assert agg.average_speed == pytest.approx(60.0)
