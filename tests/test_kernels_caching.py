"""Cross-evaluation caching, counters, reset and pickling of operators."""

import pickle

from repro.core import RegularConfig, RegularGridJoin, Scuba, ScubaConfig
from repro.generator import LocationUpdate, QueryUpdate
from repro.geometry import Point
from repro.streams import match_set, merge_counters


def obj(oid, x, y, t=0.0, speed=50.0, cn=1, cn_loc=Point(9000, 0)):
    return LocationUpdate(oid, Point(x, y), t, speed, cn, cn_loc)


def qry(qid, x, y, t=0.0, speed=50.0, cn=1, cn_loc=Point(9000, 0), w=50.0, h=50.0):
    return QueryUpdate(qid, Point(x, y), t, speed, cn, cn_loc, w, h)


def crowded_scene(op):
    """Three adjacent clusters (distinct destinations) that all pairwise join."""
    op.on_update(obj(1, 100, 100, cn=1))
    op.on_update(obj(2, 130, 100, cn=2, cn_loc=Point(0, 9000)))
    op.on_update(qry(1, 115, 100, cn=3, cn_loc=Point(0, 0)))
    return op


class TestViewCache:
    def test_view_reused_across_pairs_in_one_cycle(self):
        # The query cluster joins with both object clusters in the same
        # sweep: its second use must come from the cache.
        op = crowded_scene(Scuba())
        op.evaluate(2.0)
        assert op.view_cache_hits > 0

    def test_counters_exposed(self):
        op = crowded_scene(Scuba())
        op.evaluate(2.0)
        counters = op.join_counters()
        assert counters["kernel_backend"] == op.kernels.name
        for key in (
            "view_cache_hits",
            "view_cache_misses",
            "between_cache_hits",
            "between_cache_misses",
        ):
            assert counters[key] >= 0
        assert counters["view_cache_misses"] > 0

    def test_between_memo_skips_unchanged_pairs_not_the_count(self):
        op = crowded_scene(Scuba(ScubaConfig(expire_clusters=False)))
        op.evaluate(2.0)
        tests_first = op.between_tests
        misses_first = op.between_cache_misses
        op.evaluate(4.0)
        # The logical filter count (the paper's metric) keeps growing...
        assert op.between_tests > tests_first
        # ...while unchanged pairs hit the memo instead of recomputing.
        if op.between_cache_misses == misses_first:
            assert op.between_cache_hits > 0

    def test_update_invalidates_view(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100))
        op.on_update(qry(1, 110, 100, cn=2, cn_loc=Point(0, 0)))
        assert match_set(op.evaluate(2.0)) == {(1, 1)}
        # Move the object out of the window; the refreshed view must see it.
        op.on_update(obj(1, 500, 500, t=2.0))
        assert match_set(op.evaluate(4.0)) == set()


class TestCounterMerging:
    def test_numeric_sum_and_string_union(self):
        merged = merge_counters(
            [
                {"view_cache_hits": 2, "kernel_backend": "python"},
                {"view_cache_hits": 3, "kernel_backend": "python"},
            ]
        )
        assert merged == {"view_cache_hits": 5, "kernel_backend": "python"}

    def test_disagreeing_backends_both_reported(self):
        merged = merge_counters(
            [{"kernel_backend": "python"}, {"kernel_backend": "numpy"}]
        )
        assert set(merged["kernel_backend"].split("+")) == {"numpy", "python"}


class TestReset:
    def test_scuba_reset_clears_state_keeps_config(self):
        config = ScubaConfig(grid_size=200, kernel_backend="scalar")
        op = crowded_scene(Scuba(config))
        op.evaluate(2.0)
        op.reset()
        assert op.cluster_count == 0
        assert len(op.objects_table) == 0
        assert op.view_cache_hits == 0
        assert op.config is config
        assert op.kernels.name == "scalar"
        # Still usable after reset.
        op.on_update(obj(5, 100, 100))
        op.on_update(qry(5, 110, 100))
        assert match_set(op.evaluate(2.0)) == {(5, 5)}

    def test_regular_reset(self):
        op = RegularGridJoin(RegularConfig(kernel_backend="python"))
        op.on_update(obj(1, 100, 100))
        op.on_update(qry(1, 110, 100))
        op.evaluate(2.0)
        op.reset()
        assert len(op.objects) == 0
        assert op.kernels.name == "python"
        op.on_update(obj(2, 100, 100))
        op.on_update(qry(2, 110, 100))
        assert match_set(op.evaluate(2.0)) == {(2, 2)}


class TestPickling:
    def test_scuba_roundtrip_same_answers(self):
        op = crowded_scene(Scuba())
        clone = pickle.loads(pickle.dumps(op))
        assert clone.kernels.name == op.kernels.name
        assert match_set(clone.evaluate(2.0)) == match_set(op.evaluate(2.0))

    def test_scuba_pickle_drops_caches(self):
        op = crowded_scene(Scuba())
        op.evaluate(2.0)
        clone = pickle.loads(pickle.dumps(op))
        assert clone._view_cache == {}
        assert clone._between_cache == {}

    def test_regular_roundtrip_same_answers(self):
        op = RegularGridJoin()
        op.on_update(obj(1, 100, 100))
        op.on_update(qry(1, 110, 100))
        clone = pickle.loads(pickle.dumps(op))
        assert clone.kernels.name == op.kernels.name
        assert match_set(clone.evaluate(2.0)) == match_set(op.evaluate(2.0))
