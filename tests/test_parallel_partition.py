"""Unit and property tests for spatial sharding: plans, routing, halos."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import EntityKind, LocationUpdate
from repro.geometry import Point, Rect
from repro.parallel import (
    AdaptiveShardPlan,
    Retract,
    ShardPlan,
    SpatialPartitioner,
    derive_halo_margin,
)

BOUNDS = Rect(0.0, 0.0, 1000.0, 1000.0)


def update(entity_id: int, x: float, y: float, t: float = 0.0) -> LocationUpdate:
    return LocationUpdate(
        oid=entity_id, loc=Point(x, y), t=t, speed=1.0,
        cn_node=0, cn_loc=Point(x, y),
    )


class TestDeriveHaloMargin:
    def test_half_diagonal_plus_theta(self):
        # 60x80 window -> half-diagonal 50.
        assert derive_halo_margin(100.0, (60.0, 80.0)) == pytest.approx(150.0)

    def test_zero_theta_is_pure_half_diagonal(self):
        assert derive_halo_margin(0.0, (60.0, 80.0)) == pytest.approx(50.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            derive_halo_margin(-1.0, (10.0, 10.0))
        with pytest.raises(ValueError):
            derive_halo_margin(0.0, (-10.0, 10.0))


class TestShardPlan:
    def test_split_factorisations(self):
        for shards, (kx, ky) in {1: (1, 1), 2: (2, 1), 4: (2, 2),
                                 6: (3, 2), 8: (4, 2)}.items():
            plan = ShardPlan.split(BOUNDS, shards, halo_margin=10.0)
            assert (plan.kx, plan.ky) == (kx, ky)
            assert plan.num_shards == shards

    def test_split_orients_fine_axis_along_tall_side(self):
        tall = Rect(0.0, 0.0, 100.0, 1000.0)
        plan = ShardPlan.split(tall, 2, halo_margin=0.0)
        assert (plan.kx, plan.ky) == (1, 2)

    def test_tiles_partition_bounds(self):
        plan = ShardPlan(BOUNDS, 2, 2, halo_margin=50.0)
        tiles = [plan.tile(s) for s in range(4)]
        assert sum(t.area for t in tiles) == pytest.approx(BOUNDS.area)
        assert tiles[0] == Rect(0.0, 0.0, 500.0, 500.0)
        assert tiles[3] == Rect(500.0, 500.0, 1000.0, 1000.0)

    def test_halo_rect_is_expanded_tile(self):
        plan = ShardPlan(BOUNDS, 2, 2, halo_margin=50.0)
        assert plan.halo_rect(0) == Rect(-50.0, -50.0, 550.0, 550.0)

    def test_owner_boundary_goes_to_higher_tile(self):
        plan = ShardPlan(BOUNDS, 2, 2, halo_margin=0.0)
        assert plan.owner_of(499.9, 0.0) == 0
        assert plan.owner_of(500.0, 0.0) == 1
        assert plan.owner_of(0.0, 500.0) == 2

    def test_owner_clamps_out_of_bounds(self):
        plan = ShardPlan(BOUNDS, 2, 2, halo_margin=0.0)
        assert plan.owner_of(-10.0, -10.0) == 0
        assert plan.owner_of(2000.0, 2000.0) == 3

    def test_shards_containing_interior_point_is_owner_only(self):
        plan = ShardPlan(BOUNDS, 2, 2, halo_margin=50.0)
        assert plan.shards_containing(250.0, 250.0) == (0,)

    def test_shards_containing_near_boundary_replicates(self):
        plan = ShardPlan(BOUNDS, 2, 2, halo_margin=50.0)
        # Within 50 units of the x=500 seam: both column shards.
        assert set(plan.shards_containing(480.0, 250.0)) == {0, 1}
        # Near the 4-corner point: all four shards.
        assert set(plan.shards_containing(510.0, 490.0)) == {0, 1, 2, 3}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardPlan(BOUNDS, 0, 1, halo_margin=0.0)
        with pytest.raises(ValueError):
            ShardPlan(BOUNDS, 1, 1, halo_margin=-1.0)
        with pytest.raises(ValueError):
            ShardPlan.split(BOUNDS, 0, halo_margin=0.0)

    @settings(max_examples=200, deadline=None)
    @given(
        x=st.floats(min_value=-100.0, max_value=1100.0),
        y=st.floats(min_value=-100.0, max_value=1100.0),
        shards=st.sampled_from([1, 2, 3, 4, 6, 8]),
        margin=st.floats(min_value=0.0, max_value=200.0),
    )
    def test_containment_matches_halo_rects(self, x, y, shards, margin):
        """shards_containing == brute-force closed halo-rect containment,
        and always includes the owner."""
        plan = ShardPlan.split(BOUNDS, shards, halo_margin=margin)
        got = set(plan.shards_containing(x, y))
        brute = {
            s for s in range(plan.num_shards)
            if plan.halo_rect(s).contains_xy(x, y)
        }
        # Out-of-bounds points are clamped into the border tiles, so the
        # routed set may exceed geometric containment there — never inside.
        if BOUNDS.contains_xy(x, y):
            assert got == brute or got >= brute
        assert plan.owner_of(x, y) in got


class TestSpatialPartitioner:
    def make(self, margin=50.0):
        return SpatialPartitioner(ShardPlan(BOUNDS, 2, 2, halo_margin=margin))

    def test_first_route_has_no_leavers(self):
        part = self.make()
        decision = part.route(update(1, 250.0, 250.0))
        assert decision.owner == 0
        assert decision.targets == (0,)
        assert decision.leavers == ()

    def test_crossing_a_seam_retracts_from_left_shard(self):
        part = self.make()
        part.route(update(1, 250.0, 250.0))          # interior of shard 0
        moved = part.route(update(1, 700.0, 250.0))  # interior of shard 1
        assert moved.owner == 1
        assert moved.targets == (1,)
        assert moved.leavers == (0,)
        assert part.retractions == 1

    def test_halo_entry_delivers_to_both_no_retract(self):
        part = self.make()
        part.route(update(1, 250.0, 250.0))
        near_seam = part.route(update(1, 480.0, 250.0))
        assert set(near_seam.targets) == {0, 1}
        assert near_seam.leavers == ()
        assert part.placement_of(1, EntityKind.OBJECT) == near_seam.targets

    def test_objects_and_queries_tracked_separately(self):
        part = self.make()
        obj = update(1, 250.0, 250.0)
        part.route(obj)
        qry = QueryLike(1, 700.0, 250.0)
        part.route(qry)
        assert part.placement_of(1, EntityKind.OBJECT) == (0,)
        assert part.placement_of(1, EntityKind.QUERY) == (1,)
        assert part.owner_of_query(1) == 1

    def test_replication_factor_counts_halo_copies(self):
        part = self.make()
        part.route(update(1, 250.0, 250.0))   # 1 delivery
        part.route(update(2, 490.0, 490.0))   # 4 deliveries (corner halo)
        assert part.updates_routed == 2
        assert part.deliveries == 5
        assert part.replication_factor == pytest.approx(2.5)

    def test_unrouted_query_has_no_owner(self):
        part = self.make()
        assert part.owner_of_query(99) is None
        assert part.placement_of(99, EntityKind.QUERY) == ()

    def test_retract_record_fields(self):
        r = Retract(7, EntityKind.QUERY)
        assert r.entity_id == 7
        assert r.kind is EntityKind.QUERY


class QueryLike:
    """Minimal stand-in for a QueryUpdate in routing tests."""

    kind = EntityKind.QUERY

    def __init__(self, qid: int, x: float, y: float):
        self.entity_id = qid
        self.loc = Point(x, y)


def boundary_points(plan):
    """Points sitting exactly on every internal tile edge (plus corners)."""
    xs, ys = set(), set()
    for s in range(plan.num_shards):
        tile = plan.tile(s)
        xs.update((tile.min_x, tile.max_x))
        ys.update((tile.min_y, tile.max_y))
    return [(x, y) for x in sorted(xs) for y in sorted(ys)]


@pytest.mark.parametrize(
    "make_plan",
    [
        lambda: ShardPlan.split(BOUNDS, 4, halo_margin=50.0),
        lambda: ShardPlan.split(BOUNDS, 6, halo_margin=0.0),
        lambda: AdaptiveShardPlan.split(BOUNDS, 4, halo_margin=50.0),
        lambda: AdaptiveShardPlan.split(BOUNDS, 4, 50.0).rebalance(
            (0, 1), 0, 1, 300.0
        ),
    ],
    ids=["static-4", "static-6-nohalo", "adaptive-4", "adaptive-rebalanced"],
)
class TestBoundarySemantics:
    """Tile-edge points must behave like any other point: exactly one
    owner, owner always among the routed shards, and routing state that
    survives a snapshot/restore round-trip unchanged."""

    def test_edge_points_have_exactly_one_owner(self, make_plan):
        plan = make_plan()
        for x, y in boundary_points(plan):
            owners = [
                s for s in range(plan.num_shards)
                if plan.owner_of(x, y) == s
            ]
            assert len(owners) == 1
            # The owner's tile contains the point half-openly: on a seam
            # the point belongs to the *higher* tile, so it must lie on
            # that tile's min edge or inside — never beyond its max edge
            # (except on the world border, where ownership clamps).
            assert plan.owner_of(x, y) in plan.shards_containing(x, y)

    def test_edge_points_route_to_all_halo_holders(self, make_plan):
        plan = make_plan()
        for x, y in boundary_points(plan):
            got = set(plan.shards_containing(x, y))
            brute = {
                s for s in range(plan.num_shards)
                if plan.halo_rect(s).contains_xy(x, y)
            }
            assert brute <= got

    def test_snapshot_restore_preserves_boundary_routing(self, make_plan):
        plan = make_plan()
        part = SpatialPartitioner(plan)
        points = boundary_points(plan)
        for i, (x, y) in enumerate(points):
            part.route(update(i, x, y))
        state = part.snapshot_state()

        fresh = SpatialPartitioner(make_plan())
        fresh.restore_state(state)
        for i, (x, y) in enumerate(points):
            key_placement = part.placement_of(i, EntityKind.OBJECT)
            assert fresh.placement_of(i, EntityKind.OBJECT) == key_placement
            assert key_placement == plan.shards_containing(x, y)
        assert fresh.owner_counts() == part.owner_counts()
        # Routing after restore behaves identically to never snapshotting:
        # same targets, same leavers.
        for i, (x, y) in enumerate(points):
            a = part.route(update(i, x + 1.0, y + 1.0))
            b = fresh.route(update(i, x + 1.0, y + 1.0))
            assert a == b
