"""Unit tests for the stream engine, metrics, and sinks."""

import time

import pytest

from repro.generator import Update
from repro.streams import (
    CollectingSink,
    ContinuousJoinOperator,
    CountingSink,
    EngineConfig,
    IntervalStats,
    QueryMatch,
    RunStats,
    StreamEngine,
    Timer,
    match_set,
)


class RecordingOperator(ContinuousJoinOperator):
    """Test double: records every call the engine makes."""

    def __init__(self):
        self.updates = []
        self.evaluations = []
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0

    def on_update(self, update: Update) -> None:
        self.updates.append(update)

    def evaluate(self, now: float):
        self.evaluations.append(now)
        self.last_join_seconds = 0.001
        self.last_maintenance_seconds = 0.0005
        return [QueryMatch(1, 2, now)]


class TestEngineConfig:
    def test_defaults_match_paper(self):
        config = EngineConfig()
        assert config.delta == 2.0
        assert config.tick == 1.0
        assert config.ticks_per_interval == 2

    def test_non_divisible_delta_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(delta=2.5, tick=1.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(delta=0.0)
        with pytest.raises(ValueError):
            EngineConfig(tick=-1.0)

    def test_large_whole_ratio_accepted(self):
        """Regression: the divisibility check must use *relative* tolerance.

        1e6 ticks per interval is a whole ratio, but float remainder noise
        at that magnitude exceeded the old absolute epsilon and the config
        was spuriously rejected.
        """
        # 1e6 / 0.1 = 9999999.999999998 in floats: off by ~1.9e-9, which
        # tripped the old `> 1e-9` absolute check.
        config = EngineConfig(delta=1_000_000.0, tick=0.1)
        assert config.ticks_per_interval == 10_000_000

    def test_large_non_whole_ratio_still_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(delta=1_000_000.5, tick=1.0)


class TestStreamEngine:
    def test_interval_feeds_all_tick_updates(self, make_generator):
        gen = make_generator(num_objects=10, num_queries=10)
        op = RecordingOperator()
        engine = StreamEngine(gen, op, config=EngineConfig(delta=2.0))
        engine.run_interval()
        # 2 ticks x 20 entities at 100% update rate.
        assert len(op.updates) == 40

    def test_evaluation_fires_once_per_interval(self, make_generator):
        gen = make_generator(num_objects=5, num_queries=5)
        op = RecordingOperator()
        engine = StreamEngine(gen, op, config=EngineConfig(delta=2.0))
        engine.run(3)
        assert op.evaluations == [2.0, 4.0, 6.0]

    def test_sink_receives_matches(self, make_generator):
        gen = make_generator(num_objects=5, num_queries=5)
        sink = CollectingSink()
        engine = StreamEngine(gen, RecordingOperator(), sink)
        engine.run(2)
        assert len(sink.all_matches) == 2
        assert sink.matches_at(2.0) == [QueryMatch(1, 2, 2.0)]

    def test_stats_capture_phase_timings(self, make_generator):
        gen = make_generator(num_objects=5, num_queries=5)
        engine = StreamEngine(gen, RecordingOperator())
        stats = engine.run(2)
        assert stats.interval_count == 2
        assert stats.total_join_seconds == pytest.approx(0.002)
        assert stats.total_maintenance_seconds == pytest.approx(0.001)
        assert stats.total_result_count == 2
        assert stats.total_tuple_count == 40

    def test_negative_intervals_rejected(self, make_generator):
        engine = StreamEngine(make_generator(), RecordingOperator())
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_zero_intervals_noop(self, make_generator):
        engine = StreamEngine(make_generator(), RecordingOperator())
        stats = engine.run(0)
        assert stats.interval_count == 0

    def test_generate_seconds_measured(self, make_generator):
        """The generator's own cost is captured, separately from ingest."""
        gen = make_generator(num_objects=50, num_queries=50)
        stats = StreamEngine(gen, RecordingOperator()).run(2)
        assert all(s.generate_seconds > 0.0 for s in stats.intervals)
        assert stats.total_generate_seconds > 0.0
        # Workload cost stays out of the paper's three-phase breakdown.
        first = stats.intervals[0]
        assert first.total_seconds == pytest.approx(
            first.ingest_seconds + first.join_seconds + first.maintenance_seconds
        )
        assert "generate" in stats.summary()


class TestTimer:
    def test_accumulates_across_uses(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.02

    def test_reset_returns_and_zeroes(self):
        timer = Timer()
        with timer:
            pass
        elapsed = timer.reset()
        assert elapsed >= 0.0
        assert timer.seconds == 0.0


class TestRunStats:
    def test_empty_run_means(self):
        stats = RunStats()
        assert stats.mean_join_seconds() == 0.0
        assert stats.total_seconds == 0.0

    def test_summary_mentions_counts(self):
        stats = RunStats()
        stats.add(
            IntervalStats(
                t=2.0,
                ingest_seconds=0.1,
                join_seconds=0.2,
                maintenance_seconds=0.05,
                result_count=7,
                tuple_count=40,
            )
        )
        summary = stats.summary()
        assert "1 intervals" in summary
        assert "7 results" in summary

    def test_interval_total(self):
        s = IntervalStats(2.0, 0.1, 0.2, 0.05, 1, 10)
        assert s.total_seconds == pytest.approx(0.35)

    def test_to_dict_round_trips_through_json(self):
        stats = RunStats()
        stats.add(IntervalStats(2.0, 0.1, 0.2, 0.05, 7, 40, generate_seconds=0.02))
        stats.add(IntervalStats(4.0, 0.1, 0.3, 0.05, 9, 40))
        data = stats.to_dict()
        assert data["interval_count"] == 2
        assert data["totals"]["join_seconds"] == pytest.approx(0.5)
        assert data["totals"]["result_count"] == 16
        assert data["totals"]["generate_seconds"] == pytest.approx(0.02)
        assert [i["t"] for i in data["intervals"]] == [2.0, 4.0]
        import json

        assert json.loads(stats.to_json()) == data

    def test_interval_merged_serial_sums_phases(self):
        parts = [
            IntervalStats(2.0, 0.1, 0.2, 0.05, 3, 10),
            IntervalStats(2.0, 0.3, 0.4, 0.15, 4, 20),
        ]
        merged = IntervalStats.merged(parts, t=2.0)
        assert merged.ingest_seconds == pytest.approx(0.4)
        assert merged.join_seconds == pytest.approx(0.6)
        assert merged.result_count == 7
        assert merged.tuple_count == 30

    def test_interval_merged_parallel_takes_critical_path(self):
        parts = [
            IntervalStats(2.0, 0.1, 0.2, 0.05, 3, 10),
            IntervalStats(2.0, 0.3, 0.4, 0.15, 4, 20),
        ]
        merged = IntervalStats.merged(parts, t=2.0, parallel=True, result_count=5)
        assert merged.join_seconds == pytest.approx(0.4)
        assert merged.ingest_seconds == pytest.approx(0.3)
        assert merged.result_count == 5  # override: merger deduplicated
        assert merged.tuple_count == 30  # counts always sum

    def test_interval_merged_empty(self):
        merged = IntervalStats.merged([], t=2.0, parallel=True)
        assert merged.join_seconds == 0.0
        assert merged.result_count == 0


class TestSinks:
    def test_counting_sink(self):
        sink = CountingSink()
        sink.accept([QueryMatch(1, 1, 0.0)] * 3, 2.0)
        sink.accept([QueryMatch(1, 2, 0.0)], 4.0)
        assert sink.total == 4
        assert sink.per_interval == [3, 1]

    def test_collecting_sink_clear(self):
        sink = CollectingSink()
        sink.accept([QueryMatch(1, 1, 2.0)], 2.0)
        sink.clear()
        assert sink.all_matches == []

    def test_match_set_ignores_time(self):
        matches = [QueryMatch(1, 2, 2.0), QueryMatch(1, 2, 4.0)]
        assert match_set(matches) == {(1, 2)}

    def test_bounded_sink_evicts_oldest_intervals(self):
        sink = CollectingSink(max_retained=5)
        sink.accept([QueryMatch(1, i, 2.0) for i in range(3)], 2.0)
        sink.accept([QueryMatch(1, i, 4.0) for i in range(3)], 4.0)
        # 6 > 5: the whole t=2.0 interval goes, t=4.0 stays intact.
        assert sorted(sink.by_interval) == [4.0]
        assert sink.retained_count == 3
        assert sink.dropped_matches == 3
        assert len(sink.matches_at(4.0)) == 3

    def test_bounded_sink_keeps_single_oversized_interval(self):
        sink = CollectingSink(max_retained=2)
        sink.accept([QueryMatch(1, i, 2.0) for i in range(10)], 2.0)
        # One interval larger than the cap is kept whole, not truncated.
        assert sink.retained_count == 10
        assert sink.dropped_matches == 0

    def test_bounded_sink_clear_resets_counters(self):
        sink = CollectingSink(max_retained=1)
        sink.accept([QueryMatch(1, 1, 2.0)], 2.0)
        sink.accept([QueryMatch(1, 2, 4.0)], 4.0)
        assert sink.dropped_matches == 1
        sink.clear()
        assert sink.retained_count == 0
        assert sink.dropped_matches == 0
        assert sink.all_matches == []

    def test_bounded_sink_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            CollectingSink(max_retained=-1)

    def test_unbounded_sink_never_drops(self):
        sink = CollectingSink()
        for t in (2.0, 4.0, 6.0):
            sink.accept([QueryMatch(1, 1, t)] * 100, t)
        assert sink.retained_count == 300
        assert sink.dropped_matches == 0
