"""Unit tests for the stream engine, metrics, and sinks."""

import time

import pytest

from repro.generator import Update
from repro.streams import (
    CollectingSink,
    ContinuousJoinOperator,
    CountingSink,
    EngineConfig,
    IntervalStats,
    QueryMatch,
    RunStats,
    StreamEngine,
    Timer,
    match_set,
)


class RecordingOperator(ContinuousJoinOperator):
    """Test double: records every call the engine makes."""

    def __init__(self):
        self.updates = []
        self.evaluations = []
        self.last_join_seconds = 0.0
        self.last_maintenance_seconds = 0.0

    def on_update(self, update: Update) -> None:
        self.updates.append(update)

    def evaluate(self, now: float):
        self.evaluations.append(now)
        self.last_join_seconds = 0.001
        self.last_maintenance_seconds = 0.0005
        return [QueryMatch(1, 2, now)]


class TestEngineConfig:
    def test_defaults_match_paper(self):
        config = EngineConfig()
        assert config.delta == 2.0
        assert config.tick == 1.0
        assert config.ticks_per_interval == 2

    def test_non_divisible_delta_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(delta=2.5, tick=1.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(delta=0.0)
        with pytest.raises(ValueError):
            EngineConfig(tick=-1.0)


class TestStreamEngine:
    def test_interval_feeds_all_tick_updates(self, make_generator):
        gen = make_generator(num_objects=10, num_queries=10)
        op = RecordingOperator()
        engine = StreamEngine(gen, op, config=EngineConfig(delta=2.0))
        engine.run_interval()
        # 2 ticks x 20 entities at 100% update rate.
        assert len(op.updates) == 40

    def test_evaluation_fires_once_per_interval(self, make_generator):
        gen = make_generator(num_objects=5, num_queries=5)
        op = RecordingOperator()
        engine = StreamEngine(gen, op, config=EngineConfig(delta=2.0))
        engine.run(3)
        assert op.evaluations == [2.0, 4.0, 6.0]

    def test_sink_receives_matches(self, make_generator):
        gen = make_generator(num_objects=5, num_queries=5)
        sink = CollectingSink()
        engine = StreamEngine(gen, RecordingOperator(), sink)
        engine.run(2)
        assert len(sink.all_matches) == 2
        assert sink.matches_at(2.0) == [QueryMatch(1, 2, 2.0)]

    def test_stats_capture_phase_timings(self, make_generator):
        gen = make_generator(num_objects=5, num_queries=5)
        engine = StreamEngine(gen, RecordingOperator())
        stats = engine.run(2)
        assert stats.interval_count == 2
        assert stats.total_join_seconds == pytest.approx(0.002)
        assert stats.total_maintenance_seconds == pytest.approx(0.001)
        assert stats.total_result_count == 2
        assert stats.total_tuple_count == 40

    def test_negative_intervals_rejected(self, make_generator):
        engine = StreamEngine(make_generator(), RecordingOperator())
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_zero_intervals_noop(self, make_generator):
        engine = StreamEngine(make_generator(), RecordingOperator())
        stats = engine.run(0)
        assert stats.interval_count == 0


class TestTimer:
    def test_accumulates_across_uses(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.02

    def test_reset_returns_and_zeroes(self):
        timer = Timer()
        with timer:
            pass
        elapsed = timer.reset()
        assert elapsed >= 0.0
        assert timer.seconds == 0.0


class TestRunStats:
    def test_empty_run_means(self):
        stats = RunStats()
        assert stats.mean_join_seconds() == 0.0
        assert stats.total_seconds == 0.0

    def test_summary_mentions_counts(self):
        stats = RunStats()
        stats.add(
            IntervalStats(
                t=2.0,
                ingest_seconds=0.1,
                join_seconds=0.2,
                maintenance_seconds=0.05,
                result_count=7,
                tuple_count=40,
            )
        )
        summary = stats.summary()
        assert "1 intervals" in summary
        assert "7 results" in summary

    def test_interval_total(self):
        s = IntervalStats(2.0, 0.1, 0.2, 0.05, 1, 10)
        assert s.total_seconds == pytest.approx(0.35)


class TestSinks:
    def test_counting_sink(self):
        sink = CountingSink()
        sink.accept([QueryMatch(1, 1, 0.0)] * 3, 2.0)
        sink.accept([QueryMatch(1, 2, 0.0)], 4.0)
        assert sink.total == 4
        assert sink.per_interval == [3, 1]

    def test_collecting_sink_clear(self):
        sink = CollectingSink()
        sink.accept([QueryMatch(1, 1, 2.0)], 2.0)
        sink.clear()
        assert sink.all_matches == []

    def test_match_set_ignores_time(self):
        matches = [QueryMatch(1, 2, 2.0), QueryMatch(1, 2, 4.0)]
        assert match_set(matches) == {(1, 2)}
