"""Property tests for snapshot queries against naive oracles.

Random cluster worlds are built from random update batches; the snapshot
range probe, the cluster-pruned kNN, and the exact aggregate must agree
with direct computation over the same member positions.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import ClusteringSpec, ClusterWorld, IncrementalClusterer
from repro.generator import EntityKind, LocationUpdate
from repro.geometry import Point, Rect
from repro.queries import evaluate_knn, evaluate_range, exact_aggregate

BOUNDS = Rect(0, 0, 2000, 2000)

COORD = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)
SPEED = st.floats(min_value=10.0, max_value=90.0, allow_nan=False)

update_batches = st.lists(
    st.tuples(COORD, COORD, SPEED, st.integers(min_value=1, max_value=3)),
    min_size=0,
    max_size=25,
)

CN_LOCS = {1: Point(1900, 1000), 2: Point(1000, 1900), 3: Point(100, 100)}


def build_world(batch):
    world = ClusterWorld(BOUNDS, 20)
    clusterer = IncrementalClusterer(world, ClusteringSpec())
    positions = {}
    for oid, (x, y, speed, cn) in enumerate(batch):
        clusterer.ingest(
            LocationUpdate(oid, Point(x, y), 0.0, speed, cn, CN_LOCS[cn])
        )
        positions[oid] = (x, y, speed)
    return world, positions


class TestRangeProperty:
    @settings(max_examples=60, deadline=None)
    @given(batch=update_batches, rx=COORD, ry=COORD,
           w=st.floats(min_value=1, max_value=800), h=st.floats(min_value=1, max_value=800))
    def test_range_matches_naive(self, batch, rx, ry, w, h):
        world, positions = build_world(batch)
        region = Rect.centered(Point(rx, ry), w, h)
        answer = evaluate_range(world, region)
        expected = {
            oid
            for oid, (x, y, _s) in positions.items()
            if region.contains_xy(x, y)
        }
        assert answer.exact_ids == expected
        assert not answer.possible_ids  # nothing shed


class TestKnnProperty:
    @settings(max_examples=60, deadline=None)
    @given(batch=update_batches, px=COORD, py=COORD,
           k=st.integers(min_value=1, max_value=8))
    def test_knn_matches_naive(self, batch, px, py, k):
        world, positions = build_world(batch)
        probe = Point(px, py)
        got = [n.entity_id for n in evaluate_knn(world, probe, k)]
        expected = sorted(
            positions,
            key=lambda oid: (
                math.hypot(positions[oid][0] - px, positions[oid][1] - py)
            ),
        )[:k]
        # Distances must agree; id order may differ only on exact ties.
        got_d = [
            math.hypot(positions[o][0] - px, positions[o][1] - py) for o in got
        ]
        exp_d = [
            math.hypot(positions[o][0] - px, positions[o][1] - py) for o in expected
        ]
        assert len(got) == len(expected)
        for a, b in zip(got_d, exp_d):
            assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


class TestAggregateProperty:
    @settings(max_examples=60, deadline=None)
    @given(batch=update_batches, rx=COORD, ry=COORD,
           w=st.floats(min_value=1, max_value=800), h=st.floats(min_value=1, max_value=800))
    def test_exact_aggregate_matches_naive(self, batch, rx, ry, w, h):
        world, positions = build_world(batch)
        region = Rect.centered(Point(rx, ry), w, h)
        agg = exact_aggregate(world, region)
        inside = [
            s for (x, y, s) in positions.values() if region.contains_xy(x, y)
        ]
        assert agg.count == len(inside)
        if inside:
            assert math.isclose(
                agg.average_speed, sum(inside) / len(inside), rel_tol=1e-9
            )
        else:
            assert agg.average_speed is None
