"""The paper's Algorithm 2 pseudocode quirk, demonstrated.

Algorithm 2 (DoBetweenClusterJoin) literally tests

    (mL.x - mR.x)^2 + (mL.y - mR.y)^2 < (mL.R - mR.R)^2

which is the condition for one circle to lie strictly *inside* the other,
not for the circles to overlap.  Taken literally, the pre-filter would
prune almost every joinable cluster pair — including the paper's own
worked example (Fig. 7), where M1 and M2 merely intersect and the
join-between is said to "return a positive overlap".

These tests document the discrepancy and pin our implementation to the
evidently intended overlap semantics (see repro/geometry/circle.py).
"""

from repro.clustering import MovingCluster
from repro.core import ClusterJoinView, join_between, join_within_pair
from repro.generator import LocationUpdate, QueryUpdate
from repro.geometry import Circle, Point
from repro.streams import match_set


def literal_algorithm2(left: MovingCluster, right: MovingCluster) -> bool:
    """The paper's pseudocode, verbatim."""
    d_sq = (left.cx - right.cx) ** 2 + (left.cy - right.cy) ** 2
    return d_sq < (left.radius - right.radius) ** 2


def build(cid, entries, cn=1):
    cluster = MovingCluster(cid, Point(*entries[0][1:3]), cn, Point(5000, 0), 0.0)
    for i, (kind, x, y) in enumerate(entries):
        entity_id = cid * 10 + i
        if kind == "o":
            cluster.absorb(
                LocationUpdate(entity_id, Point(x, y), 0.0, 50.0, cn, Point(5000, 0))
            )
        else:
            cluster.absorb(
                QueryUpdate(
                    entity_id, Point(x, y), 0.0, 50.0, cn, Point(5000, 0), 60.0, 60.0
                )
            )
    return cluster


def test_intersecting_clusters_with_real_matches():
    """Two overlapping clusters produce a match our filter must keep."""
    left = build(0, [("o", 100, 0), ("o", 200, 0)], cn=1)      # radius 50
    right = build(1, [("q", 180, 0), ("q", 280, 0)], cn=2)     # radius 50
    out = []
    join_within_pair(ClusterJoinView(left), ClusterJoinView(right), 0.0, out)
    assert match_set(out)  # the pair genuinely joins (o at 200 in q at 180)

    # The literal pseudocode prunes it: equal radii make (R_L - R_R)^2 = 0.
    assert not literal_algorithm2(left, right)
    # Our corrected filter keeps it.
    assert join_between(left, right)


def test_literal_predicate_is_containment():
    """What Algorithm 2's formula actually computes is containment."""
    big = Circle(Point(0, 0), 100.0)
    small = Circle(Point(20, 0), 30.0)
    # Literal formula "fires" exactly when the small circle is inside.
    d_sq = (big.center.x - small.center.x) ** 2 + (big.center.y - small.center.y) ** 2
    literal = d_sq < (big.radius - small.radius) ** 2
    assert literal == big.contains_circle(small) is True


def test_figure7_style_scenario():
    """Fig. 7's narrative: M1 and M2 intersect and join-between passes.

    M1 holds objects, M2 holds queries; their circles overlap at the
    boundary.  The worked example requires a positive overlap; the literal
    containment test would return FALSE and lose (Q2, O3)-style results.
    """
    # The object at 160 sits within the 60x60 window of the query at 185:
    # the clusters' circles overlap at the boundary and a real match spans
    # them.
    m1 = build(0, [("o", 0, 0), ("o", 160, 0)], cn=1)          # radius 80
    m2 = build(1, [("q", 185, 0), ("q", 325, 0)], cn=2)        # radius 70
    assert join_between(m1, m2)            # overlap semantics: joinable
    assert not literal_algorithm2(m1, m2)  # literal pseudocode: pruned
    out = []
    join_within_pair(ClusterJoinView(m1), ClusterJoinView(m2), 0.0, out)
    assert match_set(out)  # and there really are results to lose
