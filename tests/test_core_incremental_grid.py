"""Unit and equivalence tests for the SINA-style incremental grid baseline."""

import pytest

from repro.core import (
    IncrementalGridConfig,
    IncrementalGridJoin,
    NaiveJoin,
)
from repro.generator import GeneratorConfig, LocationUpdate, NetworkBasedGenerator, QueryUpdate
from repro.geometry import Point
from repro.streams import CollectingSink, EngineConfig, StreamEngine, match_set


def obj(oid, x, y, t=0.0):
    return LocationUpdate(oid, Point(x, y), t, 50.0, 1, Point(9000, 0))


def qry(qid, x, y, w=50.0, h=50.0, t=0.0):
    return QueryUpdate(qid, Point(x, y), t, 50.0, 1, Point(9000, 0), w, h)


class TestDeltaMaintenance:
    def test_object_entering_window(self):
        op = IncrementalGridJoin()
        op.on_update(qry(1, 100, 100))
        op.on_update(obj(1, 110, 100))
        assert match_set(op.evaluate(2.0)) == {(1, 1)}

    def test_object_leaving_window_same_cell(self):
        op = IncrementalGridJoin()
        op.on_update(qry(1, 50, 50))
        op.on_update(obj(1, 55, 50))
        op.on_update(obj(1, 90, 90, t=1.0))  # same cell, outside window
        assert op.evaluate(2.0) == []

    def test_object_leaving_window_across_cells(self):
        op = IncrementalGridJoin()
        op.on_update(qry(1, 100, 100))
        op.on_update(obj(1, 110, 100))
        op.on_update(obj(1, 5000, 5000, t=1.0))
        assert op.evaluate(2.0) == []

    def test_query_moving_rebuilds_answer(self):
        op = IncrementalGridJoin()
        op.on_update(obj(1, 110, 100))
        op.on_update(qry(1, 100, 100))
        assert match_set(op.evaluate(2.0)) == {(1, 1)}
        op.on_update(qry(1, 5000, 5000, t=1.0))
        assert op.evaluate(4.0) == []

    def test_query_moving_onto_object(self):
        op = IncrementalGridJoin()
        op.on_update(obj(1, 5000, 5000))
        op.on_update(qry(1, 100, 100))
        op.on_update(qry(1, 5010, 5000, t=1.0))
        assert match_set(op.evaluate(2.0)) == {(1, 1)}

    def test_evaluation_is_readoff(self):
        op = IncrementalGridJoin()
        op.on_update(qry(1, 100, 100))
        op.on_update(obj(1, 110, 100))
        before = op.delta_tests
        op.evaluate(2.0)
        # The join phase performs no window tests at all.
        assert op.delta_tests == before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IncrementalGridConfig(grid_size=0)

    def test_reset(self):
        op = IncrementalGridJoin()
        op.on_update(obj(1, 100, 100))
        op.reset()
        assert not op.objects


class TestEquivalence:
    @pytest.mark.parametrize("skew", [1, 15, 60])
    def test_matches_naive_over_workload(self, city, skew):
        def run(operator):
            generator = NetworkBasedGenerator(
                city,
                GeneratorConfig(num_objects=120, num_queries=120, skew=skew, seed=13),
            )
            sink = CollectingSink()
            StreamEngine(generator, operator, sink, EngineConfig()).run(5)
            return sink

        incremental = run(IncrementalGridJoin())
        naive = run(NaiveJoin())
        for t in naive.by_interval:
            assert match_set(incremental.by_interval[t]) == match_set(
                naive.by_interval[t]
            ), t

    def test_matches_naive_with_partial_updates(self, city):
        def run(operator):
            generator = NetworkBasedGenerator(
                city,
                GeneratorConfig(
                    num_objects=150,
                    num_queries=150,
                    skew=10,
                    seed=4,
                    update_fraction=0.6,
                ),
            )
            sink = CollectingSink()
            StreamEngine(generator, operator, sink, EngineConfig()).run(4)
            return sink

        # Both hold last-reported positions, so they must agree exactly
        # even when only a fraction of entities report.
        incremental = run(IncrementalGridJoin())
        naive = run(NaiveJoin())
        for t in naive.by_interval:
            assert match_set(incremental.by_interval[t]) == match_set(
                naive.by_interval[t]
            ), t
