"""Unit and property tests for points and vectors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, distance, distance_sq, midpoint

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPointBasics:
    def test_coordinates_are_floats(self):
        p = Point(1, 2)
        assert isinstance(p.x, float)
        assert isinstance(p.y, float)

    def test_immutable(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 3.0

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(2.0, 1.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))

    def test_equality_against_other_type(self):
        assert Point(0, 0) != "origin"

    def test_iteration_unpacks(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_repr_mentions_coordinates(self):
        assert "3" in repr(Point(3, 4)) and "4" in repr(Point(3, 4))


class TestPointArithmetic:
    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_division(self):
        assert Point(4, 6) / 2 == Point(2, 3)

    def test_negation(self):
        assert -Point(1, -2) == Point(-1, 2)


class TestPointGeometry:
    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_sq(self):
        assert Point(0, 0).distance_sq_to(Point(3, 4)) == 25.0

    def test_norm(self):
        assert Point(3, 4).norm() == 5.0

    def test_normalized_unit_length(self):
        n = Point(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)

    def test_normalized_zero_vector_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_is_close(self):
        assert Point(1, 1).is_close(Point(1 + 1e-12, 1 - 1e-12))
        assert not Point(1, 1).is_close(Point(1.1, 1))

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(4, 6)) == Point(2, 3)


class TestRawHelpers:
    def test_distance_matches_method(self):
        assert distance(0, 0, 3, 4) == Point(0, 0).distance_to(Point(3, 4))

    def test_distance_sq_matches_method(self):
        assert distance_sq(1, 1, 4, 5) == Point(1, 1).distance_sq_to(Point(4, 5))


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == b.distance_to(a)

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite, finite, finite)
    def test_add_then_subtract_roundtrip(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert ((a + b) - b).is_close(a, tol=1e-6)

    @given(finite, finite)
    def test_distance_to_self_is_zero(self, x, y):
        p = Point(x, y)
        assert p.distance_to(p) == 0.0
