"""Unit tests for the continuous kNN operator."""

import math

import pytest

from repro.generator import (
    EntityKind,
    GeneratorConfig,
    LocationUpdate,
    NetworkBasedGenerator,
    QueryUpdate,
)
from repro.geometry import Point
from repro.queries import KnnConfig, ScubaKnn
from repro.streams import CollectingSink, EngineConfig, StreamEngine


def obj(oid, x, y, t=0.0, speed=50.0, cn=1, cn_loc=Point(9000, 0)):
    return LocationUpdate(oid, Point(x, y), t, speed, cn, cn_loc)


def knn_query(qid, x, y, k, t=0.0):
    return QueryUpdate(
        qid, Point(x, y), t, 0.0, 0, Point(0, 0), 1.0, 1.0, attrs={"k": k}
    )


class TestConfig:
    def test_invalid_default_k(self):
        with pytest.raises(ValueError):
            KnnConfig(default_k=0)

    def test_bounds_defaulted(self):
        assert KnnConfig().bounds is not None


class TestIngest:
    def test_objects_clustered(self):
        op = ScubaKnn()
        op.on_update(obj(1, 100, 100))
        op.on_update(obj(2, 110, 100))
        assert op.cluster_count == 1

    def test_query_registration_via_update(self):
        op = ScubaKnn()
        op.on_update(knn_query(1, 500, 500, k=3))
        assert 1 in op.queries
        assert op.queries[1].k == 3

    def test_query_position_moves(self):
        op = ScubaKnn()
        op.on_update(knn_query(1, 500, 500, k=3))
        op.on_update(knn_query(1, 600, 600, k=3, t=1.0))
        assert op.queries[1].loc == Point(600, 600)

    def test_default_k_applied(self):
        op = ScubaKnn(KnnConfig(default_k=7))
        update = QueryUpdate(2, Point(0, 0), 0.0, 0.0, 0, Point(0, 0), 1.0, 1.0)
        op.on_update(update)
        assert op.queries[2].k == 7

    def test_invalid_k_rejected(self):
        op = ScubaKnn()
        with pytest.raises(ValueError):
            op.on_update(knn_query(1, 0, 0, k=0))
        with pytest.raises(ValueError):
            op.register_query(5, Point(0, 0), 0)

    def test_remove_query(self):
        op = ScubaKnn()
        op.register_query(1, Point(0, 0), 3)
        op.remove_query(1)
        assert 1 not in op.queries
        op.remove_query(99)  # no-op


class TestEvaluate:
    def test_answers_are_k_nearest(self):
        op = ScubaKnn()
        positions = [(i, 100 + i * 50, 100) for i in range(6)]
        for oid, x, y in positions:
            op.on_update(obj(oid, x, y))
        op.register_query(1, Point(90, 100), 3)
        matches = op.evaluate(2.0)
        assert [m.oid for m in matches] == [0, 1, 2]
        assert all(m.qid == 1 for m in matches)

    def test_matches_brute_force_over_workload(self, city):
        generator = NetworkBasedGenerator(
            city, GeneratorConfig(num_objects=120, num_queries=0, skew=15, seed=4)
        )
        op = ScubaKnn()
        engine = StreamEngine(generator, op, config=EngineConfig())
        for _ in range(2):
            engine.run_interval()
        probe = Point(5000, 5000)
        op.register_query(1, probe, 5)
        matches = [m for m in op.evaluate(generator.time) if m.qid == 1]
        snapshot = generator.snapshot()
        # Note: cluster state approximates entities that just crossed their
        # destination nodes; compare against the operator's own view.
        expected = sorted(
            (
                (op.world.storage.get(
                    op.world.home.cluster_of(u.oid, EntityKind.OBJECT)
                ), u.oid)
                for u in snapshot
                if op.world.home.cluster_of(u.oid, EntityKind.OBJECT) is not None
            ),
            key=lambda pair: _member_distance(pair[0], pair[1], probe),
        )[:5]
        assert [m.oid for m in matches] == [oid for _c, oid in expected]

    def test_multiple_queries_sorted_by_qid(self):
        op = ScubaKnn()
        op.on_update(obj(1, 100, 100))
        op.on_update(obj(2, 4000, 4000, cn=2, cn_loc=Point(0, 0)))
        op.register_query(2, Point(4000, 4000), 1)
        op.register_query(1, Point(100, 100), 1)
        matches = op.evaluate(2.0)
        assert [(m.qid, m.oid) for m in matches] == [(1, 1), (2, 2)]

    def test_maintenance_runs(self):
        op = ScubaKnn()
        # An object about to pass its destination: cluster dissolves.
        op.on_update(obj(1, 8990, 0, speed=100.0, cn=1, cn_loc=Point(9000, 0)))
        op.register_query(1, Point(8990, 0), 1)
        op.evaluate(2.0)
        assert op.cluster_count == 0

    def test_engine_integration(self, city):
        generator = NetworkBasedGenerator(
            city, GeneratorConfig(num_objects=60, num_queries=0, skew=10, seed=6)
        )
        op = ScubaKnn(KnnConfig(default_k=2))
        op.register_query(1, Point(5000, 5000), 2)
        sink = CollectingSink()
        StreamEngine(generator, op, sink, EngineConfig()).run(3)
        for t, matches in sink.by_interval.items():
            assert len(matches) == 2, t

    def test_reset(self):
        op = ScubaKnn()
        op.on_update(obj(1, 100, 100))
        op.register_query(1, Point(0, 0), 1)
        op.reset()
        assert op.cluster_count == 0
        assert not op.queries


def _member_distance(cluster, oid, probe):
    member = cluster.get_member(oid, EntityKind.OBJECT)
    loc = cluster.member_location(member)
    return math.hypot(loc.x - probe.x, loc.y - probe.y)
