"""The async service loop: equivalence, backpressure, overload recovery.

These tests run :class:`EvaluationService` in-process (no subprocesses;
the kill-and-resume smoke lives in ``test_serve_smoke.py``) and pin the
service-mode contracts: answers equal to the batch engine, the ladder
escalating under pressure and relaxing when it clears, heartbeat
filtering at the top level, visible counters for every decision.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import Scuba, ScubaConfig
from repro.generator import GeneratorConfig, NetworkBasedGenerator
from repro.network import grid_city
from repro.serve import (
    BackpressureConfig,
    BackpressureController,
    CallbackEmitter,
    EvaluationService,
    IntervalBufferSink,
    QueuedTickSource,
    ServeConfig,
    TickBatch,
    TickSource,
    build_source,
    generator_spec,
    state_digest,
)
from repro.streams import CollectingSink, EngineConfig, StreamEngine

QUERY_RANGE = (120.0, 120.0)


def workload_config(seed: int = 7) -> GeneratorConfig:
    # 200/200 at skew 20: convoys converge enough that matches appear
    # from the 4th interval on — enough signal for equivalence checks.
    return GeneratorConfig(
        num_objects=200,
        num_queries=200,
        skew=20,
        seed=seed,
        query_range=QUERY_RANGE,
    )


def make_service(
    *,
    scuba_config=None,
    queue_depth=4,
    policy="block",
    max_intervals=5,
    source=None,
    events=None,
):
    spec = generator_spec(
        city_rows=11, city_cols=11, generator_config=workload_config()
    )
    source = source if source is not None else build_source(spec)
    bridge = QueuedTickSource()
    sink = IntervalBufferSink()
    engine = StreamEngine(
        bridge, Scuba(scuba_config or ScubaConfig()), sink, EngineConfig()
    )
    emitters = [CallbackEmitter(events.append)] if events is not None else []
    service = EvaluationService(
        engine,
        bridge,
        source,
        sink,
        emitters=emitters,
        config=ServeConfig(
            engine=EngineConfig(),
            backpressure=BackpressureConfig(
                queue_depth=queue_depth, policy=policy
            ),
            max_intervals=max_intervals,
            emit_matches=True,
        ),
        engine_manifest={"kind": "serial"},
    )
    return service, engine


class TestServiceEquivalence:
    def test_matches_batch_engine_exactly(self):
        """Service answers and final state equal the batch engine's."""
        ref_sink = CollectingSink()
        ref = StreamEngine(
            NetworkBasedGenerator(grid_city(), workload_config()),
            Scuba(),
            ref_sink,
            EngineConfig(),
        )
        ref.run(5)
        ref_answers = sorted((m.qid, m.oid, m.t) for m in ref_sink.all_matches)
        assert ref_answers

        events = []
        service, engine = make_service(events=events)
        summary = service.run_forever()
        got = sorted(
            (m["qid"], m["oid"], m["t"])
            for e in events
            if e["event"] == "results"
            for m in e["matches"]
        )
        assert got == ref_answers
        assert state_digest(engine.operator) == state_digest(ref.operator)
        assert summary["intervals"] == 5
        # Deterministic accounting only: whether the undersized queue
        # visibly fills depends on how far the producer coroutine runs
        # ahead of evaluation, which OS scheduling decides (under heavy
        # host contention it can stay exactly in step).  Overload
        # visibility is pinned where it is forced by construction:
        # TestOverload's phased burst source and the socket-fed
        # subprocess smoke in test_serve_smoke.py.
        # >= consumed: the producer admits ahead of evaluation, so the
        # admitted count exceeds the 10 consumed ticks by up to the
        # queue depth plus the one batch in flight.
        assert 10 <= summary["counters"]["bp_ticks_admitted"] <= 10 + 4 + 1
        assert summary["counters"]["bp_ticks_dropped"] == 0
        assert summary["counters"]["bp_level"] == 0

    def test_event_stream_shape(self):
        events = []
        service, _ = make_service(events=events, max_intervals=2)
        service.run_forever()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "started"
        assert kinds[-1] == "summary"
        assert kinds.count("results") == 2
        started = events[0]
        assert started["source"] == "generator"
        assert started["policy"] == "block"


class _PhasedSource(TickSource):
    """Fast burst, then a slow trickle — drives the ladder both ways."""

    def __init__(self, fast_ticks: int, slow_ticks: int, delay: float) -> None:
        self.generator = NetworkBasedGenerator(grid_city(), workload_config())
        self.fast_ticks = fast_ticks
        self.slow_ticks = slow_ticks
        self.delay = delay
        self.produced = 0

    async def next_batch(self):
        if self.produced >= self.fast_ticks + self.slow_ticks:
            return None
        if self.produced >= self.fast_ticks:
            await asyncio.sleep(self.delay)
        else:
            await asyncio.sleep(0)
        self.produced += 1
        return TickBatch(self.generator.time + 1.0, self.generator.tick(1.0))

    def spec(self):
        return {"kind": "phased"}


class TestOverload:
    def test_shed_policy_escalates_and_recovers(self):
        """Under pressure the ladder walks up (forcing the adaptive
        shedder), the service stays up, and when pressure clears the
        ladder walks back down — all of it emitted and counted."""
        events = []
        source = _PhasedSource(fast_ticks=16, slow_ticks=8, delay=0.05)
        service, engine = make_service(
            scuba_config=ScubaConfig(adaptive_shedding=True, shed_budget=50),
            queue_depth=4,
            policy="shed",
            max_intervals=12,
            source=source,
            events=events,
        )
        summary = service.run_forever()
        counters = summary["counters"]
        assert counters["bp_escalations"] > 0, "queue pressure must escalate"
        assert counters["bp_relaxations"] > 0, "drained queue must relax"
        sheds = [e for e in events if e["event"] == "shedding"]
        directions = {e["direction"] for e in sheds}
        assert {"escalate", "relax"} <= directions
        # Escalation reached the operator's adaptive shedder: its floor
        # was pinned at some point (level 1+) and the service finished.
        assert summary["intervals"] == 12
        assert engine.operator.shedder is not None

    def test_drop_policy_discards_whole_ticks(self):
        """At a full queue the drop policy discards ticks, counts them,
        and the service still completes."""

        events = []
        source = _PhasedSource(fast_ticks=30, slow_ticks=0, delay=0.0)
        service, _ = make_service(
            queue_depth=2,
            policy="drop",
            max_intervals=3,
            source=source,
            events=events,
        )
        summary = service.run_forever()
        assert summary["intervals"] == 3
        counters = summary["counters"]
        assert counters["bp_ticks_dropped"] > 0
        assert any(e["event"] == "overload" for e in events)


class TestBackpressureController:
    def test_heartbeat_filter_drops_unchanged_reports(self):
        controller = BackpressureController(BackpressureConfig(policy="shed"))
        generator = NetworkBasedGenerator(grid_city(), workload_config())
        updates = generator.tick(1.0)
        # Level 0: everything admitted, history recorded.
        batch = controller.admit(TickBatch(1.0, updates))
        assert len(batch.updates) == len(updates)
        controller.level = 2
        # Same positions re-reported: heartbeat-only, dropped.
        repeat = controller.admit(TickBatch(2.0, updates))
        assert repeat.updates == []
        assert controller.counters()["bp_heartbeats_dropped"] == len(updates)
        # Moved entities pass through again.
        moved = generator.tick(1.0)
        fresh = controller.admit(TickBatch(3.0, moved))
        assert fresh.updates, "moved entities must not be heartbeat-filtered"

    def test_block_policy_never_walks_ladder(self):
        controller = BackpressureController(
            BackpressureConfig(queue_depth=4, policy="block")
        )
        assert controller.observe_depth(4) is None
        assert controller.level == 0
        assert controller.counters()["bp_queue_peak"] == 4

    def test_ladder_hysteresis(self):
        controller = BackpressureController(
            BackpressureConfig(queue_depth=4, policy="shed")
        )
        assert controller.observe_depth(3) == "escalate"
        assert controller.level == 1
        # Mid-band: no transition either way.
        assert controller.observe_depth(2) is None
        assert controller.observe_depth(3) == "escalate"
        assert controller.level == 2
        # Top of the ladder: stays put.
        assert controller.observe_depth(4) is None
        assert controller.observe_depth(1) == "relax"
        assert controller.observe_depth(0) == "relax"
        assert controller.level == 0

    def test_snapshot_roundtrip(self):
        controller = BackpressureController(
            BackpressureConfig(queue_depth=4, policy="shed")
        )
        controller.observe_depth(3)
        controller.note_overload()
        state = controller.snapshot_state()
        restored = BackpressureController(
            BackpressureConfig(queue_depth=4, policy="shed")
        )
        restored.restore_state(state)
        assert restored.level == 1
        assert restored.counters()["bp_overload_events"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="queue_depth"):
            BackpressureConfig(queue_depth=0)
        with pytest.raises(ValueError, match="policy"):
            BackpressureConfig(policy="panic")
        with pytest.raises(ValueError, match="watermarks"):
            BackpressureConfig(high_water=0.2, low_water=0.5)


class TestServeConfig:
    def test_checkpoint_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            ServeConfig(checkpoint_every=2)
        with pytest.raises(ValueError, match="checkpoint_every"):
            ServeConfig(checkpoint_every=-1)


class TestEofHandling:
    def test_trailing_partial_interval_is_discarded_visibly(self):
        """5 ticks with Δ=2 ticks → 2 intervals + 1 tick dropped at EOF."""
        spec = generator_spec(
            city_rows=11,
            city_cols=11,
            generator_config=workload_config(),
            max_ticks=5,
        )
        events = []
        service, _ = make_service(
            source=build_source(spec), max_intervals=0, events=events
        )
        summary = service.run_forever()
        assert summary["intervals"] == 2
        assert summary["counters"]["ticks_discarded_at_eof"] == 1
        assert summary["cursor"] == 4


class TestBoundedSinkCounter:
    def test_dropped_matches_surface_in_run_stats(self):
        """A bounded CollectingSink's evictions land in RunStats counters
        (and therefore in to_dict()), not just on the sink object."""
        sink = CollectingSink(max_retained=5)
        engine = StreamEngine(
            NetworkBasedGenerator(grid_city(), workload_config()),
            Scuba(),
            sink,
            EngineConfig(),
        )
        engine.run(5)
        assert sink.dropped_matches > 0
        assert engine.stats.counters["sink_dropped_matches"] == sink.dropped_matches
        assert (
            engine.stats.to_dict()["counters"]["sink_dropped_matches"]
            == sink.dropped_matches
        )
