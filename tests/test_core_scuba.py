"""Unit tests for the SCUBA operator's three-phase execution."""

import pytest

from repro.core import Scuba, ScubaConfig
from repro.generator import EntityKind, LocationUpdate, QueryUpdate
from repro.geometry import Point
from repro.streams import match_set


def obj(oid, x, y, t=0.0, speed=50.0, cn=1, cn_loc=Point(9000, 0)):
    return LocationUpdate(oid, Point(x, y), t, speed, cn, cn_loc)


def qry(qid, x, y, t=0.0, speed=50.0, cn=1, cn_loc=Point(9000, 0), w=50.0, h=50.0):
    return QueryUpdate(qid, Point(x, y), t, speed, cn, cn_loc, w, h)


class TestConfig:
    def test_defaults_match_paper(self):
        config = ScubaConfig()
        assert config.grid_size == 100
        assert config.theta_d == 100.0
        assert config.theta_s == 10.0
        assert config.delta == 2.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ScubaConfig(grid_size=0)
        with pytest.raises(ValueError):
            ScubaConfig(delta=0)


class TestPreJoinPhase:
    def test_updates_populate_tables(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100, attrs_dummy := None) if False else obj(1, 100, 100))
        op.on_update(qry(1, 200, 200))
        assert 1 in op.objects_table
        assert 1 in op.queries_table

    def test_updates_form_clusters(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100))
        op.on_update(obj(2, 120, 100))
        assert op.cluster_count == 1

    def test_dissimilar_updates_form_separate_clusters(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100))
        op.on_update(obj(2, 5000, 5000))
        assert op.cluster_count == 2


class TestJoiningPhase:
    def test_self_join_of_mixed_cluster(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100, t=1.0))
        op.on_update(qry(1, 110, 100, t=1.0))
        matches = op.evaluate(2.0)
        assert match_set(matches) == {(1, 1)}

    def test_cross_cluster_join(self):
        op = Scuba()
        # Two clusters with different destinations, spatially adjacent.
        op.on_update(obj(1, 100, 100, cn=1))
        op.on_update(qry(1, 120, 100, cn=2, cn_loc=Point(0, 0)))
        assert op.cluster_count == 2
        matches = op.evaluate(2.0)
        assert match_set(matches) == {(1, 1)}

    def test_no_duplicate_matches_across_shared_cells(self):
        op = Scuba(ScubaConfig(grid_size=200))  # small cells: clusters span several
        op.on_update(obj(1, 100, 100, cn=1))
        op.on_update(obj(2, 180, 100, cn=1))
        op.on_update(qry(1, 140, 100, cn=2, cn_loc=Point(0, 0), w=200.0, h=200.0))
        matches = op.evaluate(2.0)
        assert len(matches) == len(match_set(matches))

    def test_between_filter_counts(self):
        op = Scuba()
        # 30 units apart: within the 35.36-unit query-window reach.
        op.on_update(obj(1, 100, 100, cn=1))
        op.on_update(qry(1, 130, 100, cn=2, cn_loc=Point(0, 0)))
        op.evaluate(2.0)
        assert op.between_tests >= 1
        assert op.between_hits >= 1

    def test_between_filter_prunes_near_miss(self):
        op = Scuba()
        # 50 units apart: beyond the query reach, pruned by join-between.
        op.on_update(obj(1, 100, 100, cn=1))
        op.on_update(qry(1, 150, 100, cn=2, cn_loc=Point(0, 0)))
        op.evaluate(2.0)
        assert op.between_tests >= 1
        assert op.between_hits == 0
        assert op.within_tests == 0

    def test_filter_disabled_still_correct(self):
        results = {}
        for use_filter in (True, False):
            op = Scuba(ScubaConfig(use_between_filter=use_filter))
            op.on_update(obj(1, 100, 100, cn=1))
            op.on_update(qry(1, 120, 100, cn=2, cn_loc=Point(0, 0)))
            results[use_filter] = match_set(op.evaluate(2.0))
        assert results[True] == results[False]

    def test_empty_operator_evaluates_to_nothing(self):
        op = Scuba()
        assert op.evaluate(2.0) == []


class TestPostJoinMaintenance:
    def test_cluster_dissolved_at_destination(self):
        op = Scuba()
        # Fast cluster 10 units from its destination: passes it within delta.
        op.on_update(obj(1, 8990, 0, speed=100.0, cn=1, cn_loc=Point(9000, 0)))
        assert op.cluster_count == 1
        op.evaluate(2.0)
        assert op.cluster_count == 0

    def test_cluster_advanced_toward_destination(self):
        op = Scuba()
        op.on_update(obj(1, 100, 0, t=0.0, speed=50.0, cn=1, cn_loc=Point(9000, 0)))
        cluster = next(iter(op.world.storage))
        op.evaluate(2.0)
        # advance_to(2.0) moved the cluster 2 time units at speed 50.
        assert cluster.cx == pytest.approx(200.0)

    def test_expiry_disabled_by_ablation(self):
        op = Scuba(ScubaConfig(expire_clusters=False))
        op.on_update(obj(1, 8990, 0, speed=100.0, cn=1, cn_loc=Point(9000, 0)))
        op.evaluate(2.0)
        assert op.cluster_count == 1

    def test_dissolved_members_recluster_on_next_update(self):
        op = Scuba()
        op.on_update(obj(1, 8990, 0, t=1.0, speed=100.0, cn=1, cn_loc=Point(9000, 0)))
        op.evaluate(2.0)
        op.on_update(obj(1, 8800, 100, t=3.0, speed=100.0, cn=2, cn_loc=Point(0, 0)))
        assert op.cluster_count == 1

    def test_radius_recomputed_each_interval(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100, t=1.0))
        op.on_update(obj(2, 180, 100, t=1.0))
        # Both members report again, close together: after maintenance the
        # radius must have shrunk to the tight bound (5 units around the
        # member mean), not kept the absorb-time 40-unit footprint.
        op.on_update(obj(1, 100, 100, t=2.0))
        op.on_update(obj(2, 110, 100, t=2.0))
        op.evaluate(2.0)
        cluster = next(iter(op.world.storage))
        assert cluster.radius == pytest.approx(5.0, abs=1e-6)


class TestOperatorProtocol:
    def test_state_roots_are_the_five_structures(self):
        op = Scuba()
        roots = op.state_roots()
        assert op.objects_table in roots
        assert op.queries_table in roots
        assert op.world.home in roots
        assert op.world.storage in roots
        assert op.world.grid in roots

    def test_reset_clears_state(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100))
        op.reset()
        assert op.cluster_count == 0
        assert len(op.objects_table) == 0

    def test_repr_mentions_counts(self):
        op = Scuba()
        op.on_update(obj(1, 100, 100))
        assert "1 clusters" in repr(op)
