"""Merged-equivalence: the sharded engine must reproduce StreamEngine.

The load-bearing guarantee of ``repro.parallel`` is that sharding is an
execution detail, not a semantics change: for exact operators (no load
shedding) the owner-filtered merge of K shards equals the single-process
answer *as a multiset* — same match set, same count, every interval — for
any K, including boundary-straddling entities replicated into several
halos.

Load shedding is the documented exception: shed answers are derived from
cluster shapes, and clusters form per shard, so K>1 shed answers can
deviate slightly from the single-process run near tile seams.  K=1 (one
shard holds the whole workspace) must stay exact even when shedding; K>1
is pinned to a tight deviation bound.
"""

from collections import Counter

import pytest

from repro.core import (
    IncrementalGridConfig,
    IncrementalGridJoin,
    NaiveJoin,
    RegularConfig,
    RegularGridJoin,
    Scuba,
    ScubaConfig,
)
from repro.generator import GeneratorConfig, NetworkBasedGenerator
from repro.network import grid_city
from repro.parallel import (
    IncrementalGridShardFactory,
    NaiveShardFactory,
    RegularShardFactory,
    ScubaShardFactory,
    ShardedEngine,
)
from repro.shedding import policy_for_eta
from repro.streams import CollectingSink, EngineConfig, StreamEngine

INTERVALS = 4
QUERY_RANGE = (120.0, 120.0)


@pytest.fixture(scope="module")
def equivalence_city():
    return grid_city(rows=11, cols=11)


def make_generator(city, seed):
    """A dense workload: mixed convoys + wide windows force many matches,
    and the 11x11 lattice routes convoys across the 2x2/4x... tile seams."""
    return NetworkBasedGenerator(
        city,
        GeneratorConfig(
            num_objects=150,
            num_queries=150,
            skew=30,
            seed=seed,
            mixed_groups=True,
            query_range=QUERY_RANGE,
        ),
    )


def reference_run(city, operator, seed):
    sink = CollectingSink()
    engine = StreamEngine(
        make_generator(city, seed), operator, sink, EngineConfig(delta=2.0)
    )
    engine.run(INTERVALS)
    return sink


def sharded_run(city, factory, shards, seed, executor="serial"):
    sink = CollectingSink()
    with ShardedEngine(
        make_generator(city, seed),
        factory,
        shards=shards,
        sink=sink,
        config=EngineConfig(delta=2.0),
        executor=executor,
    ) as engine:
        engine.run(INTERVALS)
    return sink, engine.stats


def interval_multisets(sink):
    """Per-interval (qid, oid) multisets — count equality included."""
    return {
        t: Counter((m.qid, m.oid) for m in matches)
        for t, matches in sink.by_interval.items()
    }


def scuba_factory(eta=0.0):
    return ScubaShardFactory(
        ScubaConfig(delta=2.0, shedding=policy_for_eta(eta, 100.0)),
        max_query_extent=QUERY_RANGE,
    )


def scuba_operator(eta=0.0):
    return Scuba(ScubaConfig(delta=2.0, shedding=policy_for_eta(eta, 100.0)))


class TestExactOperators:
    """Without shedding, sharding must be invisible — any K, any operator."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [7, 42])
    def test_scuba_matches_stream_engine(self, equivalence_city, shards, seed):
        reference = reference_run(equivalence_city, scuba_operator(), seed)
        sink, stats = sharded_run(equivalence_city, scuba_factory(), shards, seed)
        assert interval_multisets(sink) == interval_multisets(reference)
        assert len(sink.all_matches) == len(reference.all_matches)
        if shards > 1:
            # The workload genuinely straddles tile seams: halo copies
            # produced duplicate matches that the merger had to drop.
            assert stats.total_duplicates_dropped > 0
            assert stats.replication_factor > 1.0

    @pytest.mark.parametrize("shards", [2, 4])
    def test_regular_matches_stream_engine(self, equivalence_city, shards):
        reference = reference_run(
            equivalence_city, RegularGridJoin(RegularConfig()), seed=7
        )
        factory = RegularShardFactory(RegularConfig(), max_query_extent=QUERY_RANGE)
        sink, _stats = sharded_run(equivalence_city, factory, shards, seed=7)
        assert interval_multisets(sink) == interval_multisets(reference)

    def test_naive_with_partial_updates(self, equivalence_city):
        """Partial reporting exercises retract-then-silence placements."""

        def gen():
            return NetworkBasedGenerator(
                equivalence_city,
                GeneratorConfig(
                    num_objects=100, num_queries=100, skew=20, seed=11,
                    mixed_groups=True, query_range=QUERY_RANGE,
                    update_fraction=0.6,
                ),
            )

        reference = CollectingSink()
        StreamEngine(
            gen(), NaiveJoin(), reference, EngineConfig(delta=2.0)
        ).run(INTERVALS)
        sink = CollectingSink()
        with ShardedEngine(
            gen(),
            NaiveShardFactory(max_query_extent=QUERY_RANGE),
            shards=4,
            sink=sink,
            config=EngineConfig(delta=2.0),
        ) as engine:
            engine.run(INTERVALS)
        assert interval_multisets(sink) == interval_multisets(reference)


def legacy_loop_run(city, operator, seed, intervals=INTERVALS, delta=2.0):
    """The pre-pipeline interval loop, hand-rolled.

    Exactly what both engines did before the staged refactor: tick the
    generator, push updates straight into the operator, evaluate at the Δ
    boundary, deliver to the sink.  The pipeline-driven engines must
    reproduce this bit-for-bit.
    """
    sink = CollectingSink()
    generator = make_generator(city, seed)
    config = EngineConfig(delta=delta)
    for _ in range(intervals):
        for _ in range(config.ticks_per_interval):
            for update in generator.tick(config.tick):
                operator.on_update(update)
        now = generator.time
        sink.accept(operator.evaluate(now), now)
    return sink


class TestPipelineVsSeed:
    """The staged pipeline is a pure refactor: identical results to the
    pre-refactor loop, per interval, in order — serial and sharded."""

    OPERATORS = [
        pytest.param(lambda: Scuba(ScubaConfig(delta=2.0)), id="scuba"),
        pytest.param(lambda: RegularGridJoin(RegularConfig()), id="regular"),
        pytest.param(lambda: NaiveJoin(), id="naive"),
        pytest.param(
            lambda: IncrementalGridJoin(IncrementalGridConfig()), id="incremental"
        ),
    ]

    @pytest.mark.parametrize("make_op", OPERATORS)
    @pytest.mark.parametrize("seed", [7, 42])
    def test_stream_engine_matches_legacy_loop(
        self, equivalence_city, make_op, seed
    ):
        reference = legacy_loop_run(equivalence_city, make_op(), seed)
        engine_sink = reference_run(equivalence_city, make_op(), seed)
        # Bit-identical, not just multiset-equal: same matches, same order.
        assert engine_sink.by_interval == reference.by_interval

    @pytest.mark.parametrize("make_op", OPERATORS[:3])
    def test_sharded_engine_matches_legacy_loop(self, equivalence_city, make_op):
        seed = 7
        factories = {
            "scuba": scuba_factory,
            "regular": lambda: RegularShardFactory(
                RegularConfig(), max_query_extent=QUERY_RANGE
            ),
            "naive": lambda: NaiveShardFactory(max_query_extent=QUERY_RANGE),
        }
        name = type(make_op()).__name__
        key = {"Scuba": "scuba", "RegularGridJoin": "regular", "NaiveJoin": "naive"}[
            name
        ]
        reference = legacy_loop_run(equivalence_city, make_op(), seed)
        sink, _ = sharded_run(equivalence_city, factories[key](), 4, seed)
        assert interval_multisets(sink) == interval_multisets(reference)


class TestIncrementalGridSharding:
    """The answer-maintaining baseline shards exactly like the others."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_incremental_matches_stream_engine(self, equivalence_city, shards):
        reference = reference_run(
            equivalence_city, IncrementalGridJoin(IncrementalGridConfig()), seed=7
        )
        factory = IncrementalGridShardFactory(
            IncrementalGridConfig(), max_query_extent=QUERY_RANGE
        )
        sink, stats = sharded_run(equivalence_city, factory, shards, seed=7)
        assert interval_multisets(sink) == interval_multisets(reference)
        if shards > 1:
            assert stats.replication_factor > 1.0

    def test_incremental_with_partial_updates(self, equivalence_city):
        """Partial reporting exercises retract() answer-set cleanup."""

        def gen():
            return NetworkBasedGenerator(
                equivalence_city,
                GeneratorConfig(
                    num_objects=100, num_queries=100, skew=20, seed=11,
                    mixed_groups=True, query_range=QUERY_RANGE,
                    update_fraction=0.6,
                ),
            )

        reference = CollectingSink()
        StreamEngine(
            gen(),
            IncrementalGridJoin(IncrementalGridConfig()),
            reference,
            EngineConfig(delta=2.0),
        ).run(INTERVALS)
        sink = CollectingSink()
        with ShardedEngine(
            gen(),
            IncrementalGridShardFactory(
                IncrementalGridConfig(), max_query_extent=QUERY_RANGE
            ),
            shards=4,
            sink=sink,
            config=EngineConfig(delta=2.0),
        ) as engine:
            engine.run(INTERVALS)
        assert interval_multisets(sink) == interval_multisets(reference)


class TestLoadShedding:
    @pytest.mark.parametrize("eta", [0.5, 1.0])
    @pytest.mark.parametrize("seed", [7, 13, 42])
    def test_single_shard_shedding_exact(self, equivalence_city, eta, seed):
        """K=1 holds the whole workspace: shedding sees identical clusters."""
        reference = reference_run(equivalence_city, scuba_operator(eta), seed)
        sink, _ = sharded_run(equivalence_city, scuba_factory(eta), 1, seed)
        assert interval_multisets(sink) == interval_multisets(reference)

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("eta", [0.5, 1.0])
    def test_multi_shard_shedding_bounded_deviation(
        self, equivalence_city, shards, eta
    ):
        """K>1 shed answers may deviate near seams — but only slightly.

        Clusters form per shard, so a boundary convoy's nucleus can differ
        between the sharded and single-process runs.  Deviation is pinned
        to <1% of the answer volume (measured: 0–0.6% across seeds).
        """
        seed = 42
        reference = reference_run(equivalence_city, scuba_operator(eta), seed)
        sink, _ = sharded_run(equivalence_city, scuba_factory(eta), shards, seed)
        ref_pairs = {
            (t, pair)
            for t, counts in interval_multisets(reference).items()
            for pair in counts
        }
        got_pairs = {
            (t, pair)
            for t, counts in interval_multisets(sink).items()
            for pair in counts
        }
        deviation = len(ref_pairs ^ got_pairs)
        assert deviation <= 0.01 * max(1, len(ref_pairs))


class TestProcessExecutor:
    def test_process_bit_identical_to_serial(self, equivalence_city):
        """Executors are interchangeable: same matches, same order."""
        serial_sink, serial_stats = sharded_run(
            equivalence_city, scuba_factory(), 2, seed=7, executor="serial"
        )
        process_sink, process_stats = sharded_run(
            equivalence_city, scuba_factory(), 2, seed=7, executor="process"
        )
        assert process_sink.by_interval == serial_sink.by_interval
        assert (
            process_stats.total_duplicates_dropped
            == serial_stats.total_duplicates_dropped
        )
        assert process_stats.total_tuple_count == serial_stats.total_tuple_count
