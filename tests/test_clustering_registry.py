"""Unit tests for ClusterStorage, ClusterHome, ClusterGrid, ClusterWorld."""

import pytest

from repro.clustering import ClusterWorld, MovingCluster
from repro.clustering.registry import ClusterHome, ClusterStorage
from repro.generator import EntityKind, LocationUpdate
from repro.geometry import Point, Rect

BOUNDS = Rect(0, 0, 10_000, 10_000)


def obj(oid, x, y, t=0.0, speed=50.0):
    return LocationUpdate(oid, Point(x, y), t, speed, 1, Point(9000, 9000))


class TestClusterStorage:
    def test_allocate_monotonic_ids(self):
        storage = ClusterStorage()
        assert storage.allocate_cid() == 0
        assert storage.allocate_cid() == 1

    def test_duplicate_cid_rejected(self):
        storage = ClusterStorage()
        c = MovingCluster(0, Point(0, 0), 1, Point(1, 1), 0.0)
        storage.add(c)
        with pytest.raises(ValueError):
            storage.add(c)

    def test_clusters_sorted_by_cid(self):
        storage = ClusterStorage()
        for cid in (2, 0, 1):
            storage.add(MovingCluster(cid, Point(0, 0), 1, Point(1, 1), 0.0))
        assert [c.cid for c in storage.clusters()] == [0, 1, 2]

    def test_contains_and_len(self):
        storage = ClusterStorage()
        storage.add(MovingCluster(5, Point(0, 0), 1, Point(1, 1), 0.0))
        assert 5 in storage
        assert 6 not in storage
        assert len(storage) == 1


class TestClusterHome:
    def test_assign_and_release(self):
        home = ClusterHome()
        home.assign(1, EntityKind.OBJECT, 10)
        assert home.cluster_of(1, EntityKind.OBJECT) == 10
        home.release(1, EntityKind.OBJECT)
        assert home.cluster_of(1, EntityKind.OBJECT) is None

    def test_kinds_do_not_collide(self):
        home = ClusterHome()
        home.assign(1, EntityKind.OBJECT, 10)
        home.assign(1, EntityKind.QUERY, 20)
        assert home.cluster_of(1, EntityKind.OBJECT) == 10
        assert home.cluster_of(1, EntityKind.QUERY) == 20
        assert len(home) == 2

    def test_release_missing_is_noop(self):
        home = ClusterHome()
        home.release(99, EntityKind.OBJECT)  # must not raise


class TestClusterWorld:
    def test_create_registers_everywhere(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(900, 900), 0.0)
        assert cluster.cid in world.storage
        assert cluster.grid_cells
        assert world.cluster_count == 1

    def test_absorb_assigns_home(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(900, 900), 0.0)
        world.absorb(cluster, obj(1, 500, 500))
        assert world.home.cluster_of(1, EntityKind.OBJECT) == cluster.cid

    def test_evict_dissolves_empty_cluster(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(900, 900), 0.0)
        world.absorb(cluster, obj(1, 500, 500))
        world.evict(cluster, 1, EntityKind.OBJECT)
        assert cluster.cid not in world.storage
        assert world.home.cluster_of(1, EntityKind.OBJECT) is None

    def test_evict_keeps_nonempty_cluster(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(900, 900), 0.0)
        world.absorb(cluster, obj(1, 500, 500))
        world.absorb(cluster, obj(2, 510, 500))
        world.evict(cluster, 1, EntityKind.OBJECT)
        assert cluster.cid in world.storage
        assert cluster.n == 1

    def test_dissolve_clears_all_members(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(900, 900), 0.0)
        for i in range(3):
            world.absorb(cluster, obj(i, 500 + i, 500))
        world.dissolve(cluster)
        assert world.cluster_count == 0
        for i in range(3):
            assert world.home.cluster_of(i, EntityKind.OBJECT) is None


class TestClusterGridSlack:
    def test_small_drift_keeps_registration(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(9000, 500), 0.0)
        world.absorb(cluster, obj(1, 500, 500))
        cells_before = cluster.grid_cells
        # Nudge within the slack: registration unchanged.
        cluster.cx += 1.0
        world.grid.refresh(cluster)
        assert cluster.grid_cells == cells_before

    def test_large_drift_reregisters(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(9000, 500), 0.0)
        world.absorb(cluster, obj(1, 500, 500))
        cluster.cx += 500.0
        world.grid.refresh(cluster)
        cell = world.grid.cell_of(cluster.cx, cluster.cy)
        assert cluster.cid in world.grid.members(cell)

    def test_registration_always_covers_exact_footprint(self):
        world = ClusterWorld(BOUNDS, 100)
        cluster = world.create_cluster(Point(500, 500), 1, Point(9000, 500), 0.0)
        for i in range(10):
            world.absorb(cluster, obj(i, 500 + 9 * i, 500))
            exact = cluster.filter_circle()
            needed = world.grid.cells_for_circle(
                exact.center.x, exact.center.y, exact.radius
            )
            assert set(needed) <= set(cluster.grid_cells)
