"""Smoke tests for the two command-line entry points."""

import pytest

from repro.__main__ import build_parser, main, make_operator, make_shard_factory
from repro.core import NaiveJoin, RegularGridJoin, Scuba
from repro.experiments.__main__ import main as experiments_main
from repro.parallel import NaiveShardFactory, RegularShardFactory, ScubaShardFactory


class TestSimulatorCli:
    def test_defaults_parse(self):
        args = build_parser().parse_args([])
        assert args.operator == "scuba"
        assert args.objects == 1000

    @pytest.mark.parametrize(
        "name,cls",
        [("scuba", Scuba), ("regular", RegularGridJoin), ("naive", NaiveJoin)],
    )
    def test_operator_selection(self, name, cls):
        args = build_parser().parse_args(["--operator", name])
        assert isinstance(make_operator(args), cls)

    def test_eta_configures_shedding(self):
        from repro.shedding import PartialShedding

        args = build_parser().parse_args(["--eta", "0.5"])
        operator = make_operator(args)
        assert isinstance(operator.config.shedding, PartialShedding)

    def test_split_flag(self):
        args = build_parser().parse_args(["--split"])
        assert make_operator(args).config.split_at_destination

    def test_end_to_end_run(self, capsys):
        code = main(
            [
                "--objects", "60",
                "--queries", "60",
                "--skew", "10",
                "--intervals", "2",
                "--city", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scuba over" in out
        assert "2 intervals" in out
        assert "clusters:" in out

    def test_record_then_replay(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(
            [
                "--objects", "30", "--queries", "30", "--skew", "5",
                "--intervals", "2", "--city", "7", "--record", str(trace),
            ]
        ) == 0
        assert trace.exists()
        recorded = capsys.readouterr().out
        assert "trace recorded" in recorded
        # Replay the trace through a different operator.
        assert main(
            [
                "--operator", "naive", "--intervals", "2", "--city", "7",
                "--replay", str(trace),
            ]
        ) == 0
        replayed = capsys.readouterr().out
        # Result counts per interval match the original run.
        original_counts = [line.split()[-1] for line in recorded.splitlines()
                           if line.strip() and line.split()[0].isdigit()]
        replay_counts = [line.split()[-1] for line in replayed.splitlines()
                         if line.strip() and line.split()[0].isdigit()]
        assert original_counts == replay_counts

    def test_record_and_replay_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--record", "a.jsonl", "--replay", "b.jsonl"])

    def test_end_to_end_regular(self, capsys):
        code = main(
            [
                "--operator", "regular",
                "--objects", "40",
                "--queries", "40",
                "--intervals", "1",
                "--city", "7",
            ]
        )
        assert code == 0
        assert "regular over" in capsys.readouterr().out

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["--shards", "0"])
        with pytest.raises(SystemExit):
            main(["--shards", "-2", "--executor", "process"])

    def test_shard_flags_parse(self):
        args = build_parser().parse_args(["--shards", "4", "--executor", "process"])
        assert args.shards == 4
        assert args.executor == "process"
        defaults = build_parser().parse_args([])
        assert defaults.shards == 1
        assert defaults.executor == "serial"

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("scuba", ScubaShardFactory),
            ("regular", RegularShardFactory),
            ("naive", NaiveShardFactory),
        ],
    )
    def test_shard_factory_selection(self, name, cls):
        args = build_parser().parse_args(
            ["--operator", name, "--query-range", "80"]
        )
        factory = make_shard_factory(args)
        assert isinstance(factory, cls)
        assert factory.max_query_extent == (80.0, 80.0)
        assert factory.halo_margin > 0.0

    def test_end_to_end_sharded(self, capsys):
        code = main(
            [
                "--objects", "60",
                "--queries", "60",
                "--skew", "10",
                "--intervals", "2",
                "--city", "7",
                "--shards", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 shards (serial executor)" in out
        assert "imbalance" in out
        assert "replication" in out


class TestExperimentsCli:
    def test_single_figure_tiny_scale(self, capsys):
        code = experiments_main(["fig10", "--scale", "0.02", "--intervals", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "skew" in out

    def test_scale_reported(self, capsys):
        experiments_main(["fig11", "--scale", "0.02", "--intervals", "1"])
        out = capsys.readouterr().out
        assert "scale=0.02" in out
        assert "incremental" in out
