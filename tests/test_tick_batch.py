"""The columnar tick path: TickBatch semantics and stream equivalence.

The vectorized generator core must be a *bit-identical* drop-in for the
scalar reference loop: same update values, same RNG consumption, same
snapshot/fast-forward state.  These tests pin that across a workload
sweep, pin the batch's Sequence/pickle/selection behaviour, and pin the
transport paths that carry batches (trace round-trip, shard op lists).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import Scuba
from repro.generator import (
    EntityKind,
    GeneratorConfig,
    NetworkBasedGenerator,
    TickBatch,
    TraceRecorder,
    TraceReplayer,
)
from repro.generator.trace import update_to_dict
from repro.parallel.executor import BatchShardOps, _apply_ops
from repro.parallel.partition import Retract
from repro.streams import CollectingSink, EngineConfig, StreamEngine, match_set


def _bits(update):
    """Every field of an update with floats as exact bit patterns."""
    extent = None
    if update.kind is EntityKind.QUERY:
        extent = (
            float(update.range_width).hex(),
            float(update.range_height).hex(),
        )
    return (
        update.kind,
        update.entity_id,
        update.loc.x.hex(),
        update.loc.y.hex(),
        float(update.t).hex(),
        float(update.speed).hex(),
        update.cn_node,
        update.cn_loc.x.hex(),
        update.cn_loc.y.hex(),
        extent,
        dict(update.attrs) if update.attrs else None,
    )


def _pair(city, **overrides):
    """Batched and scalar generators over identical configurations."""
    base = dict(num_objects=70, num_queries=50, skew=10, seed=7)
    base.update(overrides)
    return (
        NetworkBasedGenerator(
            city, GeneratorConfig(tick_batching=True, **base)
        ),
        NetworkBasedGenerator(
            city, GeneratorConfig(tick_batching=False, **base)
        ),
    )


class TestStreamEquivalence:
    @pytest.mark.parametrize(
        "seed,skew,stopped,hotspot,fraction",
        [
            (7, 10, 0.0, 0.0, 1.0),
            (42, 50, 0.0, 0.0, 1.0),
            (13, 1, 0.5, 0.0, 1.0),
            (3, 25, 0.3, 0.5, 1.0),
            (11, 8, 0.0, 0.25, 0.4),
            (5, 120, 0.6, 0.0, 0.7),
        ],
    )
    def test_batched_stream_bit_identical(
        self, city, seed, skew, stopped, hotspot, fraction
    ):
        batched, scalar = _pair(
            city,
            seed=seed,
            skew=skew,
            stopped_fraction=stopped,
            hotspot=hotspot,
            update_fraction=fraction,
            mixed_groups=True,
        )
        for _ in range(8):
            rows_b = [_bits(u) for u in batched.tick(1.0)]
            rows_s = [_bits(u) for u in scalar.tick(1.0)]
            assert rows_b == rows_s

    @pytest.mark.parametrize("dt", [0.25, 0.5, 1.0, 2.0])
    def test_dt_variations(self, city, dt):
        batched, scalar = _pair(city, seed=19, skew=12)
        for _ in range(6):
            assert [_bits(u) for u in batched.tick(dt)] == [
                _bits(u) for u in scalar.tick(dt)
            ]

    def test_snapshot_matches(self, city):
        batched, scalar = _pair(city, seed=23, skew=6, stopped_fraction=0.2)
        for _ in range(4):
            batched.tick(1.0)
            scalar.tick(1.0)
        assert [_bits(u) for u in batched.snapshot()] == [
            _bits(u) for u in scalar.snapshot()
        ]

    def test_fast_forward_matches(self, city):
        """Fast-forward burns the same RNG draws as ticking, both paths."""
        batched, scalar = _pair(
            city, seed=31, skew=9, update_fraction=0.5
        )
        batched.fast_forward(5, 1.0)
        scalar.fast_forward(5, 1.0)
        for _ in range(3):
            assert [_bits(u) for u in batched.tick(1.0)] == [
                _bits(u) for u in scalar.tick(1.0)
            ]

    def test_tick_returns_batch_only_when_enabled(self, city):
        batched, scalar = _pair(city)
        assert isinstance(batched.tick(1.0), TickBatch)
        assert not isinstance(scalar.tick(1.0), TickBatch)


class TestTickBatchSemantics:
    @pytest.fixture
    def batch(self, city):
        generator = NetworkBasedGenerator(
            city,
            GeneratorConfig(
                num_objects=30, num_queries=20, skew=5, seed=3,
                tick_batching=True,
            ),
        )
        return generator.tick(1.0)

    def test_sequence_protocol(self, batch):
        assert len(batch) == 50
        assert batch[0].t == batch.t
        assert batch[-1].entity_id == batch.ids[-1]
        assert [u.entity_id for u in batch] == list(batch.ids)
        with pytest.raises(IndexError):
            batch[len(batch)]

    def test_rows_are_python_scalars(self, batch):
        row = batch[0]
        assert type(row.loc.x) is float
        assert type(row.speed) is float
        assert type(row.cn_node) is int

    def test_keys_pack_kind_into_low_bit(self, batch):
        for key, eid, is_obj in zip(batch.keys, batch.ids, batch.kinds):
            assert key == eid * 2 + bool(is_obj)
            assert (key & 1) == (1 if is_obj else 0)

    def test_slice_and_select(self, batch):
        sliced = batch[10:20]
        assert isinstance(sliced, TickBatch)
        assert len(sliced) == 10
        assert [_bits(u) for u in sliced] == [
            _bits(batch[i]) for i in range(10, 20)
        ]
        picked = batch.select([3, 1, 4])
        assert [u.entity_id for u in picked] == [
            batch.ids[3], batch.ids[1], batch.ids[4]
        ]

    def test_pickle_round_trip(self, batch):
        clone = pickle.loads(pickle.dumps(batch))
        assert isinstance(clone, TickBatch)
        assert clone.t == batch.t
        assert [_bits(u) for u in clone] == [_bits(u) for u in batch]
        # Materialized rows on the clone still carry Python scalars even
        # when the shipped columns were numpy arrays.
        assert type(clone[0].loc.x) is float

    def test_from_updates_round_trip(self, batch):
        rows = batch.materialize()
        rebuilt = TickBatch.from_updates(batch.t, rows)
        assert [_bits(u) for u in rebuilt] == [_bits(u) for u in rows]

    def test_from_updates_rejects_mixed_times(self, batch):
        rows = batch.materialize()
        with pytest.raises(ValueError):
            TickBatch.from_updates(batch.t + 1.0, rows)


class TestTraceRoundTrip:
    def _run(self, generator, city, intervals=4):
        sink = CollectingSink()
        StreamEngine(
            generator, Scuba(), sink, EngineConfig(delta=2.0)
        ).run(intervals)
        return {t: match_set(v) for t, v in sink.by_interval.items()}

    def test_batched_trace_bytes_match_scalar(self, city, tmp_path):
        """Recording a batched stream writes the identical trace file."""
        paths = []
        for tick_batching, name in ((True, "b"), (False, "s")):
            generator = NetworkBasedGenerator(
                city,
                GeneratorConfig(
                    num_objects=40, num_queries=30, skew=8, seed=3,
                    tick_batching=tick_batching,
                ),
            )
            path = tmp_path / f"trace_{name}.jsonl"
            with TraceRecorder(generator, path) as recorder:
                for _ in range(5):
                    recorder.tick(1.0)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_replay_is_columnar_and_equivalent(self, city, tmp_path):
        generator = NetworkBasedGenerator(
            city,
            GeneratorConfig(
                num_objects=40, num_queries=30, skew=8, seed=3,
                tick_batching=True,
            ),
        )
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(generator, path) as recorder:
            live = self._run(recorder, city)
        replayer = TraceReplayer(path)
        first = replayer.tick()
        assert isinstance(first, TickBatch)
        replayer.seek(0)
        replayed = self._run(replayer, city)
        assert replayed == live


class TestBatchShardOps:
    def test_matches_object_op_list(self, city):
        """Columnar shard ops replay retract positions exactly."""
        generator = NetworkBasedGenerator(
            city,
            GeneratorConfig(
                num_objects=30, num_queries=20, skew=5, seed=3,
                tick_batching=True,
            ),
        )
        batch = generator.tick(1.0)
        retract = Retract(batch.ids[2], EntityKind.QUERY)
        rows = [0, 2, 5, 6, 9]
        object_ops = [batch[0], batch[2], retract, batch[5], batch[6], batch[9]]
        batch_ops = BatchShardOps(batch.select(rows), [(2, retract)])
        results = []
        for ops in (object_ops, batch_ops):
            operator = Scuba()
            ingested = _apply_ops(operator, ops)
            assert ingested == len(rows)
            results.append(match_set(operator.evaluate(batch.t)))
        assert results[0] == results[1]

    def test_pickles_as_columns(self, city):
        generator = NetworkBasedGenerator(
            city,
            GeneratorConfig(
                num_objects=10, num_queries=10, skew=5, seed=3,
                tick_batching=True,
            ),
        )
        batch = generator.tick(1.0)
        ops = BatchShardOps(batch, [(1, Retract(4, EntityKind.OBJECT))])
        clone = pickle.loads(pickle.dumps(ops))
        assert len(clone) == len(ops)
        assert clone.retracts == ops.retracts
        assert [update_to_dict(u) for u in clone.batch] == [
            update_to_dict(u) for u in batch
        ]
