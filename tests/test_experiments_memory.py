"""Unit tests for the deep-size memory estimator."""

import sys

from repro.experiments import deep_sizeof, operator_state_bytes


class Slotted:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


class SlottedChild(Slotted):
    __slots__ = ("c",)

    def __init__(self, a, b, c):
        super().__init__(a, b)
        self.c = c


class TestDeepSizeof:
    def test_atomic_sized_once(self):
        # Roots themselves are walked; the roots *container* is not state.
        x = 123456789
        assert deep_sizeof([x]) == sys.getsizeof(x)

    def test_shared_objects_counted_once(self):
        shared = [1.5] * 1
        a = [shared, shared]
        single = deep_sizeof([shared])
        total = deep_sizeof([a])
        # Having the list twice adds only the outer list, not 2x contents.
        assert total < 2 * single + sys.getsizeof(a)

    def test_dict_keys_and_values_walked(self):
        d = {"key": [1.0, 2.0]}
        assert deep_sizeof([d]) > sys.getsizeof(d)

    def test_slots_walked(self):
        obj = Slotted(10**10, 2.5)
        assert deep_sizeof([obj]) >= (
            sys.getsizeof(obj) + sys.getsizeof(10**10) + sys.getsizeof(2.5)
        )

    def test_inherited_slots_walked(self):
        obj = SlottedChild(10**10, 2.5, "payload-string-here")
        size_with_c = deep_sizeof([obj])
        assert size_with_c > sys.getsizeof(obj) + sys.getsizeof("payload-string-here") - 1

    def test_classes_and_functions_skipped(self):
        assert deep_sizeof([Slotted]) == 0
        assert deep_sizeof([deep_sizeof]) == 0

    def test_empty_roots(self):
        assert deep_sizeof([]) == 0

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof([a]) == sys.getsizeof(a)

    def test_unset_slot_tolerated(self):
        obj = Slotted.__new__(Slotted)
        obj.a = 1
        # obj.b never set: the walker must not raise.
        assert deep_sizeof([obj]) >= sys.getsizeof(obj)


class TestOperatorStateBytes:
    def test_scuba_state_grows_with_population(self):
        from repro.core import Scuba
        from repro.generator import LocationUpdate
        from repro.geometry import Point

        op = Scuba()
        empty = operator_state_bytes(op)
        for i in range(100):
            op.on_update(
                LocationUpdate(i, Point(100 + i, 100), 0.0, 50.0, 1, Point(9000, 0))
            )
        assert operator_state_bytes(op) > empty

    def test_regular_state_grows_with_population(self):
        from repro.core import RegularGridJoin
        from repro.generator import LocationUpdate
        from repro.geometry import Point

        op = RegularGridJoin()
        empty = operator_state_bytes(op)
        for i in range(100):
            op.on_update(
                LocationUpdate(i, Point(100 + i, 100), 0.0, 50.0, 1, Point(9000, 0))
            )
        assert operator_state_bytes(op) > empty
