"""Smoke tests for the figure harnesses at tiny scale.

These verify that every harness runs end to end, produces the declared
columns, and exhibits the *robust* qualitative properties (the full shape
assertions live in the benchmark suite, which runs at a larger scale).
"""

import pytest

from repro.experiments import (
    ALL_FIGURES,
    fig09_grid_size,
    fig10_skew,
    fig11_clustering,
    fig12_maintenance,
    fig13_load_shedding,
    format_table,
)

TINY = 0.02  # 200 + 200 entities


@pytest.fixture(scope="module")
def fig09():
    return fig09_grid_size(scale=TINY, intervals=2, grid_sizes=(50, 100))


@pytest.fixture(scope="module")
def fig10():
    return fig10_skew(scale=TINY, intervals=2, skews=(1, 20))


@pytest.fixture(scope="module")
def fig11():
    return fig11_clustering(scale=TINY, intervals=2, kmeans_iterations=(1, 3))


@pytest.fixture(scope="module")
def fig12():
    return fig12_maintenance(scale=TINY, intervals=2, skews=(20, 4))


@pytest.fixture(scope="module")
def fig13():
    return fig13_load_shedding(scale=TINY, intervals=2, etas=(0.0, 0.5, 1.0))


class TestFig09:
    def test_rows_and_columns(self, fig09):
        assert len(fig09.rows) == 2
        for row in fig09.rows:
            assert set(row) == set(fig09.columns)

    def test_grid_entries_positive(self, fig09):
        assert all(row["scuba_grid_entries"] > 0 for row in fig09.rows)

    def test_scuba_fewer_grid_entries(self, fig09):
        for row in fig09.rows:
            assert row["scuba_grid_entries"] < row["regular_grid_entries"]


class TestFig10:
    def test_rows(self, fig10):
        assert [row["skew"] for row in fig10.rows] == [1, 20]

    def test_cluster_count_falls_with_skew(self, fig10):
        assert fig10.rows[0]["scuba_clusters"] > fig10.rows[1]["scuba_clusters"]

    def test_times_non_negative(self, fig10):
        for row in fig10.rows:
            assert row["scuba_join_s"] >= 0.0
            assert row["regular_join_s"] >= 0.0


class TestFig11:
    def test_incremental_row_first(self, fig11):
        assert fig11.rows[0]["variant"] == "incremental"
        assert fig11.rows[0]["clustering_s"] == 0.0

    def test_kmeans_clustering_time_grows_with_iterations(self, fig11):
        k1 = next(r for r in fig11.rows if r["variant"] == "kmeans-iter1")
        k3 = next(r for r in fig11.rows if r["variant"] == "kmeans-iter3")
        assert k3["clustering_s"] > k1["clustering_s"]

    def test_incremental_total_beats_offline(self, fig11):
        incremental = fig11.rows[0]["total_s"]
        for row in fig11.rows[1:]:
            assert incremental < row["total_s"]


class TestFig12:
    def test_columns(self, fig12):
        for row in fig12.rows:
            assert row["scuba_total_s"] == pytest.approx(
                row["maintenance_s"] + row["scuba_join_s"]
            )

    def test_cluster_counts_reported(self, fig12):
        assert all(row["clusters"] > 0 for row in fig12.rows)


class TestFig13:
    def test_reference_row_perfect(self, fig13):
        assert fig13.rows[0]["eta_pct"] == 0
        assert fig13.rows[0]["accuracy"] == 1.0

    def test_tests_fall_with_eta(self, fig13):
        tests = [row["within_tests"] for row in fig13.rows]
        assert tests == sorted(tests, reverse=True)

    def test_accuracy_falls_with_eta(self, fig13):
        accuracies = [row["accuracy"] for row in fig13.rows]
        assert accuracies == sorted(accuracies, reverse=True)


class TestFormatting:
    def test_registry_complete(self):
        assert set(ALL_FIGURES) == {"fig09", "fig10", "fig11", "fig12", "fig13"}

    def test_format_table_renders(self, fig10):
        text = format_table(fig10)
        assert "fig10" in text
        assert "skew" in text
        assert str(fig10.rows[0]["skew"]) in text
